"""Figure 1: end-to-end strong scaling of merAligner (human + wheat) with
BWA-mem / Bowtie2 (under pMap) single points.

Paper result: near-ideal strong scaling from 480 to 15,360 cores (22x speedup,
0.7 parallel efficiency for human, 0.78 for wheat, with a super-linear region
for wheat), while the pMap-driven baselines sit an order of magnitude above
the merAligner curve at the same concurrency.

Reproduction: the same pipeline runs on scaled-down synthetic genomes over a
scaled-down core sweep (4..64 simulated ranks); times are modelled seconds
from the PGAS cost model.  We assert the *shape*: monotone scaling, parallel
efficiency at the largest scale within the paper's ballpark, and both
baselines slower end-to-end than merAligner at the top concurrency.
"""

from __future__ import annotations

import pytest

from repro.baselines.bowtie_like import BowtieLikeAligner
from repro.baselines.bwa_like import BwaLikeAligner
from repro.baselines.pmap import PMapFramework
from repro.core.pipeline import MerAligner
from repro.model.scaling import ScalingSeries

from conftest import BENCH_MACHINE, CORE_SWEEP, format_table, write_report


def run_scaling(dataset, config, core_counts):
    genome, reads = dataset
    series = ScalingSeries(genome.spec.name)
    for cores in core_counts:
        report = MerAligner(config).run(genome.contigs, reads, n_ranks=cores,
                                        machine=BENCH_MACHINE)
        series.add(cores, report.total_time)
    return series


@pytest.mark.benchmark(group="fig1")
def test_fig1_strong_scaling(benchmark, human_like_dataset, wheat_like_dataset,
                             bench_config):
    def experiment():
        human = run_scaling(human_like_dataset, bench_config, CORE_SWEEP)
        wheat = run_scaling(wheat_like_dataset, bench_config, CORE_SWEEP)
        # Baseline single points at the largest concurrency (as in Fig 1).
        genome, reads = human_like_dataset
        bwa = PMapFramework(lambda: BwaLikeAligner(seed_length=31),
                            n_instances=CORE_SWEEP[-1]).run(genome.contigs, reads)
        bowtie = PMapFramework(lambda: BowtieLikeAligner(),
                               n_instances=CORE_SWEEP[-1]).run(genome.contigs, reads)
        return human, wheat, bwa, bowtie

    human, wheat, bwa, bowtie = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for label, series in (("merAligner-human", human), ("merAligner-wheat", wheat)):
        for row in series.rows():
            rows.append([label, row["cores"], row["seconds"], row["ideal_seconds"],
                         row["speedup"], row["efficiency"]])
    rows.append(["BWAmem-human (pMap)", CORE_SWEEP[-1], bwa.total_time, "-", "-", "-"])
    rows.append(["Bowtie2-human (pMap)", CORE_SWEEP[-1], bowtie.total_time, "-", "-", "-"])
    lines = ["Figure 1: end-to-end strong scaling (modelled seconds)",
             f"core sweep {CORE_SWEEP} stands in for the paper's 480..15,360", ""]
    lines += format_table(["series", "cores", "seconds", "ideal", "speedup", "efficiency"],
                          rows)
    lines += ["", f"human efficiency at {CORE_SWEEP[-1]} ranks: "
                  f"{human.efficiency_at(len(CORE_SWEEP) - 1):.2f} (paper: 0.70)",
              f"wheat efficiency at {CORE_SWEEP[-1]} ranks: "
              f"{wheat.efficiency_at(len(CORE_SWEEP) - 1):.2f} (paper: 0.78)"]
    write_report("fig1_strong_scaling", lines)

    # Shape assertions.
    for series in (human, wheat):
        assert all(earlier > later * 0.95
                   for earlier, later in zip(series.times, series.times[1:])), \
            "end-to-end time must drop (or stay flat) as cores increase"
        assert series.efficiency_at(len(CORE_SWEEP) - 1) > 0.4
    # Baselines are dominated by their serial index build at high concurrency.
    assert bwa.total_time > human.times[-1]
    assert bowtie.total_time > human.times[-1]
    assert bowtie.index_construction_time > bwa.index_construction_time
