"""Wall-clock micro-benchmarks of the computational kernels (pytest-benchmark).

Unlike the figure/table harnesses (which report *modelled* seconds from the
PGAS cost model), these measure real Python execution time of the hot kernels:
the 2-bit codec, seed extraction, djb2 hashing, the vectorised Smith-Waterman,
the FM-index backward search, and the SeqDB reader.  They guard against
performance regressions in the library itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alignment.smith_waterman import smith_waterman
from repro.alignment.striped import striped_smith_waterman
from repro.baselines.fmindex import FMIndex
from repro.dna.compression import pack_sequence, unpack_sequence
from repro.dna.kmer import djb2_hash, extract_kmers
from repro.dna.sequence import random_dna
from repro.io.seqdb import SeqDbReader, records_to_seqdb
from repro.dna.synthetic import ReadRecord


@pytest.fixture(scope="module")
def sequence_10k():
    return random_dna(10_000, rng=np.random.default_rng(1))


@pytest.fixture(scope="module")
def read_100():
    return random_dna(100, rng=np.random.default_rng(2))


@pytest.mark.benchmark(group="kernels")
def test_bench_pack_sequence(benchmark, sequence_10k):
    packed = benchmark(pack_sequence, sequence_10k)
    assert packed.size == (len(sequence_10k) + 3) // 4


@pytest.mark.benchmark(group="kernels")
def test_bench_unpack_sequence(benchmark, sequence_10k):
    packed = pack_sequence(sequence_10k)
    result = benchmark(unpack_sequence, packed, len(sequence_10k))
    assert result == sequence_10k


@pytest.mark.benchmark(group="kernels")
def test_bench_seed_extraction(benchmark, sequence_10k):
    result = benchmark(lambda: list(extract_kmers(sequence_10k, 31)))
    assert len(result) == len(sequence_10k) - 30


@pytest.mark.benchmark(group="kernels")
def test_bench_djb2_hash(benchmark, read_100):
    value = benchmark(djb2_hash, read_100[:51])
    assert value > 0


@pytest.mark.benchmark(group="kernels")
def test_bench_striped_smith_waterman(benchmark, read_100, sequence_10k):
    target_window = sequence_10k[:150]
    result = benchmark(striped_smith_waterman, read_100, target_window)
    assert result.cells == 100 * 150


@pytest.mark.benchmark(group="kernels")
def test_bench_scalar_smith_waterman(benchmark, read_100, sequence_10k):
    target_window = sequence_10k[:150]
    result = benchmark(smith_waterman, read_100, target_window, traceback=False)
    assert result.score >= 0


@pytest.mark.benchmark(group="kernels")
def test_bench_fmindex_build(benchmark, sequence_10k):
    index = benchmark(FMIndex, sequence_10k[:4000])
    assert index.count(sequence_10k[100:120]) >= 1


@pytest.mark.benchmark(group="kernels")
def test_bench_fmindex_backward_search(benchmark, sequence_10k):
    index = FMIndex(sequence_10k)
    pattern = sequence_10k[500:531]
    count = benchmark(index.count, pattern)
    assert count >= 1


@pytest.mark.benchmark(group="kernels")
def test_bench_seqdb_read_partition(benchmark, tmp_path_factory):
    rng = np.random.default_rng(3)
    reads = [ReadRecord(name=f"r{i}", sequence=random_dna(100, rng=rng),
                        quality="I" * 100) for i in range(500)]
    path = tmp_path_factory.mktemp("seqdb") / "bench.seqdb"
    records_to_seqdb(path, reads)

    def read_one_partition():
        with SeqDbReader(path) as reader:
            return reader.read_partition(0, 4)

    records = benchmark(read_one_partition)
    assert len(records) == 125
