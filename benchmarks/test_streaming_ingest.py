"""Streaming ingestion: bounded-memory chunked runs vs the materialised path
(ISSUE 9 streaming subsystem).

The streaming claim has two halves and this benchmark reports both:

* the **deterministic side** (unmasked rows): for every chunk size the
  streamed run produces exactly the materialised run's output bytes and
  deterministic counters (reads processed/aligned, alignments reported,
  exact-path hits), with the expected chunk count -- the byte-identity
  invariant of docs/streaming.md as a table;
* the **measured side** (volatile-masked rows): wall-clock per run and the
  process RSS watermark, showing the streamed runs holding memory flat
  while the reads arrive from a generator that never materialises the
  library.

Peak-RSS and wall-clock values jitter run to run, so those rows are masked
by the ``volatile=`` convention; the chunk/counter columns are modelled and
must not drift.
"""

from __future__ import annotations

import hashlib
import time

import pytest

from repro.core.config import AlignerConfig
from repro.core.pipeline import MerAligner
from repro.dna.synthetic import GenomeSpec, ReadRecord, ReadSetSpec, make_dataset
from repro.obs.rss import current_rss_kib, max_rss_kib

from conftest import BENCH_MACHINE, format_table, write_report

CHUNK_SIZES = [64, 256, 4096]
N_RANKS = 8
SEED = 901


@pytest.fixture(scope="module")
def stream_setup():
    spec = GenomeSpec(name="streaming", genome_length=24_000, n_contigs=40,
                      repeat_fraction=0.05, repeat_unit_length=250,
                      min_contig_length=250)
    read_spec = ReadSetSpec(coverage=2.0, read_length=90, error_rate=0.01,
                            reverse_strand_fraction=0.5)
    genome, reads = make_dataset(spec, read_spec, seed=SEED)
    config = AlignerConfig(seed_length=21, fragment_length=600,
                           use_bulk_lookups=True, lookup_batch_size=32)
    session = MerAligner(config).prepare(
        genome.contigs, n_ranks=N_RANKS, machine=BENCH_MACHINE,
        backend="cooperative",
        target_names=[f"contig{i}" for i in range(len(genome.contigs))])
    yield session, reads
    session.close()


def _read_generator(reads):
    """Reads arriving one at a time -- nothing upstream holds the library."""
    for read in reads:
        yield ReadRecord(name=read.name, sequence=read.sequence,
                         quality=read.quality)


def test_streaming_ingest(stream_setup):
    session, reads = stream_setup

    start = time.perf_counter()
    materialised = session.align(reads)
    sam_reference = session.sam_for(materialised.alignments)
    materialised_wall = time.perf_counter() - start
    reference_digest = hashlib.sha256(sam_reference.encode()).hexdigest()

    def counter_row(counters):
        return (counters.reads_processed, counters.reads_aligned,
                counters.alignments_reported, counters.exact_path_hits)

    det_rows = [["materialised", "-", 1, *counter_row(materialised.counters),
                 "yes"]]
    measured_rows = [["materialised", "-", float(f"{materialised_wall:.4f}"),
                      float(max_rss_kib()), float(current_rss_kib())]]

    for chunk_reads in CHUNK_SIZES:
        digest = hashlib.sha256()
        rss_samples = []
        start = time.perf_counter()
        final = None
        for part in session.align_stream(_read_generator(reads),
                                         chunk_reads=chunk_reads):
            digest.update(part.text.encode())
            rss_samples.append(current_rss_kib())
            if part.final:
                final = part
        wall = time.perf_counter() - start

        identical = digest.hexdigest() == reference_digest
        expected_chunks = -(-len(reads) // chunk_reads)
        det_rows.append(["streamed", chunk_reads, final.n_chunks,
                         *counter_row(final.counters),
                         "yes" if identical else "NO"])
        measured_rows.append(["streamed", chunk_reads,
                              float(f"{wall:.4f}"), float(max_rss_kib()),
                              float(max(rss_samples) - min(rss_samples))])

        # The invariants, asserted unconditionally.
        assert identical, f"chunk_reads={chunk_reads} output diverged"
        assert final.n_chunks == expected_chunks
        assert counter_row(final.counters) == counter_row(
            materialised.counters), chunk_reads

    lines = [
        "Streaming ingestion: chunked runs vs the materialised path",
        f"genome 24 kbp / {len(reads)} reads x 90 bp, cooperative backend, "
        f"{N_RANKS} ranks, bulk lookups on",
        "",
        "Deterministic (must not drift): output bytes and counters per "
        "chunk size",
        "",
        *format_table(
            ["mode", "chunk_reads", "chunks", "reads", "aligned",
             "alignments", "exact_path_hits", "byte-identical"],
            det_rows),
        "",
        "Measured (volatile; floats masked for the rewrite convention):",
        "peak_rss is the process watermark in KiB; rss_spread the max-min",
        "of per-part samples during the stream (flat-memory evidence)",
        "",
        *format_table(
            ["mode", "chunk_reads", "wall_s", "peak_rss_kib",
             "rss_spread_kib"],
            measured_rows),
        "",
        "note: every streamed row re-derives the materialised SAM digest; a",
        "chunk-size-dependent divergence fails the benchmark, not just the",
        "table.",
    ]
    write_report("streaming_ingest", lines,
                 volatile=(r"^(materialised|streamed)\s", ))
