"""Aligned-fraction / recall study (section VI-D text).

Paper result: merAligner aligns 86.3% of the human reads (vs 83.8% BWA-mem,
82.6% Bowtie2) and 97.4% of the E. coli reads (vs 96.3% / 95.8%); the
algorithm guarantees that every alignment sharing an exact seed of length k is
found.

Reproduction: on synthetic reads the ground truth origin is known, so besides
the aligned fraction we also measure *recall*: the fraction of reads whose
reported alignments include the true origin position.
"""

from __future__ import annotations

import pytest

from repro.baselines.bowtie_like import BowtieLikeAligner
from repro.baselines.bwa_like import BwaLikeAligner
from repro.baselines.pmap import PMapFramework
from repro.core.pipeline import MerAligner

from conftest import BENCH_MACHINE, format_table, write_report


def recall(reads, alignments, tolerance=3):
    by_name = {}
    for alignment in alignments:
        by_name.setdefault(alignment.query_name, []).append(alignment)
    hits, eligible = 0, 0
    for read in reads:
        if read.contig_id < 0:
            continue
        eligible += 1
        candidates = by_name.get(read.name, [])
        if any(a.target_id == read.contig_id
               and abs(a.target_start - read.position) <= tolerance
               for a in candidates):
            hits += 1
    return hits / eligible if eligible else 0.0


@pytest.mark.benchmark(group="accuracy")
def test_accuracy_aligned_fraction(benchmark, human_like_dataset, bench_config):
    genome, reads = human_like_dataset

    def experiment():
        mer = MerAligner(bench_config).run(genome.contigs, reads, n_ranks=16,
                                           machine=BENCH_MACHINE)
        bwa = PMapFramework(lambda: BwaLikeAligner(seed_length=31),
                            n_instances=16).run(genome.contigs, reads)
        bowtie = PMapFramework(lambda: BowtieLikeAligner(very_fast=True),
                               n_instances=16).run(genome.contigs, reads)
        return mer, bwa, bowtie

    mer, bwa, bowtie = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        ["merAligner", mer.counters.aligned_fraction, recall(reads, mer.alignments)],
        ["BWA-mem-like", bwa.aligned_fraction, recall(reads, bwa.alignments)],
        ["Bowtie2-like", bowtie.aligned_fraction, recall(reads, bowtie.alignments)],
    ]
    lines = ["Aligned fraction and ground-truth recall (human-like data set)",
             "paper aligned fractions: merAligner 86.3%, BWA-mem 83.8%, "
             "Bowtie2 82.6%", ""]
    lines += format_table(["Aligner", "Aligned fraction", "Recall vs ground truth"],
                          rows)
    write_report("accuracy_aligned_fraction", lines)

    # Orderings from the paper: merAligner aligns at least as many reads as
    # the baselines; all three align the vast majority of reads.
    assert mer.counters.aligned_fraction >= bwa.aligned_fraction - 0.02
    assert mer.counters.aligned_fraction >= bowtie.aligned_fraction - 0.02
    assert mer.counters.aligned_fraction > 0.8
    assert recall(reads, mer.alignments) > 0.85
