"""Figure 9: impact of software caching on communication during the aligning
phase.

Paper result: the target cache essentially eliminates target-fetch
communication at every concurrency; the seed-index cache helps mostly at small
concurrency (~35% lookup-time reduction at 480 cores); overall communication
drops 2.3x / 1.7x / 1.8x at 480 / 1,920 / 7,680 cores.

Reproduction: the aligning phase is run with caches on and off at three scaled
core counts; communication time is split into seed lookups and target fetches
exactly as the paper's stacked bars.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import MerAligner

from conftest import BENCH_MACHINE, format_table, write_report

# Smallest point already spans two nodes (ppn = 8) so that off-node traffic
# exists at every concurrency, as in the paper's 480-core baseline.
CORE_POINTS = [16, 32, 64]


def comm_breakdown(dataset, config, cores):
    genome, reads = dataset
    report = MerAligner(config).run(genome.contigs, reads, n_ranks=cores,
                                    machine=BENCH_MACHINE)
    return {
        "seed_lookup": report.seed_lookup_comm_time,
        "target_fetch": report.target_fetch_comm_time,
        "total": report.seed_lookup_comm_time + report.target_fetch_comm_time,
        "report": report,
    }


@pytest.mark.benchmark(group="fig9")
def test_fig9_software_cache(benchmark, human_like_dataset, bench_config):
    def experiment():
        results = {}
        for cores in CORE_POINTS:
            cached = comm_breakdown(human_like_dataset, bench_config, cores)
            uncached = comm_breakdown(
                human_like_dataset,
                bench_config.with_(use_seed_index_cache=False, use_target_cache=False),
                cores)
            results[cores] = (uncached, cached)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for cores, (uncached, cached) in results.items():
        rows.append([cores,
                     uncached["seed_lookup"], uncached["target_fetch"],
                     cached["seed_lookup"], cached["target_fetch"],
                     uncached["total"] / max(cached["total"], 1e-12)])
    lines = ["Figure 9: aligning-phase communication with and without software caches",
             "(summed per-rank modelled seconds; paper reports 2.3x / 1.7x / 1.8x)", ""]
    lines += format_table(["cores", "lookup no-cache", "fetch no-cache",
                           "lookup w/ cache", "fetch w/ cache", "improvement"], rows)
    hit_rates = {cores: cached["report"].cache_stats["target"].hit_rate
                 for cores, (_, cached) in results.items()}
    lines += ["", "target-cache hit rate per concurrency: "
              + ", ".join(f"{c}: {hit_rates[c]:.2f}" for c in CORE_POINTS)]
    write_report("fig9_software_cache", lines)

    for cores, (uncached, cached) in results.items():
        # Overall communication drops.
        assert cached["total"] < uncached["total"]
        # The target cache is effective at all concurrencies (the paper's
        # target cache "essentially obviates" target communication; here a
        # share of fetches is already on-node, so the gain is bounded but
        # still a large fraction of the remote fetch traffic).
        assert cached["target_fetch"] < 0.8 * uncached["target_fetch"]
    # The seed-index cache helps most at the smallest concurrency (Fig 7 logic).
    small_gain = (results[CORE_POINTS[0]][0]["seed_lookup"]
                  / max(results[CORE_POINTS[0]][1]["seed_lookup"], 1e-12))
    large_gain = (results[CORE_POINTS[-1]][0]["seed_lookup"]
                  / max(results[CORE_POINTS[-1]][1]["seed_lookup"], 1e-12))
    assert small_gain >= large_gain * 0.8
