"""Ablation of the design parameters DESIGN.md calls out.

Not a figure in the paper, but the paper's text motivates each knob:

* the aggregation buffer size S trades memory for an S-fold message reduction
  (section III-A);
* the software cache capacity trades memory for data reuse (section III-B);
* the max-alignments-per-seed threshold trades sensitivity for speed
  (section IV-C);
* target fragmentation raises the fraction of single-copy-seed fragments and
  with it the reach of the exact-match optimization (section IV-A).
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import MerAligner

from conftest import BENCH_MACHINE, format_table, write_report

N_RANKS = 16


@pytest.mark.benchmark(group="ablation")
def test_ablation_aggregation_buffer_size(benchmark, human_like_dataset, bench_config):
    genome, _ = human_like_dataset
    sweep = [1, 8, 64, 512]

    def experiment():
        results = {}
        for buffer_size in sweep:
            config = bench_config.with_(aggregation_buffer_size=buffer_size)
            report = MerAligner(config).run(genome.contigs, [], n_ranks=N_RANKS,
                                            machine=BENCH_MACHINE)
            results[buffer_size] = (report.index_construction_time,
                                    report.total_stats.messages)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[s, seconds, messages] for s, (seconds, messages) in results.items()]
    lines = ["Ablation: aggregation buffer size S vs seed index construction",
             "(S=1 degenerates to per-seed transfers; the paper uses S=1000)", ""]
    lines += format_table(["S", "construction seconds", "messages"], rows)
    write_report("ablation_buffer_size", lines)

    times = [results[s][0] for s in sweep]
    messages = [results[s][1] for s in sweep]
    # Larger S -> fewer messages and no slower construction.
    assert messages[0] > messages[-1]
    assert times[0] > times[-1]


@pytest.mark.benchmark(group="ablation")
def test_ablation_cache_capacity(benchmark, human_like_dataset, bench_config):
    genome, reads = human_like_dataset
    subset = reads[: len(reads) // 2]
    sweep = [0, 64 * 1024, 2 * 1024 * 1024]

    def experiment():
        results = {}
        for capacity in sweep:
            config = bench_config.with_(seed_cache_bytes_per_node=capacity,
                                        target_cache_bytes_per_node=capacity,
                                        use_seed_index_cache=capacity > 0,
                                        use_target_cache=capacity > 0)
            report = MerAligner(config).run(genome.contigs, subset, n_ranks=N_RANKS,
                                            machine=BENCH_MACHINE)
            comm = report.seed_lookup_comm_time + report.target_fetch_comm_time
            hit_rate = 0.0
            if "target" in report.cache_stats:
                hit_rate = report.cache_stats["target"].hit_rate
            results[capacity] = (comm, hit_rate)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [[capacity, comm, hit_rate] for capacity, (comm, hit_rate) in results.items()]
    lines = ["Ablation: per-node cache capacity vs aligning-phase communication", ""]
    lines += format_table(["capacity (bytes/node)", "comm seconds", "target hit rate"],
                          rows)
    write_report("ablation_cache_capacity", lines)

    comms = [results[c][0] for c in sweep]
    assert comms[-1] < comms[0]
    assert results[sweep[-1]][1] > 0.5


@pytest.mark.benchmark(group="ablation")
def test_ablation_max_alignments_per_seed(benchmark, wheat_like_dataset, bench_config):
    genome, reads = wheat_like_dataset
    subset = reads[: len(reads) // 2]
    sweep = [1, 4, 16, 0]   # 0 = unlimited

    def experiment():
        results = {}
        for threshold in sweep:
            config = bench_config.with_(max_alignments_per_seed=threshold)
            report = MerAligner(config).run(genome.contigs, subset, n_ranks=N_RANKS,
                                            machine=BENCH_MACHINE)
            results[threshold] = (report.counters.sw_calls,
                                  report.counters.alignments_reported,
                                  report.alignment_time)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [["unlimited" if t == 0 else t, *results[t]] for t in sweep]
    lines = ["Ablation: max alignments per seed (sensitivity vs speed, repetitive "
             "wheat-like data)", ""]
    lines += format_table(["threshold", "SW calls", "alignments reported",
                           "aligning seconds"], rows)
    write_report("ablation_max_alignments", lines)

    # Tighter threshold -> no more SW calls / alignments than the unlimited run.
    assert results[1][0] <= results[0][0]
    assert results[1][1] <= results[0][1]
    assert results[4][0] <= results[0][0]


@pytest.mark.benchmark(group="ablation")
def test_ablation_target_fragmentation(benchmark, human_like_dataset, bench_config):
    genome, reads = human_like_dataset
    subset = reads[: len(reads) // 2]

    def experiment():
        fragmented = MerAligner(bench_config.with_(fragment_targets=True,
                                                   fragment_length=1000)).run(
            genome.contigs, subset, n_ranks=N_RANKS, machine=BENCH_MACHINE)
        whole = MerAligner(bench_config.with_(fragment_targets=False)).run(
            genome.contigs, subset, n_ranks=N_RANKS, machine=BENCH_MACHINE)
        return fragmented, whole

    fragmented, whole = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        ["fragmented (1000 bp)", fragmented.single_copy_fragment_fraction,
         fragmented.counters.exact_fraction, fragmented.counters.aligned_fraction],
        ["whole contigs", whole.single_copy_fragment_fraction,
         whole.counters.exact_fraction, whole.counters.aligned_fraction],
    ]
    lines = ["Ablation: target fragmentation (section IV-A)", ""]
    lines += format_table(["targets", "single-copy fraction", "exact-path fraction",
                           "aligned fraction"], rows)
    write_report("ablation_fragmentation", lines)

    # Fragmentation increases single-copy coverage and never hurts recall.
    assert (fragmented.single_copy_fragment_fraction
            >= whole.single_copy_fragment_fraction)
    assert (fragmented.counters.exact_fraction
            >= whole.counters.exact_fraction - 0.02)
    assert (fragmented.counters.aligned_fraction
            >= whole.counters.aligned_fraction - 0.02)
