"""Bulk mate rescue vs per-pair rescue: communication and modelled time.

Mate rescue needs the anchor's target fragment back to search the expected
insert window.  The scalar (fine-grained) path pays one charged
``target_store.fetch`` and one scalar banded-SW call per rescuable pair;
the bulk path collects a whole window of rescues, reuses the anchor
fragments ExactPath/ExtendAlign already pooled during the same window
(issuing at most one deduplicated ``fetch_many`` -- one aggregated get per
owning rank -- for the rest) and sweeps every rescue through the
shape-grouped batched striped kernel in one call.

This benchmark records, at several concurrencies, the off-node get count,
the modelled aligning-phase time and the modelled mate-rescue stage time of
both engines on a rescue-heavy paired library (half the R2 mates carry an
error every 10 bases, defeating every k-mer seed while banded SW still
scores far above the threshold), and asserts the acceptance shape: at 8
ranks with a window of 32 pairs the bulk engine issues fewer off-node gets
and reports a lower modelled aligning time, with byte-identical paired SAM.
All quantities are modelled (deterministic), so the results file carries no
volatile rows.
"""

from __future__ import annotations

import pytest

from repro.core.config import AlignerConfig
from repro.core.plan import PlanRunner, plan_for_workload
from repro.dna.synthetic import GenomeSpec, ReadRecord, ReadSetSpec, make_dataset
from repro.io.sam import paired_sam_text

from conftest import BENCH_MACHINE, format_table, write_report

CORE_POINTS = [4, 8, 16]
WINDOW = 32  # pairs per bulk window (the acceptance point: window >= 32)

# Two ranks per node so every core point spans several nodes and the rescue
# fetches have real off-node traffic to save.
MACHINE = BENCH_MACHINE.with_cores_per_node(2)

FLIP = {"A": "C", "C": "G", "G": "T", "T": "A"}


def corrupt_every(sequence: str, stride: int) -> str:
    out = list(sequence)
    for i in range(0, len(sequence), stride):
        out[i] = FLIP[out[i]]
    return "".join(out)


@pytest.fixture(scope="module")
def rescue_dataset():
    """Paired library with every second pair's R2 seed-dead but alignable."""
    spec = GenomeSpec(name="rescue", genome_length=24_000, n_contigs=12,
                      repeat_fraction=0.02, repeat_unit_length=200,
                      min_contig_length=400)
    read_spec = ReadSetSpec(coverage=2.0, read_length=80, error_rate=0.005,
                            paired=True, insert_size=300, insert_sd=25)
    genome, reads = make_dataset(spec, read_spec, seed=301)
    out = list(reads)
    for i in range(0, len(out), 4):  # every second pair
        mate = out[i + 1]
        out[i + 1] = ReadRecord(name=mate.name,
                                sequence=corrupt_every(mate.sequence, 10),
                                quality=mate.quality, mate_of=mate.mate_of)
    return genome, out


@pytest.fixture(scope="module")
def rescue_config():
    return AlignerConfig(seed_length=21, fragment_length=2000, seed_stride=2,
                         insert_size=300, insert_slack=75,
                         seed_cache_bytes_per_node=2 * 1024 * 1024,
                         target_cache_bytes_per_node=1 * 1024 * 1024)


def run_engine(dataset, config, cores):
    genome, reads = dataset
    result = PlanRunner(plan_for_workload("paired"), config).run(
        genome.contigs, reads, n_ranks=cores, machine=MACHINE)
    report = result.report
    rescue_stage = next((s for s in report.stage_stats
                         if s.name == "mate_rescue"), None)
    names = [f"contig{i:05d}" for i in range(len(genome.contigs))]
    return {
        "off_node_gets": report.total_stats.off_node_ops,
        "gets": report.total_stats.gets,
        "align_time": report.alignment_time,
        "rescue_time": rescue_stage.elapsed if rescue_stage else 0.0,
        "attempts": report.counters.mate_rescue_attempts,
        "rescues": report.counters.mate_rescues,
        "sam": paired_sam_text(result.output, names,
                               [len(c) for c in genome.contigs]),
    }


@pytest.mark.benchmark(group="mate_rescue_comm")
def test_mate_rescue_comm(benchmark, rescue_dataset, rescue_config):
    def experiment():
        results = {}
        fine = rescue_config
        bulk = rescue_config.with_(use_bulk_lookups=True,
                                   lookup_batch_size=WINDOW)
        for cores in CORE_POINTS:
            results[cores] = (run_engine(rescue_dataset, fine, cores),
                              run_engine(rescue_dataset, bulk, cores))
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for cores, (fine, bulk) in sorted(results.items()):
        rows.append([cores, fine["rescues"],
                     fine["off_node_gets"], bulk["off_node_gets"],
                     fine["off_node_gets"] / max(bulk["off_node_gets"], 1),
                     fine["align_time"], bulk["align_time"],
                     fine["rescue_time"], bulk["rescue_time"]])
    lines = ["Bulk mate rescue vs per-pair rescue (windowed fetch_many + "
             "batched striped SW)",
             f"(windows of {WINDOW} pairs; half the R2 mates are seed-dead "
             "and need rescue;",
             "off-node one-sided gets and modelled seconds)", ""]
    lines += format_table(
        ["ranks", "rescues", "gets fine", "gets bulk", "reduction",
         "align fine (s)", "align bulk (s)", "rescue fine (s)",
         "rescue bulk (s)"], rows)
    lines += ["", "paired SAM is byte-identical between the two engines at "
              "every point above;",
              "bulk rescue issues at most one fetch_many per window -- "
              "anchors already fetched",
              "by ExactPath/ExtendAlign in the same window ride the window "
              "pool for free."]
    write_report("mate_rescue_comm", lines)

    for cores, (fine, bulk) in results.items():
        # Transport-only optimization: identical paired SAM and rescues.
        assert bulk["sam"] == fine["sam"], cores
        assert bulk["rescues"] == fine["rescues"], cores
        assert bulk["attempts"] == fine["attempts"], cores
        # Rescue work exists at every point (the benchmark is not vacuous).
        assert fine["rescues"] > 0, cores
        # Aggregation cannot increase remote traffic.
        assert bulk["off_node_gets"] <= fine["off_node_gets"], cores
    # Acceptance: at 8 ranks with window >= 32, fewer off-node gets and a
    # lower modelled aligning time (the ISSUE-6 tentpole demonstration).
    fine8, bulk8 = results[8]
    assert bulk8["off_node_gets"] < fine8["off_node_gets"]
    assert bulk8["align_time"] < fine8["align_time"]
    assert bulk8["rescue_time"] < fine8["rescue_time"]
