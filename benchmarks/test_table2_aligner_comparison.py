"""Table II: end-to-end comparison of merAligner vs BWA-mem and Bowtie2 under
pMap at high concurrency.

Paper result (7,680 cores, human): merAligner builds its seed index in 21 s
(parallel) and maps in 263 s, total 284 s; BWA-mem needs 5,384 s (serial
index) + 421 s = 5,805 s (20.4x slower); Bowtie2 needs 10,916 s + 283 s =
11,119 s (39.4x slower).  The read-partitioning time of pMap (4,305 s /
3,982 s) is excluded from the comparison.  merAligner aligns 86.3% of the
reads vs 83.8% (BWA-mem) and 82.6% (Bowtie2).

Reproduction: the same three systems on the scaled human-like data set at the
largest scaled concurrency, with the same serial-vs-parallel phase accounting.
"""

from __future__ import annotations

import pytest

from repro.baselines.bowtie_like import BowtieLikeAligner
from repro.baselines.bwa_like import BwaLikeAligner
from repro.baselines.pmap import PMapFramework
from repro.core.pipeline import MerAligner

from conftest import BENCH_MACHINE, format_table, write_report

N_RANKS = 64   # stands in for the paper's 7,680 cores


@pytest.mark.benchmark(group="table2")
def test_table2_aligner_comparison(benchmark, human_like_dataset, bench_config):
    genome, reads = human_like_dataset

    def experiment():
        mer = MerAligner(bench_config).run(genome.contigs, reads, n_ranks=N_RANKS,
                                           machine=BENCH_MACHINE)
        bwa = PMapFramework(lambda: BwaLikeAligner(seed_length=31),
                            n_instances=N_RANKS).run(genome.contigs, reads)
        bowtie = PMapFramework(lambda: BowtieLikeAligner(very_fast=True),
                               n_instances=N_RANKS).run(genome.contigs, reads)
        return mer, bwa, bowtie

    mer, bwa, bowtie = benchmark.pedantic(experiment, rounds=1, iterations=1)

    mer_index = mer.index_construction_time
    mer_total = mer.total_time
    rows = [
        ["merAligner", f"{mer_index:.4g} (P)", f"{mer.alignment_time:.4g} (P)",
         mer_total, 1.0, mer.counters.aligned_fraction],
        ["BWA-mem-like", f"{bwa.index_construction_time:.4g} (S)",
         f"{bwa.mapping_time:.4g} (P)", bwa.total_time,
         bwa.total_time / mer_total, bwa.aligned_fraction],
        ["Bowtie2-like", f"{bowtie.index_construction_time:.4g} (S)",
         f"{bowtie.mapping_time:.4g} (P)", bowtie.total_time,
         bowtie.total_time / mer_total, bowtie.aligned_fraction],
    ]
    lines = [f"Table II: end-to-end comparison at {N_RANKS} ranks "
             "(modelled seconds; S = serial phase, P = parallel phase)",
             "read-partitioning time of pMap excluded, as in the paper", ""]
    lines += format_table(["Aligner", "Index construction", "Mapping", "Total",
                           "Slowdown vs merAligner", "Aligned fraction"], rows)
    lines += ["", f"pMap read-partitioning overhead (excluded): "
                  f"BWA-mem-like {bwa.read_partition_time:.4g}s, "
              f"Bowtie2-like {bowtie.read_partition_time:.4g}s",
              "paper slowdowns: BWA-mem 20.4x, Bowtie2 39.4x",
              "paper aligned fractions: 86.3% / 83.8% / 82.6%"]
    write_report("table2_aligner_comparison", lines)

    # Shape assertions: merAligner wins end to end because its index
    # construction is parallel while the baselines' is serial; Bowtie2's index
    # build is the slowest of all.
    assert mer_total < bwa.total_time
    assert mer_total < bowtie.total_time
    assert bwa.total_time < bowtie.total_time
    assert mer_index < bwa.index_construction_time
    assert bowtie.index_construction_time > bwa.index_construction_time
    # The baselines' serial index build dominates their end-to-end time.
    assert bwa.index_construction_time > bwa.mapping_time
    # Aligned fractions are comparable, merAligner at least on par.
    assert mer.counters.aligned_fraction >= bwa.aligned_fraction - 0.05
    assert mer.counters.aligned_fraction >= bowtie.aligned_fraction - 0.05
