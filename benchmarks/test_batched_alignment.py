"""Batched bulk-communication engine vs the fine-grained aligning phase.

The paper's construction-side lesson -- amortise per-message latency by
aggregating transfers (section III-A) -- applied to the *query* side: with
``use_bulk_lookups`` the aligning phase issues one aggregated get per
destination rank per window of reads (seed lookups and deduplicated fragment
fetches) instead of one message per seed/fragment, and same-shaped extension
windows share one sweep of the batched striped kernel.

This benchmark records, at several concurrencies, the remote (off-node) get
count, the modelled aligning-phase time and the cache hit rates of both
engines, both with and without the software caches, and asserts the headline
effect: at 8 ranks with caches disabled the batched engine issues at least
2x fewer off-node gets (in practice ~30x fewer) while reporting identical
alignments.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import MerAligner

from conftest import BENCH_MACHINE, format_table, write_report

CORE_POINTS = [4, 8, 16]
BATCH_SIZE = 64

# Two ranks per node so that every core point, including the paper-style
# n_ranks = 8 acceptance point, spans several nodes and has off-node traffic.
MACHINE = BENCH_MACHINE.with_cores_per_node(2)


def run_engine(dataset, config, cores):
    genome, reads = dataset
    report = MerAligner(config).run(genome.contigs, reads, n_ranks=cores,
                                    machine=MACHINE)
    return {
        "off_node_gets": report.total_stats.off_node_ops,
        "gets": report.total_stats.gets,
        "align_time": report.alignment_time,
        "seed_hit_rate": (report.cache_stats["seed_index"].hit_rate
                          if "seed_index" in report.cache_stats else 0.0),
        "target_hit_rate": (report.cache_stats["target"].hit_rate
                            if "target" in report.cache_stats else 0.0),
        "alignments": [(a.query_name, a.target_id, a.score, a.query_start,
                        a.query_end, a.target_start, a.target_end, a.strand)
                       for a in report.alignments],
    }


@pytest.mark.benchmark(group="batched_alignment")
def test_batched_vs_finegrained(benchmark, human_like_dataset, bench_config):
    def experiment():
        results = {}
        for cached in (False, True):
            base = bench_config.with_(use_seed_index_cache=cached,
                                      use_target_cache=cached)
            bulk = base.with_(use_bulk_lookups=True,
                              lookup_batch_size=BATCH_SIZE)
            for cores in CORE_POINTS:
                results[(cores, cached)] = (
                    run_engine(human_like_dataset, base, cores),
                    run_engine(human_like_dataset, bulk, cores))
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for (cores, cached), (fine, bulk) in sorted(results.items(),
                                                key=lambda kv: (kv[0][1], kv[0][0])):
        rows.append([cores, "on" if cached else "off",
                     fine["off_node_gets"], bulk["off_node_gets"],
                     fine["off_node_gets"] / max(bulk["off_node_gets"], 1),
                     fine["align_time"], bulk["align_time"],
                     bulk["seed_hit_rate"], bulk["target_hit_rate"]])
    lines = ["Batched bulk-communication engine vs fine-grained aligning phase",
             f"(windows of {BATCH_SIZE} reads; off-node one-sided gets and "
             "modelled align-phase seconds)", ""]
    lines += format_table(["ranks", "caches", "gets fine", "gets bulk",
                           "reduction", "align fine (s)", "align bulk (s)",
                           "seed hit%", "target hit%"], rows)
    lines += ["", "alignments are byte-identical between the two engines at "
              "every point above"]
    write_report("batched_vs_finegrained", lines)

    for (cores, cached), (fine, bulk) in results.items():
        # Transport-only optimization: identical alignments everywhere.
        assert fine["alignments"] == bulk["alignments"], (cores, cached)
        # Aggregation cannot *increase* remote message counts.
        assert bulk["off_node_gets"] <= fine["off_node_gets"]
    # Acceptance: >= 2x fewer off-node gets at 8 ranks with caches disabled,
    # and a faster modelled aligning phase.
    fine8, bulk8 = results[(8, False)]
    assert bulk8["off_node_gets"] * 2 <= fine8["off_node_gets"]
    assert bulk8["gets"] * 2 <= fine8["gets"]
    assert bulk8["align_time"] < fine8["align_time"]
