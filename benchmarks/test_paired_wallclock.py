"""Paired-end workload: measured wall-clock per execution backend.

The PR-5 paired workload shipped with modelled-time benchmarks only
(test_paired_alignment.py); this benchmark closes the loop with *host
wall-clock* measurements of the paired plan -- pair join, bulk mate rescue
and the paired SAM sink included -- on the cooperative in-process driver
and the true multiprocess backend, mirroring test_backend_scaling.py for
the align workload.

The interesting quantity is again the process-backend speedup over
cooperative at 4 ranks: the rescue-heavy library below keeps every rank
busy with banded Smith-Waterman (seed-dead R2 mates), which is exactly the
work that parallelises across rank processes.  Correctness is asserted
unconditionally (paired SAM byte-identical across backends at every rank
count); the wall-clock target is asserted only when armed via
REPRO_ASSERT_BACKEND_SCALING on a runner with known core counts.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.config import AlignerConfig
from repro.core.plan import PlanRunner, plan_for_workload
from repro.dna.synthetic import GenomeSpec, ReadRecord, ReadSetSpec, make_dataset
from repro.io.sam import paired_sam_text
from repro.pgas.cost_model import LAPTOP_LIKE

from conftest import format_table, write_report

RANK_POINTS = [1, 2, 4]
BACKENDS = ["cooperative", "process"]

#: Single-node machine model: all ranks on one node, like the host really is.
MACHINE = LAPTOP_LIKE

FLIP = {"A": "C", "C": "G", "G": "T", "T": "A"}


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def paired_scaling_dataset():
    """Compute-dense paired library: sequencing errors push most reads down
    the seed-and-extend path, and every second pair's R2 is seed-dead (an
    error every 10 bases) so mate rescue runs real banded SW per rank."""
    spec = GenomeSpec(name="pscaling", genome_length=30_000, n_contigs=40,
                      repeat_fraction=0.05, repeat_unit_length=250,
                      min_contig_length=300)
    read_spec = ReadSetSpec(coverage=3.0, read_length=100, error_rate=0.02,
                            paired=True, insert_size=320, insert_sd=25)
    genome, reads = make_dataset(spec, read_spec, seed=404)
    out = list(reads)
    for i in range(0, len(out), 4):  # every second pair
        mate = out[i + 1]
        sequence = list(mate.sequence)
        for j in range(0, len(sequence), 10):
            sequence[j] = FLIP[sequence[j]]
        out[i + 1] = ReadRecord(name=mate.name, sequence="".join(sequence),
                                quality=mate.quality, mate_of=mate.mate_of)
    return genome, out


@pytest.fixture(scope="module")
def paired_scaling_config():
    """Bulk-batched engine (the configuration that keeps multiprocess
    channel traffic amortised), with mate rescue at its defaults."""
    return AlignerConfig(seed_length=21, fragment_length=1500, seed_stride=2,
                         insert_size=320, insert_slack=80,
                         seed_cache_bytes_per_node=4 * 1024 * 1024,
                         target_cache_bytes_per_node=2 * 1024 * 1024,
                         use_bulk_lookups=True, lookup_batch_size=128)


@pytest.mark.benchmark(group="paired_wallclock")
def test_paired_backend_wallclock(benchmark, paired_scaling_dataset,
                                  paired_scaling_config):
    genome, reads = paired_scaling_dataset
    cores = usable_cores()
    names = [f"contig{i:05d}" for i in range(len(genome.contigs))]
    lengths = [len(c) for c in genome.contigs]

    def experiment():
        results = {}
        sams = {}
        rescues = {}
        for backend in BACKENDS:
            for ranks in RANK_POINTS:
                start = time.perf_counter()
                result = PlanRunner(plan_for_workload("paired"),
                                    paired_scaling_config).run(
                    genome.contigs, reads, n_ranks=ranks, machine=MACHINE,
                    backend=backend)
                total = time.perf_counter() - start
                align_wall = result.report.phase("align_reads").wall_seconds
                results[(backend, ranks)] = (align_wall, total)
                sams[(backend, ranks)] = paired_sam_text(result.output,
                                                         names, lengths)
                rescues[(backend, ranks)] = result.report.counters.mate_rescues
        return results, sams, rescues

    results, sams, rescues = benchmark.pedantic(experiment, rounds=1,
                                                iterations=1)

    # Correctness on every host: byte-identical paired SAM everywhere.
    reference = sams[("cooperative", RANK_POINTS[0])]
    for key, sam in sams.items():
        assert sam == reference, f"paired SAM diverged at {key}"
    assert rescues[("cooperative", RANK_POINTS[0])] > 0  # rescue work ran

    speedups = {ranks: results[("cooperative", ranks)][0]
                / results[("process", ranks)][0]
                for ranks in RANK_POINTS}
    rows = []
    for ranks in RANK_POINTS:
        coop_align, coop_total = results[("cooperative", ranks)]
        proc_align, proc_total = results[("process", ranks)]
        rows.append([ranks, coop_align, proc_align, speedups[ranks],
                     coop_total, proc_total])

    lines = [
        "Paired workload: measured wall-clock of the aligning phase per backend",
        f"host: {cores} usable core(s); dataset: {len(genome.contigs)} "
        f"contigs, {len(reads) // 2} pairs "
        f"({rescues[('cooperative', RANK_POINTS[0])]} mates rescued); "
        "bulk-batched engine (window = "
        f"{paired_scaling_config.lookup_batch_size} pairs)", "",
    ]
    lines += format_table(
        ["ranks", "cooperative align (s)", "process align (s)",
         "process speedup", "coop total (s)", "process total (s)"], rows)
    lines += [
        "",
        f"process-backend speedup over cooperative at 4 ranks "
        f"(alignment phase): {speedups[4]:.2f}x",
        "target: >= 1.5x on a >= 4-core host (pair join and bulk mate "
        "rescue add serial",
        "sink work per window, so the bar sits below the align workload's "
        "2x).",
    ]
    if cores < 4:
        lines += [
            f"NOTE: this host exposes only {cores} core(s), so the rank "
            "processes time-share one CPU and no wall-clock speedup is "
            "physically possible here; re-run on >= 4 cores for the "
            "scaling result.",
        ]
    # Measured wall-clock rows jitter run to run: mask their floats when
    # deciding whether the results file changed (benchmarks/README.md).
    write_report("paired_wallclock", lines,
                 volatile=(r"^\d+\s", r"speedup over cooperative"))

    # The wall-clock target is asserted only when explicitly armed (the
    # dedicated CI job sets REPRO_ASSERT_BACKEND_SCALING on a known
    # >= 4-core runner); shared tier-1 runners are too noisy to gate on.
    if os.environ.get("REPRO_ASSERT_BACKEND_SCALING") and cores >= 4:
        assert speedups[4] >= 1.5, (
            f"expected >= 1.5x at 4 ranks on a {cores}-core host, "
            f"measured {speedups[4]:.2f}x")
        # More ranks must help the process backend itself.
        assert results[("process", 4)][0] < results[("process", 1)][0]
