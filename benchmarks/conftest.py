"""Shared fixtures and reporting helpers for the benchmark harness.

Every figure and table of the paper's evaluation section has one benchmark
module here (see DESIGN.md section 4 for the index).  Each benchmark

* regenerates the experiment on scaled-down synthetic data and scaled-down
  core counts (documented in EXPERIMENTS.md),
* prints the same rows/series the paper reports (visible with ``pytest -s``),
* writes the table to ``benchmarks/results/<name>.txt`` so results survive the
  run, and
* asserts the qualitative *shape* of the paper's result (who wins, direction
  of the effect), never absolute seconds.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.core.config import AlignerConfig
from repro.dna.synthetic import GenomeSpec, ReadSetSpec, make_dataset
from repro.pgas.cost_model import EDISON_LIKE

RESULTS_DIR = Path(__file__).parent / "results"

#: Scaled-down concurrency sweep standing in for the paper's 480..15,360 cores.
CORE_SWEEP = [4, 8, 16, 32, 64]

#: Machine model used by all distributed-memory benchmarks (8 ranks per node
#: keeps several nodes in play even at the scaled-down rank counts).
BENCH_MACHINE = EDISON_LIKE.with_cores_per_node(8)

#: Lines dropped before deciding whether a results file actually changed:
#: host descriptions and timestamps vary per machine/run without carrying
#: benchmark content.
VOLATILE_LINE = re.compile(r"^(host|date|timestamp|recorded)\s*:", re.IGNORECASE)

_FLOAT = re.compile(r"-?\d+\.\d+(e[+-]?\d+)?|-?\d+e[+-]?\d+", re.IGNORECASE)


def _normalized(text: str, volatile: tuple[str, ...]) -> str:
    """The churn-comparison form of a results file.

    Drops the volatile header lines and, on lines matching any *volatile*
    pattern (a benchmark's own wall-clock rows), masks floating-point tokens
    -- so re-running a measured benchmark on the same code rewrites its file
    only when the non-measured content (structure, notes, counts) moved.
    """
    patterns = [re.compile(p) for p in volatile]
    kept: list[str] = []
    for line in text.splitlines():
        if VOLATILE_LINE.match(line):
            continue
        if any(p.search(line) for p in patterns):
            line = _FLOAT.sub("#", line)
        # Table column widths track the widest rendered value, so masked
        # float jitter still shifts padding and dash rules; collapse both
        # so only content differences count.
        line = re.sub(r" {2,}", " ", re.sub(r"-{3,}", "---", line)).rstrip()
        kept.append(line)
    return "\n".join(kept)


def write_report(name: str, lines: list[str],
                 volatile: tuple[str, ...] = ()) -> None:
    """Print a benchmark report and persist it under benchmarks/results/.

    The file is rewritten only when its content changed *modulo* the
    volatile parts (host/timestamp lines, plus float values on lines
    matching the *volatile* regexes -- used by wall-clock benchmarks whose
    measurements jitter on every run).  Deterministic modelled-time
    benchmarks therefore leave no diff on a re-run, keeping
    ``benchmarks/results/`` churn-free in version control; see
    benchmarks/README.md for the convention.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = "\n".join(lines)
    print("\n" + text)
    path = RESULTS_DIR / f"{name}.txt"
    if path.exists():
        old = path.read_text(encoding="utf-8")
        if _normalized(old, volatile) == _normalized(text + "\n", volatile):
            print(f"[{name}.txt unchanged (modulo volatile lines); not rewritten]")
            return
    path.write_text(text + "\n", encoding="utf-8")


def format_table(headers: list[str], rows: list[list]) -> list[str]:
    """Fixed-width text table (the benchmarks' equivalent of the paper's plots)."""
    str_rows = [[f"{value:.4g}" if isinstance(value, float) else str(value)
                 for value in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
              else len(headers[i]) for i in range(len(headers))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return lines


# ---------------------------------------------------------------------------
# Scaled-down data sets (the paper's human / wheat / E. coli equivalents).
# ---------------------------------------------------------------------------

@pytest.fixture(scope="session")
def human_like_dataset():
    """Scaled-down human-like data set (Figs 1, 8, 9, 10; Tables I, II)."""
    spec = GenomeSpec(name="human-like", genome_length=60_000, n_contigs=150,
                      repeat_fraction=0.05, repeat_unit_length=300,
                      min_contig_length=200)
    reads = ReadSetSpec(coverage=3.0, read_length=100, error_rate=0.005)
    return make_dataset(spec, reads, seed=101)


@pytest.fixture(scope="session")
def wheat_like_dataset():
    """Scaled-down wheat-like data set: larger and more repetitive (Fig 1)."""
    spec = GenomeSpec(name="wheat-like", genome_length=100_000, n_contigs=250,
                      repeat_fraction=0.20, repeat_unit_length=400,
                      min_contig_length=200)
    reads = ReadSetSpec(coverage=2.0, read_length=100, error_rate=0.005)
    return make_dataset(spec, reads, seed=102)


@pytest.fixture(scope="session")
def ecoli_like_dataset():
    """Scaled-down E. coli-like single-chromosome data set (Fig 11)."""
    spec = GenomeSpec(name="ecoli-like", genome_length=60_000, n_contigs=1,
                      repeat_fraction=0.01, min_contig_length=500)
    reads = ReadSetSpec(coverage=2.0, read_length=100, error_rate=0.005)
    return make_dataset(spec, reads, seed=103)


@pytest.fixture(scope="session")
def bench_config() -> AlignerConfig:
    """Aligner configuration used by the distributed benchmarks.

    k = 31 stands in for the paper's k = 51 at the scaled-down genome size;
    seed_stride = 2 halves the query-seed extraction work without changing
    which reads align (EXPERIMENTS.md discusses the substitution).
    """
    return AlignerConfig(seed_length=31, fragment_length=2000,
                         aggregation_buffer_size=64,
                         seed_cache_bytes_per_node=2 * 1024 * 1024,
                         target_cache_bytes_per_node=1 * 1024 * 1024,
                         seed_stride=2)
