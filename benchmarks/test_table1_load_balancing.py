"""Table I: effect of the load-balancing scheme (random read permutation).

Paper result (480 cores, human): permuting the reads cuts the maximum per-rank
computation time ~2.5x (1,945 s -> 800 s) while the total alignment time
improves only ~5%, because the grouped ordering happened to make the seed
index cache very effective; min/max/avg computation and total alignment times
are reported for both orderings.

Reproduction: reads are generated grouped by genome region with part of the
genome uncovered by any contig (the paper's explanation for the imbalance:
grouped reads that map nowhere need no Smith-Waterman).  The pipeline runs
with and without permutation and reports the same six numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import MerAligner
from repro.dna.synthetic import GenomeSpec, ReadSetSpec, make_dataset, sample_reads

from conftest import BENCH_MACHINE, format_table, write_report

N_RANKS = 16


@pytest.mark.benchmark(group="table1")
def test_table1_load_balancing(benchmark, bench_config):
    spec = GenomeSpec(name="table1", genome_length=60_000, n_contigs=1,
                      repeat_fraction=0.0)
    genome, _ = make_dataset(spec, ReadSetSpec(coverage=1, read_length=100), seed=201)
    # Only 60% of the genome is covered by contigs; reads from the uncovered
    # tail map nowhere and are "fast".
    contigs = [genome.genome[:36_000]]
    rng = np.random.default_rng(202)
    grouped_reads = sample_reads(
        genome, ReadSetSpec(coverage=2.0, read_length=100, error_rate=0.02,
                            grouped=True), rng)

    def experiment():
        with_lb = MerAligner(bench_config.with_(permute_reads=True)).run(
            contigs, grouped_reads, n_ranks=N_RANKS, machine=BENCH_MACHINE)
        without_lb = MerAligner(bench_config.with_(permute_reads=False)).run(
            contigs, grouped_reads, n_ranks=N_RANKS, machine=BENCH_MACHINE)
        return with_lb, without_lb

    with_lb, without_lb = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for label, report in (("Yes", with_lb), ("No", without_lb)):
        summary = report.load_balance_summary()
        rows.append([label,
                     summary["compute_min"], summary["compute_max"],
                     summary["compute_avg"],
                     summary["total_min"], summary["total_max"],
                     summary["total_avg"]])
    lines = [f"Table I: effect of the load-balancing scheme ({N_RANKS} ranks, "
             "modelled seconds)",
             "columns: computation time (min/max/avg), total alignment time "
             "(min/max/avg)", ""]
    lines += format_table(["Load balancing", "comp min", "comp max", "comp avg",
                           "total min", "total max", "total avg"], rows)
    ratio = (without_lb.load_balance_summary()["compute_max"]
             / max(with_lb.load_balance_summary()["compute_max"], 1e-12))
    lines += ["", f"maximum computation time reduced {ratio:.2f}x by load "
                  "balancing (paper: ~2.4x)"]
    write_report("table1_load_balancing", lines)

    lb_summary = with_lb.load_balance_summary()
    nolb_summary = without_lb.load_balance_summary()
    # Load balancing reduces the maximum computation time ...
    assert lb_summary["compute_max"] < nolb_summary["compute_max"]
    # ... and tightens the per-rank spread.
    lb_spread = lb_summary["compute_max"] - lb_summary["compute_min"]
    nolb_spread = nolb_summary["compute_max"] - nolb_summary["compute_min"]
    assert lb_spread < nolb_spread
    # Average computation is essentially unchanged (same total work).
    assert lb_summary["compute_avg"] == pytest.approx(nolb_summary["compute_avg"],
                                                      rel=0.25)
