"""Measured load against the alignment server (ISSUE 7 load-gen harness).

The serving benchmarks so far measured the *session* (modelled time,
communication); this one measures the *server* as deployed: a socket
listener, the micro-batching scheduler and an open-loop mixed-workload
client (:class:`repro.obs.loadgen.LoadGenerator`) driving align / count /
screen / paired requests at a fixed offered rate.

Reported per backend:

* the deterministic side (unmasked rows): per-workload request counts --
  fixed by the generator's seed -- plus the server's own request counters
  scraped over ``METRICS``, which must agree exactly with what the client
  offered;
* the measured side (volatile-masked rows): client-observed p50/p95/p99
  wall-clock latency, achieved QPS, and server-reported batch occupancy.

Correctness (zero failed requests, counter agreement) is asserted
unconditionally.  The wall-clock comparison across backends is reported
always but asserted only when armed via ``REPRO_ASSERT_BACKEND_SCALING``
on a runner with enough cores, mirroring test_paired_wallclock.py.
"""

from __future__ import annotations

import os

import pytest

from repro import api
from repro.dna.synthetic import GenomeSpec, ReadSetSpec, make_dataset
from repro.obs.loadgen import LoadGenerator
from repro.pgas.cost_model import LAPTOP_LIKE

from conftest import format_table, write_report

BACKENDS = ["cooperative", "process"]
N_REQUESTS = 40
QPS = 40.0
CONCURRENCY = 8
SEED = 7
MACHINE = LAPTOP_LIKE


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def load_dataset():
    """One genome, a single-end pool and an interleaved paired pool."""
    spec = GenomeSpec(name="loadgen", genome_length=20_000, n_contigs=30,
                      repeat_fraction=0.05, repeat_unit_length=250,
                      min_contig_length=300)
    genome, single = make_dataset(
        spec, ReadSetSpec(coverage=2.0, read_length=100, error_rate=0.01),
        seed=701)
    _, paired = make_dataset(
        spec, ReadSetSpec(coverage=1.0, read_length=100, error_rate=0.01,
                          paired=True, insert_size=320, insert_sd=25),
        seed=702)
    return genome, single, paired


def drive(genome, single, paired, backend):
    """Serve with *backend*, offer the fixed mixed load, return the report."""
    with api.serve(genome.contigs, n_ranks=4, machine=MACHINE,
                   backend=backend, port=0, max_wait_s=0.005) as service:
        generator = LoadGenerator(
            "127.0.0.1", service.port, single, paired_reads=paired,
            qps=QPS, concurrency=CONCURRENCY, n_requests=N_REQUESTS,
            reads_per_request=8, seed=SEED, timeout=600.0)
        return generator.run()


class TestLoadServer:
    def test_measured_load_mixed_workloads(self, load_dataset):
        genome, single, paired = load_dataset
        reports = {}
        for backend in BACKENDS:
            report = reports[backend] = drive(genome, single, paired, backend)

            # Correctness, asserted unconditionally: the offered load was
            # fully served and the server's counters agree with the client.
            failures = [o.error for o in report.outcomes if not o.ok]
            assert not failures, (backend, failures[:3])
            assert report.n_requests == N_REQUESTS
            metrics = report.server_metrics
            assert metrics is not None, f"{backend}: METRICS scrape failed"
            counters = metrics["metrics"]["counters"]
            for workload, count in report.counts_by_workload().items():
                key = f'scheduler_requests_total{{workload="{workload}"}}'
                assert counters[key] == count, (backend, workload)
            assert metrics["service"]["requests"] == N_REQUESTS
            assert metrics["service"]["failed_requests"] == 0
            # The open-loop seed fixes the mix: every backend saw the same
            # deterministic per-workload split.
            assert report.counts_by_workload() == \
                reports[BACKENDS[0]].counts_by_workload()

        lines = [f"Measured server load: {N_REQUESTS} requests @ {QPS} QPS "
                 f"offered, concurrency {CONCURRENCY}, seed {SEED}",
                 f"workload mix (deterministic): "
                 f"{reports[BACKENDS[0]].counts_by_workload()}",
                 ""]
        headers = ["backend", "achieved_qps", "p50_s", "p95_s", "p99_s",
                   "batch_occupancy"]
        rows = []
        for backend in BACKENDS:
            report = reports[backend]
            pct = report.latency_percentiles()
            rows.append([backend, report.achieved_qps, pct["p50"],
                         pct["p95"], pct["p99"], report.batch_occupancy])
        lines += format_table(headers, rows)
        lines += ["",
                  "Latency is client-observed wall-clock from *scheduled* "
                  "dispatch (open loop:",
                  "server-side queueing counts as latency).  Counts are "
                  "deterministic given the",
                  "seed; latency/QPS/occupancy rows are measured and "
                  "volatile-masked."]
        write_report("load_server", lines,
                     volatile=(r"^(cooperative|process)\s",))

        if os.environ.get("REPRO_ASSERT_BACKEND_SCALING") and \
                usable_cores() >= 4:
            # Loose gate: under real parallel load the process backend's tail
            # latency must not be a regression vs cooperative by more than 4x
            # (it runs real processes; cooperative simulates in one).
            coop = reports["cooperative"].latency_percentiles()["p95"]
            proc = reports["process"].latency_percentiles()["p95"]
            assert proc < 4.0 * max(coop, 0.01), (proc, coop)
