"""Figure 8: distributed seed index construction with and without the
"aggregating stores" optimization.

Paper result: with S = 1000, construction time drops 4.7x / 3.9x / 4.8x at
480 / 1,920 / 7,680 cores, and the optimized construction scales near-linearly
(12.7x speedup for a 16x core increase).

Reproduction: the pipeline is run with an empty read set (construction only)
over three scaled core counts, with and without aggregating stores.  We assert
a multi-x improvement at every concurrency and near-linear scaling of the
optimized construction.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import MerAligner

from conftest import BENCH_MACHINE, format_table, write_report

CORE_POINTS = [4, 16, 64]   # stands in for 480 / 1,920 / 7,680


def construction_time(dataset, config, cores):
    genome, _ = dataset
    report = MerAligner(config).run(genome.contigs, [], n_ranks=cores,
                                    machine=BENCH_MACHINE)
    return report.index_construction_time, report


@pytest.mark.benchmark(group="fig8")
def test_fig8_aggregating_stores(benchmark, human_like_dataset, bench_config):
    def experiment():
        results = {}
        for cores in CORE_POINTS:
            with_opt, _ = construction_time(human_like_dataset, bench_config, cores)
            without_opt, _ = construction_time(
                human_like_dataset, bench_config.with_(use_aggregating_stores=False),
                cores)
            results[cores] = (without_opt, with_opt)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [[cores, without_opt, with_opt, without_opt / with_opt]
            for cores, (without_opt, with_opt) in results.items()]
    lines = ["Figure 8: distributed seed index construction (modelled seconds)",
             f"S = {bench_config.aggregation_buffer_size} "
             "(paper uses S = 1000 and reports 4.7x / 3.9x / 4.8x)", ""]
    lines += format_table(["cores", "build w/o opt", "build w/ opt", "improvement"],
                          rows)
    optimized = {cores: with_opt for cores, (_, with_opt) in results.items()}
    scaling = optimized[CORE_POINTS[0]] / optimized[CORE_POINTS[-1]]
    lines += ["", f"optimized construction speedup {CORE_POINTS[0]}->{CORE_POINTS[-1]} "
                  f"ranks: {scaling:.1f}x for a {CORE_POINTS[-1] // CORE_POINTS[0]}x "
              "core increase (paper: 12.7x for 16x)"]
    write_report("fig8_aggregating_stores", lines)

    # Shape assertions: the optimization wins everywhere by a healthy factor,
    # and the optimized build strong-scales.
    for cores, (without_opt, with_opt) in results.items():
        assert without_opt / with_opt > 2.0, f"expected >2x at {cores} ranks"
    # The optimized construction keeps getting faster with more ranks.  At
    # this scaled-down seed count the per-rank flush cost hits its (p - 1)
    # message floor (each rank sends at least one aggregate per destination),
    # which caps the measured speedup well below the paper's 12.7x-for-16x;
    # EXPERIMENTS.md discusses the granularity effect.
    assert scaling > 1.5
