"""Gateway result cache under duplicate-heavy vs unique request streams.

The multi-tenant gateway (ISSUE 8) answers exact-duplicate requests from a
TTL'd result cache without touching any scheduler.  This benchmark drives
an in-process :class:`repro.gateway.AlignmentGateway` with two seeded
request streams:

* **duplicate-heavy** -- every request drawn from a small pool of distinct
  payloads, the regime the cache is built for (think health checks,
  retried clients, shared dashboards);
* **unique** -- every request distinct, the adversarial regime where the
  cache can only ever miss.

swept across TTLs (``0`` disables the cache entirely).  Hit/miss/store
counts are *deterministic* given the stream seed -- every duplicate of a
still-resident entry hits -- so those rows are unmasked and asserted:
``ttl=0`` and the unique stream never hit, the duplicate-heavy stream with
a live TTL hits on every repeat (hit rate well above 0.5).  Per-request
wall-clock latency (cached vs scheduled) is measured and volatile-masked.
"""

from __future__ import annotations

import random
import time

from repro.core.pipeline import MerAligner
from repro.dna.synthetic import GenomeSpec, ReadSetSpec, make_dataset
from repro.gateway import AlignmentGateway
from repro.obs.registry import percentile

from conftest import BENCH_MACHINE, format_table, write_report

N_REQUESTS = 60
POOL_DISTINCT = 8          # distinct payloads in the duplicate-heavy stream
READS_PER_REQUEST = 6
TTL_SWEEP = (0.0, 5.0, 60.0)
STREAM_SEED = 83
BACKEND = "cooperative"


def build_dataset():
    genome, reads = make_dataset(
        GenomeSpec(name="cacheref", genome_length=10_000, n_contigs=5),
        ReadSetSpec(coverage=2.0, read_length=70), seed=83)
    return genome, reads


def request_stream(reads, kind: str) -> list[list]:
    """A seeded schedule of ``N_REQUESTS`` read batches.

    ``duplicate-heavy`` draws each request from ``POOL_DISTINCT`` fixed
    windows of the pool; ``unique`` gives every request its own (stride-1,
    overlapping) window, so no two requests share a payload.
    """
    assert len(reads) >= N_REQUESTS + READS_PER_REQUEST
    rng = random.Random(STREAM_SEED)
    if kind == "duplicate-heavy":
        pool = [reads[i * READS_PER_REQUEST:(i + 1) * READS_PER_REQUEST]
                for i in range(POOL_DISTINCT)]
        return [pool[rng.randrange(POOL_DISTINCT)]
                for _ in range(N_REQUESTS)]
    return [reads[i:i + READS_PER_REQUEST] for i in range(N_REQUESTS)]


def drive(genome, stream, ttl_s: float) -> dict:
    """Serve one stream through a fresh gateway; return counters + latency."""
    session = MerAligner().prepare(genome.contigs, n_ranks=4,
                                   machine=BENCH_MACHINE, backend=BACKEND)
    gateway = AlignmentGateway(session, cache_ttl_s=ttl_s)
    lat_cached: list[float] = []
    lat_sched: list[float] = []
    first_text: dict[int, str] = {}
    try:
        for batch in stream:
            t0 = time.perf_counter()
            response = gateway.request(batch, workload="align")
            elapsed = time.perf_counter() - t0
            (lat_cached if response.cached else lat_sched).append(elapsed)
            # A cached replay must be byte-identical to the scheduled run
            # of the same payload.
            key = id(batch)
            if key in first_text:
                assert response.text == first_text[key]
            else:
                first_text[key] = response.text
        cache = gateway.cache
        return {"hits": cache.hits, "misses": cache.misses,
                "stores": cache.stores, "lat_cached": lat_cached,
                "lat_sched": lat_sched}
    finally:
        gateway.close()


def lat_row(label: str, samples: list[float]) -> str:
    if not samples:
        return f"lat {label}: (none)"
    return (f"lat {label}: n={len(samples)} "
            f"p50={percentile(samples, 0.50):.6f}s "
            f"p95={percentile(samples, 0.95):.6f}s")


class TestGatewayCache:
    def test_cache_hit_rates_and_latency(self):
        genome, reads = build_dataset()
        dup_stream = request_stream(reads, "duplicate-heavy")
        uniq_stream = request_stream(reads, "unique")
        n_distinct = len({id(batch) for batch in dup_stream})

        rows = []
        lat_lines = []
        results = {}
        for ttl in TTL_SWEEP:
            out = results[("duplicate-heavy", ttl)] = drive(
                genome, dup_stream, ttl)
            hit_rate = out["hits"] / N_REQUESTS
            rows.append(["duplicate-heavy", ttl, N_REQUESTS, n_distinct,
                         out["hits"], out["misses"], out["stores"],
                         f"{hit_rate:.3f}"])
            lat_lines.append(lat_row(f"duplicate-heavy ttl={ttl:g} scheduled",
                                     out["lat_sched"]))
            lat_lines.append(lat_row(f"duplicate-heavy ttl={ttl:g} cached",
                                     out["lat_cached"]))
        out = results[("unique", 60.0)] = drive(genome, uniq_stream, 60.0)
        rows.append(["unique", 60.0, N_REQUESTS, N_REQUESTS, out["hits"],
                     out["misses"], out["stores"],
                     f"{out['hits'] / N_REQUESTS:.3f}"])
        lat_lines.append(lat_row("unique ttl=60 scheduled", out["lat_sched"]))

        # Deterministic shape assertions.
        disabled = results[("duplicate-heavy", 0.0)]
        assert disabled["hits"] == 0 and disabled["misses"] == 0, \
            "ttl=0 must disable the cache entirely (no counting)"
        assert results[("unique", 60.0)]["hits"] == 0
        for ttl in TTL_SWEEP[1:]:
            live = results[("duplicate-heavy", ttl)]
            # Every repeat of a resident entry hits: hits = requests - distinct.
            assert live["hits"] == N_REQUESTS - n_distinct
            assert live["misses"] == n_distinct
            assert live["stores"] == n_distinct
            assert live["hits"] / N_REQUESTS > 0.5

        lines = [f"Gateway result cache: {N_REQUESTS} align requests, "
                 f"{READS_PER_REQUEST} reads each, backend={BACKEND}, "
                 f"stream seed {STREAM_SEED}",
                 f"duplicate-heavy stream draws from {POOL_DISTINCT} distinct "
                 f"payloads ({n_distinct} seen); unique stream repeats none",
                 ""]
        headers = ["stream", "ttl_s", "requests", "distinct", "hits",
                   "misses", "stores", "hit_rate"]
        lines += format_table(headers, rows)
        lines += ["",
                  "Hit/miss/store counts are deterministic (every duplicate "
                  "of a resident entry",
                  "hits; ttl=0 disables the cache).  Latency rows below are "
                  "measured wall-clock",
                  "per request, volatile-masked.",
                  ""]
        lines += lat_lines
        write_report("gateway_cache", lines, volatile=(r"^lat\b",))
