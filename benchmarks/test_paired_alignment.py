"""Paired-end workload benchmark: pairing quality vs read error rate.

The paper's comparison aligners (BWA-mem, Bowtie2 in Table II) serve
paired-end reads as their dominant production workload; this benchmark runs
the plan-built ``paired`` workload over an error-rate sweep and records the
pairing outcomes -- aligned-mate fraction, proper-pair fraction, mate-rescue
activity -- plus the modelled aligning-phase time, on the bulk-batched
engine.

Asserted shape: every pair yields exactly two SAM records on every sweep
point, the error-free sweep point pairs nearly everything properly, and
pairing quality never *improves* as errors are added.
"""

from conftest import BENCH_MACHINE, format_table, write_report

from repro.core.config import AlignerConfig
from repro.core.plan import PlanRunner, plan_for_workload
from repro.dna.synthetic import GenomeSpec, ReadSetSpec, make_dataset

ERROR_SWEEP = [0.0, 0.01, 0.03]


def test_paired_error_sweep():
    spec = GenomeSpec(name="paired-bench", genome_length=60_000, n_contigs=40,
                      repeat_fraction=0.05, repeat_unit_length=300,
                      min_contig_length=400)
    config = AlignerConfig(seed_length=31, fragment_length=2000,
                           seed_stride=2, use_bulk_lookups=True,
                           lookup_batch_size=64,
                           insert_size=300, insert_slack=75)
    rows = []
    aligned_fractions = []
    proper_fractions = []
    for error_rate in ERROR_SWEEP:
        read_spec = ReadSetSpec(coverage=2.0, read_length=100,
                                error_rate=error_rate, paired=True,
                                insert_size=300, insert_sd=25)
        genome, reads = make_dataset(spec, read_spec, seed=207)
        result = PlanRunner(plan_for_workload("paired"), config).run(
            genome.contigs, reads, n_ranks=8, machine=BENCH_MACHINE)
        pairs = result.output
        counters = result.report.counters
        assert counters.pairs_processed == len(reads) // 2
        assert len(pairs) == len(reads) // 2  # two SAM records per pair
        aligned_fraction = counters.reads_aligned / counters.reads_processed
        proper_fraction = (sum(1 for pair in pairs if pair.proper)
                           / len(pairs))
        aligned_fractions.append(aligned_fraction)
        proper_fractions.append(proper_fraction)
        rows.append([
            f"{error_rate:.2f}", len(pairs),
            aligned_fraction, proper_fraction,
            counters.mate_rescue_attempts, counters.mate_rescues,
            result.report.alignment_time,
        ])

    lines = ["Paired-end workload: pairing quality vs read error rate",
             f"dataset: {spec.genome_length} bp / {spec.n_contigs} contigs, "
             "2x coverage, 100 bp mates, insert 300 +- 25; "
             "bulk-batched engine, 8 ranks", ""]
    lines += format_table(
        ["error", "pairs", "mate aligned frac", "proper frac",
         "rescue attempts", "rescues", "align time (s)"], rows)
    lines += ["",
              "Proper pairs demand both mates mapped FR on one contig with "
              "an in-range TLEN;",
              "mate rescue re-places a lost mate by banded SW inside the "
              "insert window around its anchor."]
    write_report("paired_alignment", lines)

    # Error-free reads pair nearly perfectly; added errors never help.
    assert proper_fractions[0] > 0.65
    assert aligned_fractions[0] > 0.9
    assert aligned_fractions[-1] <= aligned_fractions[0] + 0.02
    assert proper_fractions[-1] <= proper_fractions[0] + 0.02
