"""Backend scaling: measured wall-clock of the aligning phase per execution
backend.

Unlike the figure benchmarks (which report *modelled* seconds from the
machine model -- identical on every backend by construction), this benchmark
measures *host wall-clock* time: how long the cooperative in-process driver
and the true multiprocess backend actually take to run the aligning phase on
the machine executing the suite.

The interesting quantity is the process-backend speedup over cooperative at
4 ranks.  It is bounded by the physical core count: on a >= 4-core host the
numpy-heavy Smith-Waterman sweeps of the four rank processes run on four
cores and the target is >= 2x; on fewer cores the processes time-share and no
parallel speedup is physically possible (the report records the host's core
count next to the measurement so the number can be read in context).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.pipeline import MerAligner
from repro.dna.synthetic import GenomeSpec, ReadSetSpec, make_dataset
from repro.pgas.cost_model import LAPTOP_LIKE

from conftest import format_table, write_report

RANK_POINTS = [1, 2, 4]
BACKENDS = ["cooperative", "process"]

#: Single-node machine model: all ranks on one node, like the host really is.
MACHINE = LAPTOP_LIKE


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def scaling_dataset():
    """Compute-dense dataset: enough sequencing errors that most reads take
    the full seed-and-extend path (real Smith-Waterman work per rank)."""
    spec = GenomeSpec(name="scaling", genome_length=40_000, n_contigs=60,
                      repeat_fraction=0.05, repeat_unit_length=250,
                      min_contig_length=250)
    reads = ReadSetSpec(coverage=3.0, read_length=100, error_rate=0.02)
    return make_dataset(spec, reads, seed=202)


@pytest.fixture(scope="module")
def scaling_config():
    """Bulk-batched engine: windows of reads per aggregated heap message,
    which is the configuration that keeps the multiprocess backend's channel
    traffic amortised (the fine-grained engine pays one message per lookup)."""
    from repro.core.config import AlignerConfig
    return AlignerConfig(seed_length=21, fragment_length=1500,
                         seed_cache_bytes_per_node=4 * 1024 * 1024,
                         target_cache_bytes_per_node=2 * 1024 * 1024,
                         use_bulk_lookups=True, lookup_batch_size=256)


def align_wall_seconds(report) -> float:
    return report.phase("align_reads").wall_seconds


@pytest.mark.benchmark(group="backend_scaling")
def test_backend_scaling(benchmark, scaling_dataset, scaling_config):
    genome, reads = scaling_dataset
    cores = usable_cores()

    def experiment():
        results: dict[tuple[str, int], tuple[float, float]] = {}
        signatures: dict[tuple[str, int], tuple] = {}
        for backend in BACKENDS:
            for ranks in RANK_POINTS:
                start = time.perf_counter()
                report = MerAligner(scaling_config).run(
                    genome.contigs, reads, n_ranks=ranks, machine=MACHINE,
                    backend=backend)
                total = time.perf_counter() - start
                results[(backend, ranks)] = (align_wall_seconds(report), total)
                signatures[(backend, ranks)] = (
                    report.counters.reads_aligned,
                    report.counters.alignments_reported,
                    tuple((a.query_name, a.target_id, a.score, a.target_start)
                          for a in report.alignments[:50]))
        return results, signatures

    results, signatures = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Correctness on every host: all backends agree at every rank count.
    for ranks in RANK_POINTS:
        reference = signatures[("cooperative", ranks)]
        for backend in BACKENDS:
            assert signatures[(backend, ranks)] == reference, \
                f"{backend} diverged at {ranks} ranks"

    speedups = {ranks: results[("cooperative", ranks)][0]
                / results[("process", ranks)][0]
                for ranks in RANK_POINTS}
    rows = []
    for ranks in RANK_POINTS:
        coop_align, coop_total = results[("cooperative", ranks)]
        proc_align, proc_total = results[("process", ranks)]
        rows.append([ranks, coop_align, proc_align, speedups[ranks],
                     coop_total, proc_total])

    lines = [
        "Backend scaling: measured wall-clock of the aligning phase",
        f"host: {cores} usable core(s); dataset: "
        f"{len(genome.contigs)} contigs, {len(reads)} reads; "
        "bulk-batched engine (window = "
        f"{scaling_config.lookup_batch_size})", "",
    ]
    lines += format_table(
        ["ranks", "cooperative align (s)", "process align (s)",
         "process speedup", "coop total (s)", "process total (s)"], rows)
    lines += [
        "",
        f"process-backend speedup over cooperative at 4 ranks "
        f"(alignment phase): {speedups[4]:.2f}x",
        "target: >= 2x on a >= 4-core host (the four rank processes run "
        "Smith-Waterman on four cores; the cooperative driver is serial).",
    ]
    if cores < 4:
        lines += [
            f"NOTE: this host exposes only {cores} core(s), so the rank "
            "processes time-share one CPU and no wall-clock speedup is "
            "physically possible here; the measurement records the channel "
            "overhead instead.  Re-run on >= 4 cores for the scaling result.",
        ]
    # The table rows and the speedup summary are measured wall-clock: mask
    # their float tokens when deciding whether the results file changed, so
    # timing jitter alone never rewrites it (benchmarks/README.md).
    write_report("backend_scaling", lines,
                 volatile=(r"^\d+\s", r"speedup over cooperative"))

    # Shape assertions.  Cross-backend agreement is asserted above
    # unconditionally.  The wall-clock target is asserted only when
    # explicitly armed (the dedicated CI job sets REPRO_ASSERT_BACKEND_SCALING
    # on a known >= 4-core runner): real wall-clock on a shared tier-1 runner
    # is too noisy to gate every unrelated change on.
    if os.environ.get("REPRO_ASSERT_BACKEND_SCALING") and cores >= 4:
        assert speedups[4] >= 2.0, (
            f"expected >= 2x at 4 ranks on a {cores}-core host, "
            f"measured {speedups[4]:.2f}x")
        # More ranks must help the process backend itself.
        assert results[("process", 4)][0] < results[("process", 1)][0]
