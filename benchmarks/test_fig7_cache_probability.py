"""Figure 7: probability of a seed being reused on a node vs core count.

Paper result: with d=100, L=100, k=51 (f=50) and ppn=24 the reuse probability
is essentially 1 at small scale and decays toward ~0.08 at 14,400 cores --
the analysis that explains why the seed-index cache helps mostly at small
concurrency (Fig 9).

Reproduction: the closed form 1-(1-1/m)^(f-1) evaluated at the paper's exact
parameters, cross-validated by Monte-Carlo simulation.
"""

from __future__ import annotations

import pytest

from repro.model.cache_reuse import (
    expected_seed_frequency,
    reuse_probability_curve,
    simulate_seed_reuse,
)

from conftest import format_table, write_report

PAPER_CORES = [480, 960, 1920, 2400, 4800, 7200, 9600, 12000, 14400]


@pytest.mark.benchmark(group="fig7")
def test_fig7_seed_reuse_probability(benchmark):
    def experiment():
        frequency = expected_seed_frequency(depth=100, read_length=100, seed_length=51)
        curve = reuse_probability_curve(PAPER_CORES, depth=100, read_length=100,
                                        seed_length=51, cores_per_node=24)
        simulated = {cores: simulate_seed_reuse(int(frequency), max(1, cores // 24),
                                                n_trials=4000, seed=cores)
                     for cores in PAPER_CORES}
        return frequency, curve, simulated

    frequency, curve, simulated = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [[cores, probability, simulated[cores]] for cores, probability in curve]
    lines = ["Figure 7: probability of a seed being reused on the same node",
             f"d=100 L=100 k=51 -> f={frequency:.0f}, ppn=24 (paper parameters)", ""]
    lines += format_table(["cores", "P(reuse) analytic", "P(reuse) Monte-Carlo"], rows)
    write_report("fig7_cache_probability", lines)

    analytic = dict(curve)
    assert frequency == pytest.approx(50.0)
    # Shape: monotone decreasing, ~1 at small scale, small at 14K cores.
    values = [analytic[c] for c in PAPER_CORES]
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert analytic[480] > 0.9
    assert analytic[14400] < 0.15
    # Monte-Carlo agrees with the closed form.
    for cores in PAPER_CORES:
        assert simulated[cores] == pytest.approx(analytic[cores], abs=0.05)
