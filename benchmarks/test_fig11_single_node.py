"""Figure 11: single-node shared-memory comparison on the E. coli data set.

Paper result: on one Edison node (24 cores, seed length 19), merAligner keeps
scaling to all 24 cores while BWA-mem and Bowtie2 stop improving at 18 cores;
at 24 cores merAligner is 6.33x faster than BWA-mem and 7.2x faster than
Bowtie2.  merAligner aligns 97.4% of the reads vs 96.3% / 95.8%.

Reproduction: merAligner runs on a single simulated node (LAPTOP_LIKE machine,
thread counts 1..24); the baselines are run once and rescaled per instance
count, with their serial index construction charged in full -- which is what
flattens their curves.
"""

from __future__ import annotations

import pytest

from repro.baselines.bowtie_like import BowtieLikeAligner
from repro.baselines.bwa_like import BwaLikeAligner
from repro.baselines.pmap import PMapFramework
from repro.core.config import AlignerConfig
from repro.core.pipeline import MerAligner
from repro.pgas.cost_model import LAPTOP_LIKE

from conftest import format_table, write_report

THREAD_SWEEP = [1, 6, 12, 18, 24]


@pytest.mark.benchmark(group="fig11")
def test_fig11_single_node_comparison(benchmark, ecoli_like_dataset):
    genome, reads = ecoli_like_dataset
    config = AlignerConfig.for_small_genome(seed_length=19).with_(
        fragment_length=2000, aggregation_buffer_size=64, seed_stride=2,
        seed_cache_bytes_per_node=2 * 1024 * 1024,
        target_cache_bytes_per_node=1 * 1024 * 1024)

    def experiment():
        mer_times = {}
        mer_aligned = 0.0
        for threads in THREAD_SWEEP:
            report = MerAligner(config).run(genome.contigs, reads, n_ranks=threads,
                                            machine=LAPTOP_LIKE)
            mer_times[threads] = report.total_time
            mer_aligned = report.counters.aligned_fraction
        bwa = PMapFramework(lambda: BwaLikeAligner(seed_length=19),
                            n_instances=24).run(genome.contigs, reads)
        bowtie = PMapFramework(lambda: BowtieLikeAligner(very_fast=True),
                               n_instances=24).run(genome.contigs, reads)
        return mer_times, mer_aligned, bwa, bowtie

    mer_times, mer_aligned, bwa, bowtie = benchmark.pedantic(experiment, rounds=1,
                                                             iterations=1)

    rows = []
    for threads in THREAD_SWEEP:
        rows.append([threads, mer_times[threads],
                     bwa.total_time_at(threads), bowtie.total_time_at(threads)])
    lines = ["Figure 11: single-node comparison on the E. coli-like data set "
             "(seed length 19, modelled seconds)", ""]
    lines += format_table(["cores", "merAligner", "BWA-mem-like", "Bowtie2-like"], rows)
    speedup_bwa = bwa.total_time_at(24) / mer_times[24]
    speedup_bowtie = bowtie.total_time_at(24) / mer_times[24]
    lines += ["", f"at 24 cores merAligner is {speedup_bwa:.1f}x faster than "
                  f"BWA-mem-like (paper: 6.33x) and {speedup_bowtie:.1f}x faster than "
              f"Bowtie2-like (paper: 7.2x)",
              f"aligned fractions: merAligner {mer_aligned:.3f} (paper 0.974), "
              f"BWA-mem-like {bwa.aligned_fraction:.3f} (paper 0.963), "
              f"Bowtie2-like {bowtie.aligned_fraction:.3f} (paper 0.958)"]
    write_report("fig11_single_node", lines)

    # Shape assertions.
    times = [mer_times[t] for t in THREAD_SWEEP]
    assert all(a > b * 0.95 for a, b in zip(times, times[1:])), \
        "merAligner keeps improving up to 24 cores"
    # The baselines flatten: going from 18 to 24 instances barely helps them
    # because the serial index construction dominates.
    for baseline in (bwa, bowtie):
        gain = baseline.total_time_at(18) / baseline.total_time_at(24)
        assert gain < 1.3
    # merAligner wins at 24 cores and aligns at least as many reads.
    assert speedup_bwa > 1.5
    assert speedup_bowtie > 1.5
    assert mer_aligned >= bwa.aligned_fraction - 0.05
    assert mer_aligned >= bowtie.aligned_fraction - 0.05
