"""Figure 10: impact of the exact-match optimization on the aligning phase.

Paper result: the Lemma 1 fast path (single seed lookup + memcmp, no
Smith-Waterman) speeds the aligning phase up 2.8x / 3.4x / 3.1x at 480 /
1,920 / 7,680 cores, cutting both computation (2.48x) and communication
(2.82x); about 59% of aligned reads take the fast path; the optimized aligning
phase scales near-linearly (15.9x for a 16x core increase).

Reproduction: the aligning phase is run with the optimization on and off at
three scaled core counts, reporting the computation / communication split and
the fraction of reads resolved exactly.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import MerAligner

from conftest import BENCH_MACHINE, format_table, write_report

CORE_POINTS = [4, 16, 64]


def align_phase_profile(dataset, config, cores):
    genome, reads = dataset
    report = MerAligner(config).run(genome.contigs, reads, n_ranks=cores,
                                    machine=BENCH_MACHINE)
    trace = report.phase("align_reads")
    return {
        "elapsed": trace.elapsed,
        "compute": trace.total_compute,
        "comm": trace.total_comm,
        "exact_fraction": report.counters.exact_fraction,
        "sw_calls": report.counters.sw_calls,
        "lookups": report.counters.seed_lookups,
    }


@pytest.mark.benchmark(group="fig10")
def test_fig10_exact_match_optimization(benchmark, human_like_dataset, bench_config):
    def experiment():
        results = {}
        for cores in CORE_POINTS:
            with_opt = align_phase_profile(human_like_dataset, bench_config, cores)
            without_opt = align_phase_profile(
                human_like_dataset,
                bench_config.with_(use_exact_match_optimization=False), cores)
            results[cores] = (without_opt, with_opt)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for cores, (without_opt, with_opt) in results.items():
        rows.append([cores,
                     without_opt["comm"], without_opt["compute"],
                     with_opt["comm"], with_opt["compute"],
                     without_opt["elapsed"] / max(with_opt["elapsed"], 1e-12)])
    lines = ["Figure 10: aligning phase with and without the exact-match optimization",
             "(summed per-rank modelled seconds; paper reports 2.8x / 3.4x / 3.1x)", ""]
    lines += format_table(["cores", "comm w/o", "compute w/o", "comm w/",
                           "compute w/", "improvement"], rows)
    exact_fraction = results[CORE_POINTS[0]][1]["exact_fraction"]
    lines += ["", f"fraction of aligned reads taking the exact-match fast path: "
                  f"{exact_fraction:.2f} (paper: ~0.59)"]
    optimized = {cores: with_opt["elapsed"] for cores, (_, with_opt) in results.items()}
    scaling = optimized[CORE_POINTS[0]] / optimized[CORE_POINTS[-1]]
    lines += [f"optimized aligning-phase speedup {CORE_POINTS[0]}->{CORE_POINTS[-1]} "
              f"ranks: {scaling:.1f}x for a {CORE_POINTS[-1] // CORE_POINTS[0]}x core "
              "increase (paper: 15.9x for 16x)"]
    write_report("fig10_exact_match", lines)

    for cores, (without_opt, with_opt) in results.items():
        # Both communication and computation drop, hence the phase is faster.
        assert with_opt["comm"] < without_opt["comm"]
        assert with_opt["compute"] < without_opt["compute"]
        assert with_opt["elapsed"] < without_opt["elapsed"]
        assert with_opt["sw_calls"] < without_opt["sw_calls"]
        assert with_opt["lookups"] < without_opt["lookups"]
    # A substantial fraction of reads takes the fast path.
    assert exact_fraction > 0.3
    # The optimized aligning phase strong-scales (granularity of the scaled
    # data set caps efficiency below the paper's 15.9x-for-16x).
    assert scaling > 4.0
