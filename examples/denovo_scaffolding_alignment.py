#!/usr/bin/env python3
"""De novo assembly scaffolding scenario (the paper's motivating workload).

In the Meraculous pipeline, reads are aligned against the contigs produced by
the assembler so that the scaffolder can orient contigs and close gaps.  The
reference is *not* known ahead of time, so the seed index must be built from
scratch for every assembly -- which is why parallel index construction is the
heart of merAligner.

This example:

1. generates a "human-like" genome, derives assembly contigs, samples a
   paired-end read library (insert size 240 bp, as in the paper's human data);
2. writes the inputs to files (FASTA contigs + SeqDB reads) and runs the
   aligner from those files, exercising the parallel I/O path;
3. writes the alignments as a SAM file and prints the per-phase breakdown and
   a scaffolding-oriented summary (how many contig-pairs are linked by read
   pairs -- the information the scaffolder consumes).

Run with::

    python examples/denovo_scaffolding_alignment.py
"""

from __future__ import annotations

import tempfile
from collections import Counter
from pathlib import Path

from repro import AlignerConfig, MerAligner, ReadSetSpec, make_dataset
from repro.dna import GenomeSpec
from repro.io.fasta import write_fasta
from repro.io.sam import write_sam
from repro.io.seqdb import records_to_seqdb


def main() -> None:
    # 1. Synthetic assembly: genome, contigs, paired-end reads.
    genome_spec = GenomeSpec(name="human-like", genome_length=80_000,
                             n_contigs=120, repeat_fraction=0.05,
                             min_contig_length=250)
    read_spec = ReadSetSpec(coverage=4.0, read_length=100, error_rate=0.005,
                            paired=True, insert_size=240)
    genome, reads = make_dataset(genome_spec, read_spec, seed=7)
    print(f"assembly: {len(genome.contigs)} contigs, "
          f"{sum(len(c) for c in genome.contigs)} bp total")
    print(f"read library: {len(reads)} paired-end reads")

    workdir = Path(tempfile.mkdtemp(prefix="meraligner_example_"))
    contig_path = workdir / "contigs.fa"
    reads_path = workdir / "reads.seqdb"
    contig_names = [f"contig{i:04d}" for i in range(len(genome.contigs))]
    write_fasta(contig_path, list(zip(contig_names, genome.contigs)))
    seqdb_stats = records_to_seqdb(reads_path, reads)
    print(f"inputs written to {workdir} "
          f"(SeqDB: {seqdb_stats.file_bytes} bytes, "
          f"{seqdb_stats.bytes_per_base:.2f} bytes/base)")

    # 2. Run the aligner from files on a 16-rank simulated machine.
    config = AlignerConfig(seed_length=31, fragment_length=2000,
                           aggregation_buffer_size=100, seed_stride=2)
    report = MerAligner(config).run(contig_path, reads_path, n_ranks=16)

    print("\n--- phase breakdown (modelled seconds) ---")
    for phase in report.phases:
        print(f"  {phase.name:28s} {phase.elapsed:.6f}")
    print(f"  index construction total     {report.index_construction_time:.6f}")
    print(f"  aligning phase               {report.alignment_time:.6f}")
    print(f"  aligned fraction             {report.counters.aligned_fraction:.3f}")

    # 3. SAM output + scaffolding links.
    sam_path = workdir / "alignments.sam"
    write_sam(sam_path, report.alignments, contig_names,
              [len(c) for c in genome.contigs])
    print(f"\nSAM output: {sam_path} ({len(report.alignments)} records)")

    # A read pair whose two mates align to different contigs is a scaffolding
    # link between those contigs.
    placement: dict[str, int] = {}
    for alignment in report.alignments:
        placement.setdefault(alignment.query_name, alignment.target_id)
    links: Counter = Counter()
    for read in reads:
        if not read.mate_of:
            continue
        a, b = placement.get(read.name), placement.get(read.mate_of)
        if a is not None and b is not None and a != b:
            links[tuple(sorted((a, b)))] += 1
    print(f"scaffolding links (contig pairs joined by >= 2 read pairs): "
          f"{sum(1 for c in links.values() if c >= 2)}")
    top = links.most_common(5)
    for (a, b), count in top:
        print(f"  {contig_names[a]} <-> {contig_names[b]}: {count} read pairs")


if __name__ == "__main__":
    main()
