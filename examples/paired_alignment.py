"""Paired-end alignment on the plan API, end to end.

Generates a paired-end library (insert-size-distributed FR templates),
aligns it with the ``paired`` plan workload -- per-read pipeline on both
mates, pair joining, insert-window mate rescue -- and prints the pairing
outcomes plus a few SAM records.  Also shows the same workload served from a
resident session, byte-identical to the offline run.
"""

from repro import GenomeSpec, ReadSetSpec, make_dataset, api

# An error rate high enough that some mates lose every seed -- those are the
# pairs mate rescue recovers.
genome, reads = make_dataset(
    GenomeSpec(name="paired-demo", genome_length=30_000, n_contigs=24,
               repeat_fraction=0.05, min_contig_length=300),
    ReadSetSpec(coverage=2.0, read_length=80, error_rate=0.02,
                paired=True, insert_size=300, insert_sd=25),
    seed=42,
)
names = [f"contig{i:05d}" for i in range(len(genome.contigs))]
lengths = [len(c) for c in genome.contigs]

config = api.AlignerConfig(seed_length=31, fragment_length=2000,
                           seed_stride=2, insert_size=300, insert_slack=75)

result = api.align_paired(genome.contigs, reads, config=config, n_ranks=8)
pairs, counters = result.output, result.report.counters

print(f"pairs aligned: {counters.pairs_processed} "
      f"({sum(1 for p in pairs if p.proper)} proper, "
      f"{sum(1 for p in pairs if p.n_mapped == 2)} both mates mapped)")
print(f"mate rescue:   {counters.mate_rescues} rescued of "
      f"{counters.mate_rescue_attempts} attempts")

sam = api.paired_sam_text(pairs, names, lengths)
body = [line for line in sam.splitlines() if not line.startswith("@")]
print("\nfirst SAM records (flags carry pair/proper/mate bits):")
for line in body[:4]:
    fields = line.split("\t")
    print(f"  {fields[0]:28s} flag={fields[1]:>4s} {fields[2]}:{fields[3]}"
          f" tlen={fields[8]}")

# The served path: build the index once, serve the same pairs -- the SAM is
# byte-identical to the offline run above.
with api.prepare(genome.contigs, config=config, n_ranks=8,
                 target_names=names) as session:
    served = session.paired_sam_for(session.align_paired(reads))
assert served == sam
print("\nserved paired SAM is byte-identical to the offline run")
