#!/usr/bin/env python3
"""Build a bespoke stage pipeline on the public API.

The built-in workloads (``align``, ``count``, ``screen``) are just plans over
the stage vocabulary in :mod:`repro.api`; this example composes a new one:
a **seed-presence profiler** that runs the distributed index build and the
(bulk-batchable) seed-lookup stage, then feeds the lookups into a custom sink
-- no fragment fetches, no Smith-Waterman -- to report, per read, what
fraction of its seeds exist in the contig index.  Low presence flags reads
from uncovered or heavily mutated genome regions before any alignment cost
is paid.

This is the pattern for opening a new workload:

1. subclass :class:`repro.api.SinkStage`: ``emit`` maps one read's staged
   state to a payload, ``collect`` folds the payloads into the end product;
2. declare the dataflow (our sink consumes ``seed_hits``, the output of the
   built-in ``SeedLookup`` stage) -- plan validation wires it up;
3. build an :class:`repro.api.AlignmentPlan` and execute it with
   ``api.run_plan`` (or serve it batched through a resident session).

Run with::

    python examples/custom_pipeline.py
"""

from __future__ import annotations

from repro import api
from repro.dna import GenomeSpec, ReadSetSpec, make_dataset


class EmitSeedPresence(api.SinkStage):
    """Custom sink: per-read fraction of query seeds present in the index."""

    name = "emit_seed_presence"
    inputs = ("seed_hits",)
    outputs = ("presence",)
    workload = "seed_presence"
    phase_name = "profile_seeds"

    def emit(self, xs, item):
        lookups = item.lookups or []
        present = sum(1 for _strand, _offset, entry in lookups
                      if entry is not None and entry.values)
        return (item.read.name, present, len(lookups))

    def collect(self, groups, config):
        rows = sorted((payload for _index, payload in groups),
                      key=lambda row: row[0])
        return rows


def main() -> None:
    # A small synthetic dataset: contigs assembled from a 30 kbp genome,
    # reads sampled at 3x coverage with 1% error.
    genome_spec = GenomeSpec(name="custom", genome_length=30_000, n_contigs=40,
                             repeat_fraction=0.05, min_contig_length=200)
    genome, reads = make_dataset(genome_spec,
                                 ReadSetSpec(coverage=3.0, read_length=100,
                                             error_rate=0.01), seed=3)
    print(f"dataset: {len(genome.contigs)} contigs, {len(reads)} reads")

    # The bespoke plan: index build + chunked reading + seed lookup + our
    # sink.  Validation checks the dataflow (seed_hits -> our sink) at
    # construction time.
    plan = api.AlignmentPlan(name="seed-presence", stages=(
        api.BuildIndex(),
        api.ReadQueries(),
        api.SeedLookup(),
        EmitSeedPresence(),
    ))
    print(plan.describe())

    # Execute it like any built-in workload -- the bulk-batching engine and
    # every execution backend work unchanged for custom plans.
    config = api.AlignerConfig(seed_length=31, fragment_length=2000,
                               use_bulk_lookups=True, lookup_batch_size=64)
    result = api.run_plan(plan, genome.contigs, reads[:400], config=config,
                          n_ranks=8)

    rows = result.output
    fractions = [present / total for _name, present, total in rows if total]
    print(f"\nprofiled {len(rows)} reads "
          f"(mean seed presence {sum(fractions) / len(fractions):.1%})")
    suspicious = [(name, present, total) for name, present, total in rows
                  if total and present / total < 0.5]
    print(f"{len(suspicious)} reads have <50% of their seeds in the index")
    for name, present, total in suspicious[:5]:
        print(f"  {name}: {present}/{total} seeds present")

    # The report still carries per-stage timings: the lookup stage dominates
    # and the extension stages never ran.
    print("\nper-stage modelled seconds (summed over ranks):")
    for stage in result.report.stage_stats:
        print(f"  {stage.name:20s} {stage.elapsed:.6f} "
              f"({stage.items} items)")


if __name__ == "__main__":
    main()
