#!/usr/bin/env python3
"""Alignment service quickstart: prepare once, query many times.

The offline path (``MerAligner.run``) rebuilds the distributed seed index for
every call; the serving path amortizes it:

1. ``MerAligner.prepare(...)`` runs the index-construction phases exactly
   once and returns a resident :class:`AlignmentSession` (seed index, target
   store, per-node caches and the backend's rank machinery stay alive);
2. an in-process :class:`AlignmentClient` submits many independent requests;
   the micro-batching :class:`RequestScheduler` coalesces concurrent
   submissions into single SPMD invocations through the bulk-lookup engine
   and demultiplexes per-request results;
3. the service-level statistics report shows what the scheduler did:
   requests, batch occupancy, p50/p95 modelled latency.

Every request's SAM is byte-identical to an offline ``MerAligner.run`` on
the same reads.  Run with::

    python examples/service_quickstart.py
"""

from __future__ import annotations

import json
import threading

from repro import AlignerConfig, MerAligner, ReadSetSpec, make_dataset
from repro.dna import GenomeSpec
from repro.service import AlignmentClient


def main() -> None:
    # A small synthetic data set: contigs to index, reads to stream at it.
    genome_spec = GenomeSpec(name="service", genome_length=40_000,
                             n_contigs=60, repeat_fraction=0.05,
                             min_contig_length=200)
    read_spec = ReadSetSpec(coverage=4.0, read_length=100, error_rate=0.005)
    genome, reads = make_dataset(genome_spec, read_spec, seed=42)
    config = AlignerConfig(seed_length=31, fragment_length=800,
                           use_bulk_lookups=True, lookup_batch_size=64)

    # 1. Build the index once; the session keeps it resident.
    session = MerAligner(config).prepare(genome.contigs, n_ranks=8)
    prepared = session.prepared
    print(f"index built once: {prepared.seed_index.n_keys} seeds over "
          f"{prepared.target_store.n_fragments} fragments, modelled build "
          f"time {prepared.index_construction_time:.6f}s "
          f"({prepared.backend} backend)")

    # 2. Query it many times -- here six concurrent clients of 50 reads each.
    requests = [reads[i * 50:(i + 1) * 50] for i in range(6)]
    with AlignmentClient(session) as client:
        results = [None] * len(requests)

        def query(index: int) -> None:
            results[index] = client.align(requests[index])

        threads = [threading.Thread(target=query, args=(i,))
                   for i in range(len(requests))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for index, result in enumerate(results):
            print(f"request {index}: {len(result.alignments)} alignments for "
                  f"{result.counters.reads_processed} reads "
                  f"(batch #{result.batch_id} served "
                  f"{result.batch_requests} requests, modelled latency "
                  f"{result.modeled_latency:.6f}s)")

        # 3. The service-level report: occupancy and latency percentiles.
        print("\nservice stats:")
        print(json.dumps(client.stats().to_json_dict(), indent=2,
                         sort_keys=True))

    session.close()


if __name__ == "__main__":
    main()
