#!/usr/bin/env python3
"""Execution backends: the same alignment on cooperative vs process ranks.

The aligner's SPMD phases can execute on three interchangeable backends:

``cooperative``
    ranks run one after another in this process (deterministic reference);
``threaded``
    one OS thread per rank (real barriers, GIL-bound compute);
``process``
    one OS *process* per rank -- numeric heap segments live in
    ``multiprocessing.shared_memory``, object segments are served over
    per-rank message channels, and the numpy-heavy Smith-Waterman work of
    different ranks runs on different cores.

This example runs the quickstart dataset on the cooperative and process
backends, verifies the alignments are identical, and prints the *measured*
wall-clock of the aligning phase side by side.  On a host with >= 4 cores the
process backend wins; on fewer cores the rank processes time-share and the
comparison mostly shows the channel overhead.

Run with::

    python examples/parallel_backends.py
"""

from __future__ import annotations

import os

from repro import AlignerConfig, MerAligner, ReadSetSpec, make_dataset
from repro.dna import GenomeSpec
from repro.pgas.cost_model import LAPTOP_LIKE

RANKS = 4


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def main() -> None:
    # The quickstart dataset (see examples/quickstart.py).
    genome_spec = GenomeSpec(name="quickstart", genome_length=40_000,
                             n_contigs=60, repeat_fraction=0.05,
                             min_contig_length=200)
    read_spec = ReadSetSpec(coverage=4.0, read_length=100, error_rate=0.005)
    genome, reads = make_dataset(genome_spec, read_spec, seed=42)
    print(f"dataset: {len(genome.contigs)} contigs, {len(reads)} reads; "
          f"host: {usable_cores()} usable core(s)")

    # The bulk-batched engine keeps the process backend's channel traffic to
    # a few aggregated messages per window of reads.
    config = AlignerConfig(seed_length=31, fragment_length=2000,
                           aggregation_buffer_size=100, seed_stride=2,
                           use_bulk_lookups=True, lookup_batch_size=128)

    reports = {}
    for backend in ("cooperative", "process"):
        report = MerAligner(config).run(genome.contigs, reads, n_ranks=RANKS,
                                        machine=LAPTOP_LIKE, backend=backend)
        reports[backend] = report

    # The backends must agree exactly -- the execution strategy is invisible
    # to the algorithm.
    signatures = {
        backend: [(a.query_name, a.target_id, a.score, a.target_start,
                   a.strand) for a in report.alignments]
        for backend, report in reports.items()
    }
    assert signatures["process"] == signatures["cooperative"], \
        "backends must report identical alignments"
    print(f"alignments identical across backends: "
          f"{len(signatures['cooperative'])} alignments, "
          f"{reports['cooperative'].counters.aligned_fraction:.1%} of reads")

    print(f"\n--- measured wall-clock per phase ({RANKS} ranks) ---")
    print(f"  {'phase':28s} {'cooperative':>12s} {'process':>12s}")
    coop_phases = {p.name: p.wall_seconds for p in reports["cooperative"].phases}
    proc_phases = {p.name: p.wall_seconds for p in reports["process"].phases}
    for name in coop_phases:
        print(f"  {name:28s} {coop_phases[name]:>11.3f}s {proc_phases.get(name, 0.0):>11.3f}s")

    align_coop = coop_phases["align_reads"]
    align_proc = proc_phases["align_reads"]
    print(f"\naligning-phase speedup (process over cooperative): "
          f"{align_coop / align_proc:.2f}x")
    if usable_cores() < RANKS:
        print(f"(this host has fewer than {RANKS} cores -- the rank processes "
              "time-share, so expect <= 1x here; run on more cores to see "
              "the parallel speedup)")


if __name__ == "__main__":
    main()
