#!/usr/bin/env python3
"""Strong-scaling study: reproduce the shape of the paper's Figure 1.

Runs the end-to-end aligner on the same data set at increasing simulated core
counts, prints the scaling table (seconds, speedup, parallel efficiency,
ideal curve) and compares against a pMap-driven BWA-mem-like baseline whose
index construction is serial.

Run with::

    python examples/strong_scaling_study.py
"""

from __future__ import annotations

from repro import AlignerConfig, EDISON_LIKE, MerAligner, ReadSetSpec, make_dataset
from repro.baselines import BwaLikeAligner, PMapFramework
from repro.dna import GenomeSpec
from repro.model.scaling import ScalingSeries

CORE_SWEEP = [4, 8, 16, 32, 64]


def main() -> None:
    genome_spec = GenomeSpec(name="scaling-demo", genome_length=50_000,
                             n_contigs=120, repeat_fraction=0.05,
                             min_contig_length=200)
    read_spec = ReadSetSpec(coverage=3.0, read_length=100, error_rate=0.005)
    genome, reads = make_dataset(genome_spec, read_spec, seed=11)
    machine = EDISON_LIKE.with_cores_per_node(8)
    config = AlignerConfig(seed_length=31, fragment_length=2000,
                           aggregation_buffer_size=100, seed_stride=2)

    series = ScalingSeries("merAligner")
    index_times = {}
    for cores in CORE_SWEEP:
        report = MerAligner(config).run(genome.contigs, reads, n_ranks=cores,
                                        machine=machine)
        series.add(cores, report.total_time)
        index_times[cores] = report.index_construction_time

    print("merAligner strong scaling (modelled seconds)")
    print(f"{'cores':>6} {'seconds':>12} {'ideal':>12} {'speedup':>9} "
          f"{'efficiency':>11} {'index build':>12}")
    for row in series.rows():
        cores = int(row["cores"])
        print(f"{cores:>6} {row['seconds']:>12.5f} {row['ideal_seconds']:>12.5f} "
              f"{row['speedup']:>9.2f} {row['efficiency']:>11.2f} "
              f"{index_times[cores]:>12.5f}")

    # Baseline: serial index construction under a pMap-style driver.
    pmap = PMapFramework(lambda: BwaLikeAligner(seed_length=31),
                         n_instances=CORE_SWEEP[-1])
    baseline = pmap.run(genome.contigs, reads)
    print("\npMap + BWA-mem-like baseline at the same concurrency:")
    print(f"  serial index construction : {baseline.index_construction_time:.5f} s")
    print(f"  parallel mapping          : {baseline.mapping_time:.5f} s")
    print(f"  total                     : {baseline.total_time:.5f} s "
          f"({baseline.total_time / series.times[-1]:.1f}x slower than merAligner)")


if __name__ == "__main__":
    main()
