#!/usr/bin/env python3
"""Quickstart: align a synthetic read set against assembly contigs.

This is the smallest complete use of the public API:

1. generate a synthetic genome, its Meraculous-style contigs, and a read set
   sampled at a chosen coverage with sequencing errors;
2. run the fully parallel aligner (merAligner) on a simulated 8-rank PGAS
   machine;
3. inspect the report: per-phase modelled timings, aligned fraction, how many
   reads took the exact-match fast path, and the alignments themselves.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import AlignerConfig, MerAligner, ReadSetSpec, make_dataset
from repro.dna import GenomeSpec


def main() -> None:
    # 1. A small synthetic data set (a 40 kbp genome assembled into 60 contigs,
    #    sequenced at 4x coverage with 100 bp reads and 0.5% error rate).
    genome_spec = GenomeSpec(name="quickstart", genome_length=40_000,
                             n_contigs=60, repeat_fraction=0.05,
                             min_contig_length=200)
    read_spec = ReadSetSpec(coverage=4.0, read_length=100, error_rate=0.005)
    genome, reads = make_dataset(genome_spec, read_spec, seed=42)
    print(f"dataset: {len(genome.contigs)} contigs, {len(reads)} reads")

    # 2. Configure and run the aligner.  k = 31 is a scaled-down stand-in for
    #    the paper's k = 51 (the genome here is much smaller than human).
    config = AlignerConfig(seed_length=31, fragment_length=2000,
                           aggregation_buffer_size=100, seed_stride=2)
    aligner = MerAligner(config)
    report = aligner.run(genome.contigs, reads, n_ranks=8)

    # 3. Inspect the results.
    print("\n--- per-phase modelled wall time (seconds) ---")
    for phase in report.phases:
        print(f"  {phase.name:28s} {phase.elapsed:.6f}")
    print(f"  {'total':28s} {report.total_time:.6f}")

    counters = report.counters
    print("\n--- alignment statistics ---")
    print(f"  reads processed        : {counters.reads_processed}")
    print(f"  aligned fraction       : {counters.aligned_fraction:.3f}")
    print(f"  exact-match fast path  : {counters.exact_fraction:.3f} of aligned reads")
    print(f"  Smith-Waterman calls   : {counters.sw_calls}")
    print(f"  seed index size        : {report.seed_index_keys} distinct seeds")
    print(f"  single-copy fragments  : {report.single_copy_fragment_fraction:.3f}")

    print("\n--- first five alignments ---")
    for alignment in report.alignments[:5]:
        print(f"  {alignment.query_name} -> contig {alignment.target_id} "
              f"[{alignment.target_start}:{alignment.target_end}] "
              f"strand {alignment.strand} score {alignment.score} "
              f"{'(exact)' if alignment.is_exact else ''}")


if __name__ == "__main__":
    main()
