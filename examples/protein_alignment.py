#!/usr/bin/env python3
"""Protein alignment with the alphabet-generic extension.

The paper's conclusion notes that the merAligner framework extends beyond DNA:
"one can also use the same methods to align protein sequences (strings of 20
characters) against protein datasets".  This example exercises that extension:
a BLOSUM62-scored seed-and-extend aligner over the amino-acid alphabet, using
the same vectorised affine-gap kernel as the DNA pipeline.

Run with::

    python examples/protein_alignment.py
"""

from __future__ import annotations

from repro.alignment.generic import local_align
from repro.alignment.protein import ProteinSeedIndexAligner, blosum62

# A tiny synthetic protein "database": three unrelated sequences plus one that
# shares a domain with the first.
TARGETS = {
    "kinase_A":   "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQVKVKALPDAQ",
    "capsid_B":   "MSDNGPQNQRNAPRITFGGPSDSTGSNQNGERSGARSKQRRPQGLPNNTASWFTALTQHGKEDLKF",
    "chimera_AB": "MAHHHHHHVGTGSNQNGERSGARSKQRRPQGLPNNTASMKTAYIAKQRQISFVKSHFSRQLEERLG",
    "membrane_C": "MLLAVLYCLLWSFQTSAGHFPRACVSSKNLMEKECCPPWSGDRSPCGQLSGRGSCQNILLSNAPLGPQ",
}

QUERIES = {
    # an exact fragment of kinase_A
    "frag_kinase": "AKQRQISFVKSHFSRQLEERLGLIEV",
    # the same fragment with two conservative substitutions (I->L, V->I)
    "homolog":     "AKQRQLSFVKSHFSRQLEERLGLIEI",
    # unrelated sequence
    "random":      "WWWPPPGGGWWWPPPGGGWWW",
}


def main() -> None:
    matrix = blosum62()
    aligner = ProteinSeedIndexAligner(seed_length=4, matrix=matrix, min_score=25)
    names = list(TARGETS)
    n_seeds = aligner.build_index([TARGETS[name] for name in names])
    print(f"indexed {len(TARGETS)} protein targets, {n_seeds} seeds of length "
          f"{aligner.seed_length}\n")

    for query_name, query in QUERIES.items():
        hits = aligner.align(query_name, query)
        print(f"query {query_name!r} ({len(query)} aa): {len(hits)} hit(s)")
        for hit in hits:
            print(f"    {names[hit.target_id]:<12} score {hit.score:>4} "
                  f"(ends at query {hit.query_end}, target {hit.target_end})")
        if not hits:
            print("    no hits above the score threshold")
        print()

    # Direct use of the generic kernel: BLOSUM62 rewards conservative
    # substitutions, so the homolog scores close to the exact fragment.
    exact = local_align(QUERIES["frag_kinase"], TARGETS["kinase_A"], matrix)
    homolog = local_align(QUERIES["homolog"], TARGETS["kinase_A"], matrix)
    print("generic kernel scores against kinase_A:")
    print(f"  exact fragment  : {exact.score}")
    print(f"  2-substitution homolog: {homolog.score} "
          f"({homolog.score / exact.score:.0%} of the exact score)")


if __name__ == "__main__":
    main()
