#!/usr/bin/env python3
"""Anatomy of merAligner's optimizations (the paper's section VI-C in one run).

Turns each optimization off in isolation and reports its effect:

* aggregating stores     -> messages and atomics during index construction
* software caches        -> off-node traffic during the aligning phase
* exact-match fast path  -> Smith-Waterman calls and seed lookups
* read permutation       -> per-rank computation imbalance
* bulk batching          -> one-sided messages during the aligning phase

Run with::

    python examples/optimization_anatomy.py
"""

from __future__ import annotations

from repro import AlignerConfig, EDISON_LIKE, MerAligner, ReadSetSpec, make_dataset
from repro.dna import GenomeSpec


def run(config, genome, reads, n_ranks=16):
    machine = EDISON_LIKE.with_cores_per_node(8)
    return MerAligner(config).run(genome.contigs, reads, n_ranks=n_ranks,
                                  machine=machine)


def main() -> None:
    genome_spec = GenomeSpec(name="anatomy", genome_length=50_000, n_contigs=100,
                             repeat_fraction=0.05, min_contig_length=200)
    read_spec = ReadSetSpec(coverage=3.0, read_length=100, error_rate=0.005)
    genome, reads = make_dataset(genome_spec, read_spec, seed=13)
    base_config = AlignerConfig(seed_length=31, fragment_length=2000,
                                aggregation_buffer_size=100, seed_stride=2)

    full = run(base_config, genome, reads)
    print(f"data set: {len(genome.contigs)} contigs, {len(reads)} reads, "
          f"{full.seed_index_keys} distinct seeds")
    print(f"fully optimized end-to-end time: {full.total_time:.5f} modelled seconds\n")

    # 1. Aggregating stores.
    no_agg = run(base_config.with_(use_aggregating_stores=False), genome, reads)
    print("1. aggregating stores (index construction)")
    print(f"   construction time : {no_agg.index_construction_time:.5f} -> "
          f"{full.index_construction_time:.5f} s "
          f"({no_agg.index_construction_time / full.index_construction_time:.1f}x)")
    print(f"   remote messages   : {no_agg.total_stats.messages} -> "
          f"{full.total_stats.messages}")
    print(f"   global atomics    : {no_agg.total_stats.atomics} -> "
          f"{full.total_stats.atomics}\n")

    # 2. Software caches.
    no_cache = run(base_config.with_(use_seed_index_cache=False,
                                     use_target_cache=False), genome, reads)
    print("2. software caches (aligning phase communication)")
    print(f"   seed lookup comm  : {no_cache.seed_lookup_comm_time:.5f} -> "
          f"{full.seed_lookup_comm_time:.5f} s")
    print(f"   target fetch comm : {no_cache.target_fetch_comm_time:.5f} -> "
          f"{full.target_fetch_comm_time:.5f} s")
    for name, stats in full.cache_stats.items():
        print(f"   {name} cache hit rate: {stats.hit_rate:.2f}")
    print()

    # 3. Exact-match fast path.
    no_exact = run(base_config.with_(use_exact_match_optimization=False),
                   genome, reads)
    print("3. exact-match optimization (Lemma 1 fast path)")
    print(f"   Smith-Waterman calls : {no_exact.counters.sw_calls} -> "
          f"{full.counters.sw_calls}")
    print(f"   seed lookups         : {no_exact.counters.seed_lookups} -> "
          f"{full.counters.seed_lookups}")
    print(f"   aligning phase time  : {no_exact.alignment_time:.5f} -> "
          f"{full.alignment_time:.5f} s")
    print(f"   reads taking the fast path: "
          f"{full.counters.exact_fraction:.2f} of aligned reads\n")

    # 4. Load balancing.
    no_permute = run(base_config.with_(permute_reads=False), genome, reads)
    balanced = full.load_balance_summary()
    unbalanced = no_permute.load_balance_summary()
    print("4. load balancing by random permutation (aligning phase, per-rank)")
    print(f"   max computation time : {unbalanced['compute_max']:.6f} -> "
          f"{balanced['compute_max']:.6f} s")
    print(f"   compute max/avg ratio: "
          f"{unbalanced['compute_max'] / unbalanced['compute_avg']:.2f} -> "
          f"{balanced['compute_max'] / balanced['compute_avg']:.2f}\n")

    # 5. Batched bulk-communication engine (aggregation on the query side).
    bulk = run(base_config.with_(use_bulk_lookups=True), genome, reads)
    print("5. bulk batching (windowed lookup/fetch aggregation, same alignments)")
    print(f"   one-sided gets    : {full.total_stats.gets} -> "
          f"{bulk.total_stats.gets}")
    print(f"   off-node accesses : {full.total_stats.off_node_ops} -> "
          f"{bulk.total_stats.off_node_ops}")
    print(f"   aligning phase    : {full.alignment_time:.5f} -> "
          f"{bulk.alignment_time:.5f} s")
    print(f"   alignments identical: {bulk.alignments == full.alignments}")


if __name__ == "__main__":
    main()
