"""Alignment kernels: Smith-Waterman (scalar and vectorised), seed extension,
exact matching, and alignment result records.

The paper delegates local alignment to the SSW library (a SIMD striped
Smith-Waterman).  Here :mod:`repro.alignment.smith_waterman` is the scalar
reference implementation with full traceback, and
:mod:`repro.alignment.striped` is a numpy-vectorised affine-gap implementation
(the Python analogue of SIMD lanes) used on the hot path.
:mod:`repro.alignment.extend` implements seed extension around a seed hit, and
:mod:`repro.alignment.exact` the memcmp fast path of the exact-match
optimization (section IV-A).
"""

from repro.alignment.scoring import ScoringScheme, DEFAULT_SCORING
from repro.alignment.result import Alignment, CigarOp, cigar_to_string, alignment_identity
from repro.alignment.smith_waterman import smith_waterman, sw_score_matrix
from repro.alignment.striped import (striped_smith_waterman,
                                     striped_smith_waterman_batch, StripedResult)
from repro.alignment.banded import banded_smith_waterman
from repro.alignment.extend import extend_seed_hit, extend_batch, SeedHit
from repro.alignment.exact import exact_match_at, try_exact_match

__all__ = [
    "ScoringScheme",
    "DEFAULT_SCORING",
    "Alignment",
    "CigarOp",
    "cigar_to_string",
    "alignment_identity",
    "smith_waterman",
    "sw_score_matrix",
    "striped_smith_waterman",
    "striped_smith_waterman_batch",
    "StripedResult",
    "banded_smith_waterman",
    "extend_seed_hit",
    "extend_batch",
    "SeedHit",
    "exact_match_at",
    "try_exact_match",
]
