"""Protein alignment support (the paper's stated extension).

The conclusion of the paper claims the framework extends beyond DNA: "one can
also use the same methods to align protein sequences (strings of 20
characters) against protein datasets".  This module makes that claim
executable:

* BLOSUM62 as a :class:`~repro.alignment.generic.SubstitutionMatrix`;
* :class:`ProteinSeedIndexAligner` -- the same seed-and-extend structure as
  merAligner (seed index over target k-mers, lookup, vectorised affine-gap
  extension), over the amino-acid alphabet.  It runs in-process (a dictionary
  seed index) because the point here is alphabet generality, not distribution;
  dropping the distributed seed index of :mod:`repro.core` underneath it would
  be mechanical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.alignment.generic import (
    GenericAlignmentResult,
    PROTEIN_ALPHABET,
    SubstitutionMatrix,
    local_align,
)

# BLOSUM62 in the ARNDCQEGHILKMFPSTWYV order (20x20, symmetric).
_BLOSUM62_ROWS = """
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4
"""


def blosum62(gap_open: int = 11, gap_extend: int = 1) -> SubstitutionMatrix:
    """The BLOSUM62 substitution matrix with the usual affine gap penalties."""
    rows = [list(map(int, line.split()))
            for line in _BLOSUM62_ROWS.strip().splitlines()]
    scores = np.array(rows, dtype=np.int64)
    if scores.shape != (20, 20) or not np.array_equal(scores, scores.T):
        raise AssertionError("BLOSUM62 table must be a symmetric 20x20 matrix")
    return SubstitutionMatrix(alphabet=PROTEIN_ALPHABET, scores=scores,
                              gap_open=gap_open, gap_extend=gap_extend)


@dataclass
class ProteinHit:
    """One protein query-to-target local alignment."""

    query_name: str
    target_id: int
    score: int
    query_end: int
    target_end: int


@dataclass
class ProteinSeedIndexAligner:
    """Seed-and-extend alignment of protein queries against protein targets.

    The structure mirrors merAligner exactly: target k-mers (seeds) are
    indexed, query seeds are looked up, and each candidate target is extended
    with the vectorised affine-gap kernel -- only the alphabet and the scoring
    matrix differ.

    Attributes:
        seed_length: protein seed length (proteins use short seeds, 3-6).
        matrix: substitution matrix (BLOSUM62 by default).
        min_score: alignments scoring below this are not reported.
        max_candidates_per_seed: cap on candidate targets per seed (the same
            sensitivity/speed knob as section IV-C).
    """

    seed_length: int = 4
    matrix: SubstitutionMatrix = field(default_factory=blosum62)
    min_score: int = 20
    max_candidates_per_seed: int = 32
    _targets: list[str] = field(default_factory=list)
    _index: dict[str, list[tuple[int, int]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.seed_length <= 0:
            raise ValueError("seed_length must be positive")
        if self.max_candidates_per_seed <= 0:
            raise ValueError("max_candidates_per_seed must be positive")

    # -- index construction -----------------------------------------------------

    def build_index(self, targets: list[str]) -> int:
        """Index every seed of every target; returns the number of seeds stored."""
        alphabet = self.matrix.alphabet
        self._targets = list(targets)
        self._index = {}
        stored = 0
        for target_id, target in enumerate(targets):
            if not alphabet.is_valid(target):
                raise ValueError(f"target {target_id} contains non-protein symbols")
            for offset in range(len(target) - self.seed_length + 1):
                seed = target[offset:offset + self.seed_length]
                self._index.setdefault(seed, []).append((target_id, offset))
                stored += 1
        return stored

    @property
    def n_seeds(self) -> int:
        return sum(len(v) for v in self._index.values())

    # -- alignment -----------------------------------------------------------------

    def align(self, query_name: str, query: str) -> list[ProteinHit]:
        """Align one protein query; returns hits sorted by decreasing score."""
        if not self._targets:
            raise RuntimeError("build_index must be called before align")
        if not self.matrix.alphabet.is_valid(query):
            raise ValueError("query contains non-protein symbols")
        candidates: set[int] = set()
        for offset in range(max(0, len(query) - self.seed_length + 1)):
            seed = query[offset:offset + self.seed_length]
            placements = self._index.get(seed, [])[: self.max_candidates_per_seed]
            candidates.update(target_id for target_id, _ in placements)
        hits: list[ProteinHit] = []
        for target_id in sorted(candidates):
            result: GenericAlignmentResult = local_align(
                query, self._targets[target_id], self.matrix)
            if result.score >= self.min_score:
                hits.append(ProteinHit(query_name=query_name, target_id=target_id,
                                       score=result.score,
                                       query_end=result.query_end,
                                       target_end=result.target_end))
        hits.sort(key=lambda hit: hit.score, reverse=True)
        return hits
