"""Vectorised affine-gap Smith-Waterman (the SSW stand-in).

The original merAligner links the SSW library, a SIMD "striped" Smith-Waterman
that is orders of magnitude faster than plain C.  The Python analogue of SIMD
lanes is numpy: this kernel sweeps the target one base at a time and updates a
whole query row of the dynamic program with vector operations, including the
horizontal (in-row) gap dependency, which is resolved exactly with a prefix
``maximum.accumulate`` scan rather than Farrar's lazy-F loop.

The scan trick is exact for affine gaps when ``gap_open >= gap_extend``: a
horizontal gap opened from a cell whose own value came through a horizontal
gap is always dominated by extending the earlier gap, so E can be computed
from the gap-free row values only.  Scores therefore match the scalar
reference implementation cell for cell (tests assert this).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alignment.scoring import DEFAULT_SCORING, ScoringScheme
from repro.dna.sequence import sequence_to_codes


@dataclass(frozen=True)
class StripedResult:
    """Score and end coordinates of the best local alignment.

    ``query_end`` / ``target_end`` are exclusive (half-open) coordinates of
    the best-scoring cell; start coordinates require a traceback or a reverse
    pass (see :func:`striped_smith_waterman`'s ``locate_start`` flag).
    """

    score: int
    query_end: int
    target_end: int
    query_start: int = -1
    target_start: int = -1
    cells: int = 0

    @property
    def has_start(self) -> bool:
        return self.query_start >= 0 and self.target_start >= 0


def _sweep(query_codes: np.ndarray, target_codes: np.ndarray,
           scoring: ScoringScheme) -> tuple[int, int, int]:
    """Run the vectorised DP; return (best score, best query row, best target col).

    Rows correspond to target positions, the vector lane is the query.
    """
    n = query_codes.size
    go, ge = scoring.gap_open, scoring.gap_extend
    profile = scoring.substitution_matrix()  # 4x4
    query_col = query_codes  # lane index j = query position
    H_prev = np.zeros(n + 1, dtype=np.int64)
    F = np.full(n + 1, -(10 ** 9), dtype=np.int64)
    best = 0
    best_q = 0
    best_t = 0
    lane = np.arange(n, dtype=np.int64)
    for t_index, t_code in enumerate(target_codes):
        scores = profile[t_code][query_col]
        diag = H_prev[:-1] + scores
        # Vertical gaps (gap in the query lane direction = previous target row).
        F[1:] = np.maximum(F[1:] - ge, H_prev[1:] - go)
        H0 = np.maximum(0, np.maximum(diag, F[1:]))
        # Horizontal gaps within the row via prefix-max scan.
        running = np.maximum.accumulate(H0 + ge * lane)
        E = np.empty(n, dtype=np.int64)
        E[0] = -(10 ** 9)
        if n > 1:
            E[1:] = running[:-1] - go - ge * (lane[1:] - 1)
        H_row = np.maximum(H0, E)
        row_best_idx = int(np.argmax(H_row))
        row_best = int(H_row[row_best_idx])
        if row_best > best:
            best = row_best
            best_q = row_best_idx + 1
            best_t = t_index + 1
        H_prev = np.concatenate(([0], H_row))
    return best, best_q, best_t


def _sweep_batch(query_codes: np.ndarray, target_codes: np.ndarray,
                 scoring: ScoringScheme) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run the DP of :func:`_sweep` for a whole batch of same-shaped pairs.

    ``query_codes`` is ``(B, n)`` and ``target_codes`` ``(B, m)``; the batch
    dimension rides along as extra vector lanes, so one sweep of the target
    length updates every alignment of the batch at once.  The arithmetic is
    the same int64 elementwise maxima/prefix scans as the single-pair sweep,
    so scores and end coordinates match it exactly (tests assert this).
    Returns per-item ``(best score, best query row, best target col)`` arrays.
    """
    n_pairs, n = query_codes.shape
    m = target_codes.shape[1]
    go, ge = scoring.gap_open, scoring.gap_extend
    profile = scoring.substitution_matrix()
    H_prev = np.zeros((n_pairs, n + 1), dtype=np.int64)
    F = np.full((n_pairs, n + 1), -(10 ** 9), dtype=np.int64)
    best = np.zeros(n_pairs, dtype=np.int64)
    best_q = np.zeros(n_pairs, dtype=np.int64)
    best_t = np.zeros(n_pairs, dtype=np.int64)
    lane = np.arange(n, dtype=np.int64)
    rows = np.arange(n_pairs)
    for t_index in range(m):
        scores = profile[target_codes[:, t_index, None], query_codes]
        diag = H_prev[:, :-1] + scores
        F[:, 1:] = np.maximum(F[:, 1:] - ge, H_prev[:, 1:] - go)
        H0 = np.maximum(0, np.maximum(diag, F[:, 1:]))
        running = np.maximum.accumulate(H0 + ge * lane, axis=1)
        E = np.empty((n_pairs, n), dtype=np.int64)
        E[:, 0] = -(10 ** 9)
        if n > 1:
            E[:, 1:] = running[:, :-1] - go - ge * (lane[1:] - 1)
        H_row = np.maximum(H0, E)
        row_best_idx = np.argmax(H_row, axis=1)
        row_best = H_row[rows, row_best_idx]
        improved = row_best > best
        best = np.where(improved, row_best, best)
        best_q = np.where(improved, row_best_idx + 1, best_q)
        best_t = np.where(improved, t_index + 1, best_t)
        H_prev = np.concatenate(
            (np.zeros((n_pairs, 1), dtype=np.int64), H_row), axis=1)
    return best, best_q, best_t


def _finish(query_codes: np.ndarray, target_codes: np.ndarray, score: int,
            q_end: int, t_end: int, cells: int, scoring: ScoringScheme,
            locate_start: bool) -> StripedResult:
    """Turn a forward-sweep optimum into a :class:`StripedResult`.

    Shared by the single-pair and batched entry points so both produce
    identical results; the optional start-locating reverse pass runs per
    pair (reversed prefixes have per-pair shapes).
    """
    if score == 0:
        return StripedResult(score=0, query_end=0, target_end=0, cells=cells)
    if not locate_start:
        return StripedResult(score=score, query_end=q_end, target_end=t_end,
                             cells=cells)
    # The start of the optimal alignment ending at (q_end, t_end) is the end
    # of the optimal alignment of the reversed prefixes.
    rev_q = query_codes[:q_end][::-1]
    rev_t = target_codes[:t_end][::-1]
    rev_score, rev_q_end, rev_t_end = _sweep(rev_q, rev_t, scoring)
    cells += int(rev_q.size) * int(rev_t.size)
    q_start = q_end - rev_q_end
    t_start = t_end - rev_t_end
    if rev_score != score:  # pragma: no cover - defensive, should not happen
        q_start, t_start = -1, -1
    return StripedResult(score=score, query_end=q_end, target_end=t_end,
                         query_start=q_start, target_start=t_start, cells=cells)


def striped_smith_waterman(query: str, target: str,
                           scoring: ScoringScheme = DEFAULT_SCORING,
                           locate_start: bool = False) -> StripedResult:
    """Vectorised affine-gap local alignment score of *query* vs *target*.

    Args:
        query: the read sequence.
        target: the target window.
        scoring: affine-gap scoring scheme (``gap_open >= gap_extend``).
        locate_start: when True, a second sweep over the reversed prefixes
            recovers the start coordinates of the optimal alignment.

    Returns:
        :class:`StripedResult` with the best score and end (and optionally
        start) coordinates, plus the number of DP cells computed, which the
        cost model uses to charge Smith-Waterman CPU time.
    """
    if not query or not target:
        return StripedResult(score=0, query_end=0, target_end=0, cells=0)
    query_codes = sequence_to_codes(query)
    target_codes = sequence_to_codes(target)
    score, q_end, t_end = _sweep(query_codes, target_codes, scoring)
    return _finish(query_codes, target_codes, score, q_end, t_end,
                   len(query) * len(target), scoring, locate_start)


def striped_smith_waterman_batch(pairs: list[tuple[str, str]],
                                 scoring: ScoringScheme = DEFAULT_SCORING,
                                 locate_start: bool = False) -> list[StripedResult]:
    """Batched :func:`striped_smith_waterman` over ``(query, target)`` pairs.

    Pairs sharing a ``(query length, target length)`` shape are stacked and
    swept together by :func:`_sweep_batch`, turning the per-target-base Python
    loop into one pass per *shape group* instead of one per pair -- the
    windowed extension stage of the batched aligner produces many same-shaped
    windows, which is where this pays off.  Results are returned in pair
    order and are identical to calling the single-pair kernel per element.
    """
    results: list[StripedResult | None] = [None] * len(pairs)
    codes: list[tuple[np.ndarray, np.ndarray] | None] = [None] * len(pairs)
    groups: dict[tuple[int, int], list[int]] = {}
    for index, (query, target) in enumerate(pairs):
        if not query or not target:
            results[index] = StripedResult(score=0, query_end=0, target_end=0,
                                           cells=0)
            continue
        codes[index] = (sequence_to_codes(query), sequence_to_codes(target))
        groups.setdefault((len(query), len(target)), []).append(index)
    for (n, m), members in groups.items():
        if len(members) == 1:
            index = members[0]
            query_codes, target_codes = codes[index]
            score, q_end, t_end = _sweep(query_codes, target_codes, scoring)
            results[index] = _finish(query_codes, target_codes, score, q_end,
                                     t_end, n * m, scoring, locate_start)
            continue
        stacked_q = np.stack([codes[index][0] for index in members])
        stacked_t = np.stack([codes[index][1] for index in members])
        best, best_q, best_t = _sweep_batch(stacked_q, stacked_t, scoring)
        for position, index in enumerate(members):
            query_codes, target_codes = codes[index]
            results[index] = _finish(query_codes, target_codes,
                                     int(best[position]), int(best_q[position]),
                                     int(best_t[position]), n * m, scoring,
                                     locate_start)
    return results
