"""Alignment result records (SAM-flavoured).

merAligner reports, for each read, the targets it aligns to, the coordinates
of the local alignment, its score and whether it was resolved by the
exact-match fast path.  The scaffolding step of Meraculous consumes exactly
this information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class CigarOp(str, Enum):
    """CIGAR operation codes (the subset a local DNA aligner emits)."""

    MATCH = "M"      # alignment match or mismatch
    INSERTION = "I"  # base present in the query but not the target
    DELETION = "D"   # base present in the target but not the query
    SOFTCLIP = "S"   # query bases outside the local alignment


def cigar_to_string(cigar: list[tuple[int, CigarOp]]) -> str:
    """Render a run-length CIGAR list as the usual compact string."""
    return "".join(f"{length}{op.value}" for length, op in cigar)


def alignment_identity(aligned_query: str, aligned_target: str) -> float:
    """Fraction of identical columns between two gapped alignment strings."""
    if len(aligned_query) != len(aligned_target):
        raise ValueError("aligned strings must have equal length")
    if not aligned_query:
        return 0.0
    same = sum(1 for a, b in zip(aligned_query, aligned_target) if a == b and a != "-")
    return same / len(aligned_query)


@dataclass
class Alignment:
    """One local alignment of a query against a target.

    Attributes:
        query_name: read name.
        target_id: index of the target (contig) aligned to.
        score: local alignment score under the scoring scheme used.
        query_start / query_end: half-open interval of the query covered.
        target_start / target_end: half-open interval of the target covered.
        strand: '+' if the query aligned forward, '-' if reverse-complemented.
        cigar: run-length CIGAR (may be empty when only the score was needed).
        is_exact: True when the exact-match fast path produced the alignment.
        identity: fraction of identical columns (1.0 for exact matches).
    """

    query_name: str
    target_id: int
    score: int
    query_start: int
    query_end: int
    target_start: int
    target_end: int
    strand: str = "+"
    cigar: list[tuple[int, CigarOp]] = field(default_factory=list)
    is_exact: bool = False
    identity: float = 0.0

    def __post_init__(self) -> None:
        if self.query_end < self.query_start:
            raise ValueError("query_end must be >= query_start")
        if self.target_end < self.target_start:
            raise ValueError("target_end must be >= target_start")
        if self.strand not in ("+", "-"):
            raise ValueError("strand must be '+' or '-'")

    @property
    def query_span(self) -> int:
        return self.query_end - self.query_start

    @property
    def target_span(self) -> int:
        return self.target_end - self.target_start

    @property
    def cigar_string(self) -> str:
        return cigar_to_string(self.cigar)

    def to_sam_fields(self, target_name: str | None = None) -> list[str]:
        """Render the alignment as the core columns of a SAM record."""
        flag = 0 if self.strand == "+" else 16
        return [
            self.query_name,
            str(flag),
            target_name if target_name is not None else f"target{self.target_id}",
            str(self.target_start + 1),           # SAM is 1-based
            "60" if self.is_exact else "30",       # mapping quality proxy
            self.cigar_string or f"{self.query_span}M",
            "*", "0", "0", "*", "*",
            f"AS:i:{self.score}",
        ]

    def to_sam_line(self, target_name: str | None = None) -> str:
        return "\t".join(self.to_sam_fields(target_name))
