"""Scalar Smith-Waterman-Gotoh local alignment with traceback.

This is the reference implementation: exact affine-gap local alignment with
full traceback, used for small problems, for producing CIGARs, and as the
oracle the vectorised kernels are tested against.  The hot path of the
pipeline uses :mod:`repro.alignment.striped` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.alignment.result import CigarOp
from repro.alignment.scoring import DEFAULT_SCORING, ScoringScheme

_STOP, _DIAG, _UP, _LEFT = 0, 1, 2, 3


@dataclass
class LocalAlignmentResult:
    """Outcome of one local alignment (coordinates are half-open, 0-based)."""

    score: int
    query_start: int
    query_end: int
    target_start: int
    target_end: int
    cigar: list[tuple[int, CigarOp]] = field(default_factory=list)
    aligned_query: str = ""
    aligned_target: str = ""

    @property
    def query_span(self) -> int:
        return self.query_end - self.query_start

    @property
    def target_span(self) -> int:
        return self.target_end - self.target_start


def sw_score_matrix(query: str, target: str,
                    scoring: ScoringScheme = DEFAULT_SCORING) -> np.ndarray:
    """Return the full (len(query)+1) x (len(target)+1) H matrix.

    Exposed for tests and teaching; quadratic memory, do not use on long
    targets.
    """
    n, m = len(query), len(target)
    H = np.zeros((n + 1, m + 1), dtype=np.int64)
    E = np.full((n + 1, m + 1), np.iinfo(np.int64).min // 4, dtype=np.int64)
    F = np.full((n + 1, m + 1), np.iinfo(np.int64).min // 4, dtype=np.int64)
    go, ge = scoring.gap_open, scoring.gap_extend
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            E[i, j] = max(E[i, j - 1] - ge, H[i, j - 1] - go)
            F[i, j] = max(F[i - 1, j] - ge, H[i - 1, j] - go)
            diag = H[i - 1, j - 1] + scoring.score_pair(query[i - 1], target[j - 1])
            H[i, j] = max(0, diag, E[i, j], F[i, j])
    return H


def smith_waterman(query: str, target: str,
                   scoring: ScoringScheme = DEFAULT_SCORING,
                   traceback: bool = True) -> LocalAlignmentResult:
    """Affine-gap local alignment of *query* against *target*.

    Returns the best-scoring local alignment; ties are broken toward the
    smallest target/query end coordinates.  With ``traceback=False`` only the
    score and end coordinates are computed (the start coordinates are then
    reported equal to the ends).
    """
    n, m = len(query), len(target)
    if n == 0 or m == 0:
        return LocalAlignmentResult(0, 0, 0, 0, 0)
    go, ge = scoring.gap_open, scoring.gap_extend
    neg = -(10 ** 9)
    H = [[0] * (m + 1) for _ in range(n + 1)]
    E = [[neg] * (m + 1) for _ in range(n + 1)]
    F = [[neg] * (m + 1) for _ in range(n + 1)]
    pointer = [[_STOP] * (m + 1) for _ in range(n + 1)] if traceback else None
    best_score, best_i, best_j = 0, 0, 0
    for i in range(1, n + 1):
        qbase = query[i - 1]
        Hi, Hi1 = H[i], H[i - 1]
        Ei, Fi, Fi1 = E[i], F[i], F[i - 1]
        for j in range(1, m + 1):
            Ei[j] = max(Ei[j - 1] - ge, Hi[j - 1] - go)
            Fi[j] = max(Fi1[j] - ge, Hi1[j] - go)
            diag = Hi1[j - 1] + (scoring.match if qbase == target[j - 1]
                                 else -scoring.mismatch)
            score = max(0, diag, Ei[j], Fi[j])
            Hi[j] = score
            if traceback:
                if score == 0:
                    pointer[i][j] = _STOP
                elif score == diag:
                    pointer[i][j] = _DIAG
                elif score == Fi[j]:
                    pointer[i][j] = _UP
                else:
                    pointer[i][j] = _LEFT
            if score > best_score:
                best_score, best_i, best_j = score, i, j
    if not traceback or best_score == 0:
        return LocalAlignmentResult(best_score, best_i, best_i, best_j, best_j)
    return _traceback(query, target, pointer, best_score, best_i, best_j)


def _traceback(query: str, target: str, pointer: list[list[int]],
               best_score: int, best_i: int, best_j: int) -> LocalAlignmentResult:
    aligned_q: list[str] = []
    aligned_t: list[str] = []
    ops: list[CigarOp] = []
    i, j = best_i, best_j
    while i > 0 and j > 0 and pointer[i][j] != _STOP:
        direction = pointer[i][j]
        if direction == _DIAG:
            aligned_q.append(query[i - 1])
            aligned_t.append(target[j - 1])
            ops.append(CigarOp.MATCH)
            i -= 1
            j -= 1
        elif direction == _UP:
            aligned_q.append(query[i - 1])
            aligned_t.append("-")
            ops.append(CigarOp.INSERTION)
            i -= 1
        else:  # _LEFT
            aligned_q.append("-")
            aligned_t.append(target[j - 1])
            ops.append(CigarOp.DELETION)
            j -= 1
    aligned_q.reverse()
    aligned_t.reverse()
    ops.reverse()
    cigar: list[tuple[int, CigarOp]] = []
    for op in ops:
        if cigar and cigar[-1][1] == op:
            cigar[-1] = (cigar[-1][0] + 1, op)
        else:
            cigar.append((1, op))
    return LocalAlignmentResult(
        score=best_score,
        query_start=i,
        query_end=best_i,
        target_start=j,
        target_end=best_j,
        cigar=cigar,
        aligned_query="".join(aligned_q),
        aligned_target="".join(aligned_t),
    )
