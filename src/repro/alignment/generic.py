"""Alphabet-generic local alignment (the paper's extension path).

The conclusions of the paper note that "any seed-and-extend algorithm could be
implemented with minor changes to the underlying protocols, including
protein-DNA and protein-protein alignments".  This module provides the
alphabet-generic pieces that make that claim concrete:

* :class:`Alphabet` -- an arbitrary residue alphabet with encode/decode;
* :class:`SubstitutionMatrix` -- a full substitution matrix (rather than the
  match/mismatch scores DNA uses) with affine gap penalties;
* :func:`local_align_codes` -- the same vectorised affine-gap Smith-Waterman
  sweep as :mod:`repro.alignment.striped`, parameterised by a substitution
  matrix over integer residue codes.

:mod:`repro.alignment.protein` builds BLOSUM62 and a protein seed-and-extend
aligner on top of these.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class Alphabet:
    """A residue alphabet with a fixed symbol order."""

    def __init__(self, symbols: str) -> None:
        if len(set(symbols)) != len(symbols):
            raise ValueError("alphabet symbols must be unique")
        if not symbols:
            raise ValueError("alphabet must not be empty")
        self.symbols = symbols
        self._index = {ch: i for i, ch in enumerate(symbols)}

    def __len__(self) -> int:
        return len(self.symbols)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._index

    def encode(self, sequence: str) -> np.ndarray:
        """Encode a sequence into integer codes; raises on foreign symbols."""
        try:
            return np.array([self._index[ch] for ch in sequence], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"symbol {exc.args[0]!r} not in alphabet") from None

    def decode(self, codes: np.ndarray) -> str:
        codes = np.asarray(codes)
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.symbols)):
            raise ValueError("code outside alphabet range")
        return "".join(self.symbols[int(code)] for code in codes)

    def is_valid(self, sequence: str) -> bool:
        return all(ch in self._index for ch in sequence)


#: The DNA alphabet in the package's canonical order.
DNA_ALPHABET = Alphabet("ACGT")

#: The 20 standard amino acids (alphabetical one-letter codes).
PROTEIN_ALPHABET = Alphabet("ARNDCQEGHILKMFPSTWYV")


@dataclass(frozen=True)
class SubstitutionMatrix:
    """A substitution matrix over an alphabet, with affine gap penalties.

    Attributes:
        alphabet: the residue alphabet the matrix is indexed by.
        scores: square integer matrix, ``scores[i, j]`` = score of aligning
            symbol i against symbol j.
        gap_open: positive penalty for opening a gap.
        gap_extend: positive penalty for extending a gap.
    """

    alphabet: Alphabet
    scores: np.ndarray
    gap_open: int = 11
    gap_extend: int = 1

    def __post_init__(self) -> None:
        n = len(self.alphabet)
        if self.scores.shape != (n, n):
            raise ValueError("substitution matrix shape must match the alphabet")
        if self.gap_open < self.gap_extend or self.gap_extend <= 0:
            raise ValueError("require gap_open >= gap_extend > 0")

    def score(self, a: str, b: str) -> int:
        """Score of aligning symbol *a* against symbol *b*."""
        ia = self.alphabet.encode(a)[0]
        ib = self.alphabet.encode(b)[0]
        return int(self.scores[ia, ib])

    @classmethod
    def match_mismatch(cls, alphabet: Alphabet, match: int, mismatch: int,
                       gap_open: int, gap_extend: int) -> "SubstitutionMatrix":
        """Build a simple +match/-mismatch matrix (what DNA scoring uses)."""
        n = len(alphabet)
        scores = np.full((n, n), -abs(mismatch), dtype=np.int64)
        np.fill_diagonal(scores, abs(match))
        return cls(alphabet=alphabet, scores=scores, gap_open=gap_open,
                   gap_extend=gap_extend)


@dataclass(frozen=True)
class GenericAlignmentResult:
    """Score and end coordinates of a generic local alignment."""

    score: int
    query_end: int
    target_end: int
    cells: int


def local_align_codes(query_codes: np.ndarray, target_codes: np.ndarray,
                      matrix: SubstitutionMatrix) -> GenericAlignmentResult:
    """Vectorised affine-gap local alignment over pre-encoded sequences.

    Identical recurrence to :func:`repro.alignment.striped.striped_smith_waterman`
    (prefix-max scan for the in-row gap dependency, exact for
    ``gap_open >= gap_extend``), but scored by an arbitrary substitution
    matrix so it works for proteins or any other alphabet.
    """
    query_codes = np.asarray(query_codes, dtype=np.int64)
    target_codes = np.asarray(target_codes, dtype=np.int64)
    n = int(query_codes.size)
    m = int(target_codes.size)
    if n == 0 or m == 0:
        return GenericAlignmentResult(score=0, query_end=0, target_end=0, cells=0)
    go, ge = matrix.gap_open, matrix.gap_extend
    scores = matrix.scores
    H_prev = np.zeros(n + 1, dtype=np.int64)
    F = np.full(n + 1, -(10 ** 9), dtype=np.int64)
    lane = np.arange(n, dtype=np.int64)
    best, best_q, best_t = 0, 0, 0
    for t_index, t_code in enumerate(target_codes):
        profile = scores[t_code][query_codes]
        diag = H_prev[:-1] + profile
        F[1:] = np.maximum(F[1:] - ge, H_prev[1:] - go)
        H0 = np.maximum(0, np.maximum(diag, F[1:]))
        running = np.maximum.accumulate(H0 + ge * lane)
        E = np.empty(n, dtype=np.int64)
        E[0] = -(10 ** 9)
        if n > 1:
            E[1:] = running[:-1] - go - ge * (lane[1:] - 1)
        H_row = np.maximum(H0, E)
        row_best_idx = int(np.argmax(H_row))
        row_best = int(H_row[row_best_idx])
        if row_best > best:
            best, best_q, best_t = row_best, row_best_idx + 1, t_index + 1
        H_prev = np.concatenate(([0], H_row))
    return GenericAlignmentResult(score=best, query_end=best_q, target_end=best_t,
                                  cells=n * m)


def local_align(query: str, target: str,
                matrix: SubstitutionMatrix) -> GenericAlignmentResult:
    """Convenience wrapper of :func:`local_align_codes` for string inputs."""
    return local_align_codes(matrix.alphabet.encode(query),
                             matrix.alphabet.encode(target), matrix)
