"""Scoring schemes for local alignment.

The paper uses a "commonly employed scoring matrix" with the SSW library; the
default here matches SSW's defaults for DNA (match +2, mismatch -3, gap open
-5, gap extend -2, expressed as positive penalties).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dna.sequence import sequence_to_codes


@dataclass(frozen=True)
class ScoringScheme:
    """Affine-gap scoring parameters for Smith-Waterman.

    Attributes:
        match: score added for a matching base (positive).
        mismatch: penalty subtracted for a mismatching base (positive value).
        gap_open: penalty for opening a gap (charged on the first gapped base).
        gap_extend: penalty for each additional gapped base.
    """

    match: int = 2
    mismatch: int = 3
    gap_open: int = 5
    gap_extend: int = 2

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ValueError("match score must be positive")
        if self.mismatch < 0 or self.gap_open < 0 or self.gap_extend < 0:
            raise ValueError("penalties must be non-negative")
        if self.gap_open < self.gap_extend:
            raise ValueError("gap_open must be >= gap_extend (affine convention)")

    def substitution_matrix(self) -> np.ndarray:
        """4x4 substitution matrix over base codes (A=0..T=3)."""
        matrix = np.full((4, 4), -self.mismatch, dtype=np.int64)
        np.fill_diagonal(matrix, self.match)
        return matrix

    def score_pair(self, a: str, b: str) -> int:
        """Score of aligning base *a* against base *b*."""
        return self.match if a == b else -self.mismatch

    def profile(self, query: str) -> np.ndarray:
        """Query profile: ``profile[code, j]`` is the score of aligning target
        base ``code`` against query position ``j``.

        This is the precomputed structure SSW calls the query profile; the
        vectorised kernel indexes it one target base at a time.
        """
        codes = sequence_to_codes(query)
        return self.substitution_matrix()[:, codes]

    def max_score(self, length: int) -> int:
        """Best possible local-alignment score for a read of *length* bases."""
        return self.match * length


#: SSW-compatible default DNA scoring.
DEFAULT_SCORING = ScoringScheme()
