"""The exact-match fast path (paper section IV-A).

When Lemma 1 applies (all seeds of the candidate target are single-copy and
the query matches the target over its full length), the alignment can be
resolved by a plain string comparison at the position implied by the seed
offsets -- no Smith-Waterman, no further seed lookups.
"""

from __future__ import annotations

from repro.alignment.result import Alignment, CigarOp
from repro.alignment.scoring import DEFAULT_SCORING, ScoringScheme


def exact_match_at(query: str, target: str, target_start: int) -> bool:
    """memcmp analogue: does *query* match *target* exactly at *target_start*?

    Positions outside the target (negative start or overhang past the end)
    count as a mismatch, mirroring the bounds check the C code performs before
    its ``memcmp``.
    """
    if target_start < 0 or target_start + len(query) > len(target):
        return False
    return target[target_start:target_start + len(query)] == query


def try_exact_match(query_name: str, query: str, target_id: int, target: str,
                    seed_offset_in_query: int, seed_offset_in_target: int,
                    strand: str = "+",
                    scoring: ScoringScheme = DEFAULT_SCORING) -> Alignment | None:
    """Attempt the exact-match fast path for one seed hit.

    The seed occurs at ``seed_offset_in_query`` in the query and at
    ``seed_offset_in_target`` in the target, so an exact end-to-end match can
    only start at ``seed_offset_in_target - seed_offset_in_query``.

    Returns:
        A full-length :class:`Alignment` with ``is_exact=True`` when the query
        matches the target there, otherwise None (the caller falls back to
        Smith-Waterman extension).
    """
    start = seed_offset_in_target - seed_offset_in_query
    if not exact_match_at(query, target, start):
        return None
    length = len(query)
    return Alignment(
        query_name=query_name,
        target_id=target_id,
        score=scoring.max_score(length),
        query_start=0,
        query_end=length,
        target_start=start,
        target_end=start + length,
        strand=strand,
        cigar=[(length, CigarOp.MATCH)],
        is_exact=True,
        identity=1.0,
    )
