"""Seed extension: turn a seed hit into a local alignment.

Given a seed shared by the query and a candidate target (Algorithm 1, line
12), merAligner runs Smith-Waterman on the query against the target.  Running
the DP against the *whole* target would be wasteful: the seed pins the
diagonal, so we extract a target window just large enough to contain any
alignment of the query around that diagonal (plus padding for gaps) and align
against the window, then shift coordinates back to the target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alignment.result import Alignment
from repro.alignment.scoring import DEFAULT_SCORING, ScoringScheme
from repro.alignment.smith_waterman import smith_waterman
from repro.alignment.striped import (StripedResult, striped_smith_waterman,
                                     striped_smith_waterman_batch)


@dataclass(frozen=True)
class SeedHit:
    """A candidate query-to-target placement produced by a seed index lookup.

    Attributes:
        target_id: identifier of the candidate target.
        target_offset: offset of the seed within the target.
        query_offset: offset of the seed within the query.
        seed_length: k.
        strand: orientation of the query relative to the target.
    """

    target_id: int
    target_offset: int
    query_offset: int
    seed_length: int
    strand: str = "+"

    def __post_init__(self) -> None:
        if self.seed_length <= 0:
            raise ValueError("seed_length must be positive")
        if self.target_offset < 0 or self.query_offset < 0:
            raise ValueError("offsets must be non-negative")
        if self.strand not in ("+", "-"):
            raise ValueError("strand must be '+' or '-'")

    @property
    def expected_target_start(self) -> int:
        """Target position where an end-to-end match of the query would start."""
        return self.target_offset - self.query_offset


def extend_seed_hit(query_name: str, query: str, target: str, hit: SeedHit,
                    scoring: ScoringScheme = DEFAULT_SCORING,
                    window_padding: int = 16,
                    detailed: bool = False) -> tuple[Alignment, int]:
    """Extend one seed hit with Smith-Waterman.

    Args:
        query_name: read name propagated into the result.
        query: read sequence (already reverse-complemented when ``hit.strand``
            is '-', matching how the pipeline canonicalises orientation).
        target: the full candidate target sequence (or a cached copy).
        hit: the seed placement.
        scoring: affine-gap scoring scheme.
        window_padding: extra target bases kept on each side of the expected
            footprint to absorb indels.
        detailed: when True, the scalar traceback kernel is used and the
            result carries a CIGAR and identity; otherwise the vectorised
            score-only kernel is used (the pipeline's hot path).

    Returns:
        ``(alignment, dp_cells)`` where *dp_cells* is the number of DP cells
        evaluated (used to charge Smith-Waterman CPU time in the cost model).
    """
    window_start, window = _extension_window(query, target, hit, window_padding)
    if not window:
        empty = Alignment(query_name=query_name, target_id=hit.target_id, score=0,
                          query_start=0, query_end=0, target_start=0, target_end=0,
                          strand=hit.strand)
        return empty, 0
    if detailed:
        result = smith_waterman(query, window, scoring=scoring, traceback=True)
        cells = len(query) * len(window)
        identity = 0.0
        if result.aligned_query:
            same = sum(1 for a, b in zip(result.aligned_query, result.aligned_target)
                       if a == b and a != "-")
            identity = same / len(result.aligned_query)
        alignment = Alignment(
            query_name=query_name,
            target_id=hit.target_id,
            score=result.score,
            query_start=result.query_start,
            query_end=result.query_end,
            target_start=window_start + result.target_start,
            target_end=window_start + result.target_end,
            strand=hit.strand,
            cigar=result.cigar,
            is_exact=False,
            identity=identity,
        )
        return alignment, cells
    striped = striped_smith_waterman(query, window, scoring=scoring, locate_start=True)
    return _alignment_from_striped(query_name, hit, window_start, striped)


def _extension_window(query: str, target: str, hit: SeedHit,
                      window_padding: int) -> tuple[int, str]:
    """Target window around the diagonal pinned by *hit*: ``(start, text)``."""
    window_start = max(0, hit.expected_target_start - window_padding)
    window_end = min(len(target), hit.expected_target_start + len(query) + window_padding)
    return window_start, target[window_start:window_end]


def _alignment_from_striped(query_name: str, hit: SeedHit, window_start: int,
                            striped: StripedResult) -> tuple[Alignment, int]:
    """Shift a striped-kernel result back into target coordinates."""
    q_start = striped.query_start if striped.has_start else striped.query_end
    t_start = striped.target_start if striped.has_start else striped.target_end
    alignment = Alignment(
        query_name=query_name,
        target_id=hit.target_id,
        score=striped.score,
        query_start=q_start,
        query_end=striped.query_end,
        target_start=window_start + t_start,
        target_end=window_start + striped.target_end,
        strand=hit.strand,
        is_exact=False,
        identity=0.0,
    )
    return alignment, striped.cells


def extend_batch(jobs: list[tuple[str, str, str, SeedHit]],
                 scoring: ScoringScheme = DEFAULT_SCORING,
                 window_padding: int = 16,
                 detailed: bool = False) -> list[tuple[Alignment, int]]:
    """Extend a whole batch of seed hits; results in job order.

    Each job is ``(query_name, query, target, hit)`` exactly as accepted by
    :func:`extend_seed_hit`, and each result is the same ``(alignment,
    dp_cells)`` pair that function returns.  In the default score-only mode
    the extension windows are cut first and all same-shaped
    ``(query, window)`` pairs are routed through the batched striped kernel
    (:func:`~repro.alignment.striped.striped_smith_waterman_batch`) in one
    sweep per shape group; the detailed (traceback) mode falls back to the
    scalar kernel per job.
    """
    if detailed:
        return [extend_seed_hit(query_name, query, target, hit, scoring=scoring,
                                window_padding=window_padding, detailed=True)
                for query_name, query, target, hit in jobs]
    results: list[tuple[Alignment, int] | None] = [None] * len(jobs)
    window_starts: list[int] = []
    pairs: list[tuple[str, str]] = []
    pair_jobs: list[int] = []
    for index, (query_name, query, target, hit) in enumerate(jobs):
        window_start, window = _extension_window(query, target, hit, window_padding)
        if not window:
            empty = Alignment(query_name=query_name, target_id=hit.target_id,
                              score=0, query_start=0, query_end=0,
                              target_start=0, target_end=0, strand=hit.strand)
            results[index] = (empty, 0)
            continue
        window_starts.append(window_start)
        pairs.append((query, window))
        pair_jobs.append(index)
    striped_results = striped_smith_waterman_batch(pairs, scoring=scoring,
                                                   locate_start=True)
    for window_start, striped, index in zip(window_starts, striped_results,
                                            pair_jobs):
        query_name, _query, _target, hit = jobs[index]
        results[index] = _alignment_from_striped(query_name, hit, window_start,
                                                 striped)
    return results
