"""Banded affine-gap Smith-Waterman.

When a seed hit pins the expected diagonal of the alignment, restricting the
dynamic program to a band around that diagonal reduces the work from
``O(|q| * |t|)`` to ``O(|q| * band)`` at no loss for alignments whose gaps fit
inside the band.  merAligner's seed-and-extend usage is exactly that case, so
the pipeline exposes the band width as a tuning knob (ablation benchmark).
"""

from __future__ import annotations

from repro.alignment.scoring import DEFAULT_SCORING, ScoringScheme
from repro.alignment.smith_waterman import LocalAlignmentResult


def banded_smith_waterman(query: str, target: str,
                          diagonal: int = 0,
                          bandwidth: int = 16,
                          scoring: ScoringScheme = DEFAULT_SCORING) -> LocalAlignmentResult:
    """Affine-gap local alignment restricted to a diagonal band.

    Args:
        query: read sequence (rows of the DP).
        target: target window (columns of the DP).
        diagonal: expected value of ``target_index - query_index`` for the
            alignment (0 when the window was already shifted to the seed).
        bandwidth: maximum deviation from *diagonal* explored on either side.
        scoring: affine-gap scores (``gap_open >= gap_extend``).

    Returns:
        Score and end coordinates of the best in-band local alignment (no
        traceback).  The score never exceeds the unbanded score and equals it
        whenever the optimal alignment stays inside the band.
    """
    n, m = len(query), len(target)
    if n == 0 or m == 0:
        return LocalAlignmentResult(0, 0, 0, 0, 0)
    if bandwidth < 0:
        raise ValueError("bandwidth must be non-negative")
    go, ge = scoring.gap_open, scoring.gap_extend
    neg = -(10 ** 9)
    # Row i covers target columns j in [i + diagonal - bandwidth, i + diagonal + bandwidth].
    prev_H: dict[int, int] = {}
    prev_F: dict[int, int] = {}
    best, best_i, best_j = 0, 0, 0
    for i in range(1, n + 1):
        qbase = query[i - 1]
        lo = max(1, i + diagonal - bandwidth)
        hi = min(m, i + diagonal + bandwidth)
        if lo > hi:
            prev_H, prev_F = {}, {}
            continue
        cur_H: dict[int, int] = {}
        cur_F: dict[int, int] = {}
        cur_E = neg
        for j in range(lo, hi + 1):
            e_from_h = cur_H.get(j - 1, neg) - go
            cur_E = max(cur_E - ge, e_from_h)
            f = max(prev_F.get(j, neg) - ge, prev_H.get(j, neg) - go)
            diag_prev = prev_H.get(j - 1, 0 if i == 1 or j == lo else neg)
            # Cells outside the band are treated as 0 only at the DP boundary
            # (first row / first in-band column); elsewhere they are -inf.
            if i == 1:
                diag_prev = 0
            elif j - 1 < max(1, (i - 1) + diagonal - bandwidth) or j - 1 > min(m, (i - 1) + diagonal + bandwidth):
                diag_prev = 0 if j - 1 == 0 else neg
            diag = diag_prev + (scoring.match if qbase == target[j - 1]
                                else -scoring.mismatch)
            score = max(0, diag, cur_E, f)
            cur_H[j] = score
            cur_F[j] = f
            if score > best:
                best, best_i, best_j = score, i, j
        prev_H, prev_F = cur_H, cur_F
    return LocalAlignmentResult(best, best_i, best_i, best_j, best_j)
