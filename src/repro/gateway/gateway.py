"""The multi-tenant gateway: routing, result caching, fair admission.

:class:`AlignmentGateway` composes the three gateway pieces over the
existing service stack:

* an :class:`~repro.gateway.registry.IndexRegistry` of named resident
  sessions (each with its own micro-batching scheduler, all recording into
  one shared metrics registry);
* a :class:`~repro.gateway.cache.ResultCache` answering exact-duplicate
  requests without touching any scheduler;
* an :class:`~repro.gateway.admission.AdmissionController` bounding the
  pending queue and interleaving tenants fairly.

The crucial property, inherited from the scheduler's demux guarantee and
pinned by ``tests/test_gateway.py``: a routed request's rendered output is
**byte-identical to an offline single-index run of its own reads** on every
backend, bulk batching on or off, whether it was served by a scheduler or
replayed from the cache.  With the pass-through defaults (no extra indices,
cache disabled, unbounded admission) the gateway adds no observable
behaviour over the plain scheduler path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading

from repro.gateway.admission import (AdmissionController, DEFAULT_TENANT,
                                     GatewayBusyError)
from repro.gateway.cache import ResultCache
from repro.gateway.registry import (IndexRegistry, ResidentEntry,
                                    modelled_heap_bytes)

__all__ = ["AlignmentGateway", "GatewayRequestTicket", "GatewayResponse",
           "StreamChunkTicket", "DEFAULT_INDEX", "config_fingerprint",
           "canonical_read_payload"]

DEFAULT_INDEX = "default"


def config_fingerprint(config, backend: str, n_ranks: int) -> str:
    """A short digest of everything (besides index + reads) the output
    depends on: the full aligner configuration, backend and rank count.

    Backend is included out of caution, not necessity -- outputs are
    byte-identical across backends by construction -- so a fingerprint
    mismatch can only ever cause a spurious miss, never a wrong hit.
    """
    payload = repr((sorted(dataclasses.asdict(config).items()),
                    backend, n_ranks))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def canonical_read_payload(reads) -> bytes:
    """The cache key's canonical serialization of a *normalized* read list
    (name, sequence, quality -- everything the served output reads)."""
    parts = []
    for read in reads:
        quality = getattr(read, "quality", "") or ""
        parts.append(f"{read.name}\x1f{read.sequence}\x1f{quality}")
    return "\x1e".join(parts).encode("utf-8")


@dataclasses.dataclass
class GatewayResponse:
    """One routed request's outcome: the rendered text plus provenance."""

    text: str
    index: str
    tenant: str
    workload: str
    #: True when the response was replayed from the result cache (no
    #: scheduler involved).
    cached: bool
    #: The scheduler's RequestResult for uncached responses (None on hits).
    result: object | None = None


class StreamChunkTicket:
    """One admitted streamed chunk: taking its result frees the slot.

    Wraps the admission-controlled pending handle so the admission slot is
    released exactly once, when (and only when) the result is collected --
    keeping the bounded pending queue an accurate in-flight count while a
    stream pipelines several chunks.
    """

    def __init__(self, gateway: "AlignmentGateway", index: str,
                 pending) -> None:
        self._gateway = gateway
        self._index = index
        self._pending = pending
        self._released = False

    def result(self, timeout: float | None = None):
        try:
            return self._pending.result(timeout)
        finally:
            self.release()

    def add_done_callback(self, fn) -> None:
        """Call ``fn(self)`` once ``result()`` would no longer block (the
        asyncio front-end's bridge; see
        :meth:`~repro.gateway.admission._PendingRequest.add_done_callback`)."""
        self._pending.add_done_callback(lambda _pending: fn(self))

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._gateway.admission.complete(self._index)


class GatewayRequestTicket:
    """One admitted (cache-missing) one-shot request, not yet awaited.

    The non-blocking half of :meth:`AlignmentGateway.request`: admission
    already happened on the submitting thread (a full pending queue raised
    :class:`~repro.gateway.admission.GatewayBusyError` there), and
    :meth:`result` performs everything the blocking path did after its
    wait -- release the admission slot exactly once, populate the result
    cache, count the request against its resident entry -- so both
    front-ends produce identical gateway state and responses.
    """

    def __init__(self, gateway: "AlignmentGateway", entry, index: str,
                 tenant: str, workload: str, pending, cache_key) -> None:
        self._gateway = gateway
        self._entry = entry
        self._index = index
        self._tenant = tenant
        self._workload = workload
        self._pending = pending
        self._cache_key = cache_key
        self._released = False

    def add_done_callback(self, fn) -> None:
        """Call ``fn(self)`` once :meth:`result` would no longer block."""
        self._pending.add_done_callback(lambda _pending: fn(self))

    def release(self) -> None:
        """Free the admission slot without collecting the result (abort
        paths: the scheduler still serves the batch, nobody reads it)."""
        if not self._released:
            self._released = True
            self._gateway.admission.complete(self._index)

    def result(self, timeout: float | None = None) -> GatewayResponse:
        try:
            result = self._pending.result(timeout)
        finally:
            self.release()
        if self._cache_key is not None:
            self._gateway.cache.put(self._cache_key, result.text)
        self._entry.requests_served += 1
        return GatewayResponse(text=result.text, index=self._index,
                               tenant=self._tenant, workload=self._workload,
                               cached=False, result=result)


class AlignmentGateway:
    """Multi-tenant front end over one or more resident alignment sessions.

    Args:
        session: the default resident session (serves requests that name no
            index; pinned, never auto-evicted).
        scheduler: optional existing scheduler for *session* (one is built
            otherwise); its batching knobs are cloned for registered
            indices, and its metrics registry becomes the gateway's.
        cache_ttl_s / cache_max_entries: the result cache (TTL ``0``
            disables it -- the pass-through default).
        max_pending: admission bound (``None``: unbounded).
        heap_budget_bytes: modelled-heap LRU budget across resident
            indices (``None``: unbudgeted).
    """

    def __init__(self, session, scheduler=None, *, cache_ttl_s: float = 0.0,
                 cache_max_entries: int = 1024,
                 max_pending: int | None = None,
                 heap_budget_bytes: int | None = None) -> None:
        from repro.service.scheduler import RequestScheduler
        if scheduler is None:
            scheduler = RequestScheduler(session)
        if scheduler.session is not session:
            raise ValueError("scheduler must wrap the default session")
        self.metrics = scheduler.metrics
        self.registry = IndexRegistry(budget_bytes=heap_budget_bytes,
                                      metrics=self.metrics)
        self.cache = ResultCache(ttl_s=cache_ttl_s,
                                 max_entries=cache_max_entries,
                                 metrics=self.metrics)
        self.admission = AdmissionController(
            max_pending=max_pending, metrics=self.metrics,
            default_inflight_limit=scheduler.max_batch_requests)
        #: Batching knobs cloned onto every registered index's scheduler.
        self._scheduler_options = {
            "max_batch_requests": scheduler.max_batch_requests,
            "max_batch_reads": scheduler.max_batch_reads,
            "max_wait_s": scheduler.max_wait_s,
            "warm_caches": scheduler.warm_caches,
        }
        self._lock = threading.Lock()   # serializes register/evict/close
        self._closed = False
        prepared = session.prepared
        self.registry.add(ResidentEntry(
            name=DEFAULT_INDEX, session=session, scheduler=scheduler,
            heap_bytes=modelled_heap_bytes(session),
            fingerprint=config_fingerprint(prepared.config, prepared.backend,
                                           prepared.runtime.n_ranks),
            pinned=True))
        self.admission.set_inflight_limit(DEFAULT_INDEX,
                                          scheduler.max_batch_requests)

    # -- the default entry ----------------------------------------------------

    @property
    def default_scheduler(self):
        return self.registry.get(DEFAULT_INDEX).scheduler

    @property
    def default_session(self):
        return self.registry.get(DEFAULT_INDEX).session

    # -- index lifecycle ------------------------------------------------------

    def register(self, name: str, targets, *, config=None,
                 target_names=None, pinned: bool = False) -> dict:
        """Build and register a named resident index at runtime.

        The new session inherits the default session's configuration, rank
        count, machine model and backend unless *config* overrides the
        aligner configuration.  Registering may LRU-evict unpinned indices
        to fit the heap budget; the returned summary lists them.
        """
        from repro.core.pipeline import MerAligner
        from repro.service.scheduler import RequestScheduler
        if not name or any(ch.isspace() for ch in name):
            raise ValueError(
                f"index names must be non-empty and whitespace-free, "
                f"got {name!r}")
        with self._lock:
            if self._closed:
                raise RuntimeError("gateway is closed")
            if name in self.registry:
                raise ValueError(f"index {name!r} is already registered")
            default = self.registry.get(DEFAULT_INDEX)
            prepared = default.session.prepared
            build_config = config if config is not None else prepared.config
            session = MerAligner(build_config).prepare(
                targets, n_ranks=prepared.runtime.n_ranks,
                machine=prepared.runtime.machine, backend=prepared.backend,
                target_names=target_names)
            scheduler = None
            try:
                scheduler = RequestScheduler(session, metrics=self.metrics,
                                             **self._scheduler_options)
                entry = ResidentEntry(
                    name=name, session=session, scheduler=scheduler,
                    heap_bytes=modelled_heap_bytes(session),
                    fingerprint=config_fingerprint(
                        build_config, prepared.backend,
                        prepared.runtime.n_ranks),
                    pinned=pinned)
                evicted = self.registry.add(entry)
            except BaseException:
                if scheduler is not None:
                    scheduler.close()
                session.close()
                raise
            for victim in evicted:
                self.admission.forget_index(victim)
            self.admission.set_inflight_limit(
                name, scheduler.max_batch_requests)
            self.metrics.counter("gateway_indices_registered_total").inc()
            summary = entry.to_json_dict()
            summary["evicted"] = evicted
            return summary

    def evict(self, name: str) -> None:
        """Evict a named index (the pinned default index refuses)."""
        with self._lock:
            self.registry.evict(name)
            self.admission.forget_index(name)

    # -- request routing ------------------------------------------------------

    def submit_request(self, reads, workload: str = "align",
                       index: str | None = None, tenant: str | None = None):
        """Route one request without blocking for its result.

        Cache lookup, then fair admission to the named index's scheduler --
        everything :meth:`request` does before its wait.  Returns a finished
        :class:`GatewayResponse` on a cache hit, otherwise a
        :class:`GatewayRequestTicket` whose ``result(timeout)`` (or
        ``add_done_callback``) completes the request.

        Raises :class:`~repro.gateway.admission.GatewayBusyError` when the
        pending queue is full and :class:`KeyError` for an unknown index.
        """
        from repro.core.plan import normalize_reads
        index = index or DEFAULT_INDEX
        tenant = tenant or DEFAULT_TENANT
        entry = self.registry.touch(index)
        self.metrics.counter("gateway_requests_total", index=index,
                             tenant=tenant, workload=workload).inc()
        # Normalize before keying so FastqRecord and ReadRecord spellings of
        # the same reads share one cache entry, exactly as they share one
        # scheduler outcome.
        reads = normalize_reads(reads)
        key = None
        if self.cache.enabled:
            key = ResultCache.request_key(index, workload, entry.fingerprint,
                                          canonical_read_payload(reads))
            text = self.cache.get(key)
            if text is not None:
                entry.requests_served += 1
                return GatewayResponse(text=text, index=index, tenant=tenant,
                                       workload=workload, cached=True)
        pending = self.admission.admit(
            tenant, index,
            lambda: entry.scheduler.submit(reads, workload=workload))
        return GatewayRequestTicket(self, entry, index, tenant, workload,
                                    pending, key)

    def request(self, reads, workload: str = "align", index: str | None = None,
                tenant: str | None = None,
                timeout: float | None = None) -> GatewayResponse:
        """Route one request: cache lookup, then fair admission to the named
        index's scheduler.

        Raises :class:`~repro.gateway.admission.GatewayBusyError` when the
        pending queue is full and :class:`KeyError` for an unknown index.
        """
        outcome = self.submit_request(reads, workload=workload, index=index,
                                      tenant=tenant)
        if isinstance(outcome, GatewayResponse):
            return outcome
        return outcome.result(timeout)

    def submit_stream_chunk(self, reads, workload: str = "align",
                            index: str | None = None,
                            tenant: str | None = None):
        """Admit one streamed chunk without blocking for its result.

        The streaming twin of :meth:`request`: admission-controlled (a full
        pending queue raises
        :class:`~repro.gateway.admission.GatewayBusyError` -- the wire
        ``BUSY`` at a chunk boundary) but **cache-bypassing** -- chunk
        boundaries are arbitrary, so chunk outputs would only pollute the
        exact-duplicate result cache.  Returns ``(entry, ticket)``: the
        resident entry (whose session renders the chunk's part) and a
        waitable :class:`StreamChunkTicket` that releases its admission
        slot when the result is taken, letting the caller keep several
        chunks in flight so the scheduler can coalesce them.
        """
        from repro.core.plan import normalize_reads
        index = index or DEFAULT_INDEX
        tenant = tenant or DEFAULT_TENANT
        entry = self.registry.touch(index)
        self.metrics.counter("gateway_stream_chunks_total", index=index,
                             tenant=tenant, workload=workload).inc()
        reads = normalize_reads(reads)
        pending = self.admission.admit(
            tenant, index,
            lambda: entry.scheduler.submit(reads, workload=workload))
        entry.requests_served += 1
        return entry, StreamChunkTicket(self, index, pending)

    # -- reporting and lifecycle ----------------------------------------------

    def indices_json(self) -> dict:
        """The ``INDICES`` payload: every resident index plus budget state."""
        return self.registry.stats_json()

    def stats_json(self) -> dict:
        """The gateway section of ``STATS`` / ``METRICS``."""
        return {
            "indices": self.registry.stats_json(),
            "cache": self.cache.stats_dict(),
            "admission": self.admission.stats_dict(),
        }

    def close(self) -> None:
        """Close the admission dispatcher, then every resident index."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.admission.close()
        self.registry.close_all()

    def __enter__(self) -> "AlignmentGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
