"""Multi-tenant gateway over the alignment service stack.

The serving stack (:mod:`repro.service`) amortizes one index build over
many requests; this package amortizes one *server* over many indices and
many tenants:

* :class:`~repro.gateway.registry.IndexRegistry` -- named resident
  sessions, registered and evicted at runtime under a modelled-heap-byte
  LRU budget;
* :class:`~repro.gateway.admission.AdmissionController` -- a bounded
  pending queue with explicit ``BUSY`` rejection and per-tenant fair
  round-robin dispatch;
* :class:`~repro.gateway.cache.ResultCache` -- a TTL'd exact-duplicate
  response cache, the service-level analogue of the paper's per-node
  software caches;
* :class:`~repro.gateway.gateway.AlignmentGateway` -- the front end tying
  them together behind ``api.serve(...)`` and the wire protocol's
  ``INDICES`` / ``REGISTER`` / ``EVICT`` verbs and ``INDEX=`` / ``TENANT=``
  request options.

See ``docs/gateway.md`` for the full semantics.
"""

from repro.gateway.admission import (AdmissionController, DEFAULT_TENANT,
                                     GatewayBusyError)
from repro.gateway.cache import ResultCache
from repro.gateway.gateway import (AlignmentGateway, DEFAULT_INDEX,
                                   GatewayRequestTicket, GatewayResponse,
                                   StreamChunkTicket, canonical_read_payload,
                                   config_fingerprint)
from repro.gateway.registry import (IndexRegistry, RegistryBudgetError,
                                    ResidentEntry, modelled_heap_bytes)

__all__ = [
    "AdmissionController",
    "AlignmentGateway",
    "DEFAULT_INDEX",
    "DEFAULT_TENANT",
    "GatewayBusyError",
    "GatewayRequestTicket",
    "GatewayResponse",
    "IndexRegistry",
    "StreamChunkTicket",
    "RegistryBudgetError",
    "ResidentEntry",
    "ResultCache",
    "canonical_read_payload",
    "config_fingerprint",
    "modelled_heap_bytes",
]
