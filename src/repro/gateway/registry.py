"""Named resident indices with an LRU modelled-heap-byte budget.

A resident :class:`~repro.service.session.AlignmentSession` is expensive --
the whole point of the serving stack is amortizing its index build -- so a
multi-tenant server keeps several of them, named, and routes each request
by name.  The registry owns that mapping plus the eviction policy: every
entry is costed by its **modelled heap bytes** (the sum of
:func:`~repro.pgas.runtime.estimate_nbytes` over all shared-heap segments,
i.e. what the simulated PGAS machine would actually hold resident), and
when registering a new index would exceed ``budget_bytes`` the
least-recently-*used* unpinned entries are evicted -- their schedulers and
sessions closed -- until it fits.  The default index is pinned: it backs
every request that names no index, so evicting it would break the
backward-compatible path.
"""

from __future__ import annotations

import threading
import time

from repro.pgas.runtime import estimate_nbytes

__all__ = ["IndexRegistry", "RegistryBudgetError", "ResidentEntry",
           "modelled_heap_bytes"]


class RegistryBudgetError(RuntimeError):
    """An index cannot fit the heap budget even after every allowed
    eviction."""


def modelled_heap_bytes(session) -> int:
    """The session's modelled resident footprint: every shared-heap segment
    costed by :func:`~repro.pgas.runtime.estimate_nbytes`."""
    heap = session.prepared.runtime.heap
    return sum(estimate_nbytes(obj) for _rank, _name, obj in
               heap.iter_segments())


class ResidentEntry:
    """One named resident index: its session, scheduler and LRU bookkeeping."""

    __slots__ = ("name", "session", "scheduler", "heap_bytes", "fingerprint",
                 "pinned", "last_used_seq", "registered_unix",
                 "requests_served")

    def __init__(self, name: str, session, scheduler, heap_bytes: int,
                 fingerprint: str, pinned: bool = False) -> None:
        self.name = name
        self.session = session
        self.scheduler = scheduler
        self.heap_bytes = heap_bytes
        self.fingerprint = fingerprint
        self.pinned = pinned
        self.last_used_seq = 0
        self.registered_unix = time.time()
        self.requests_served = 0

    def to_json_dict(self) -> dict:
        prepared = self.session.prepared
        return {
            "name": self.name,
            "pinned": self.pinned,
            "heap_bytes": self.heap_bytes,
            "fingerprint": self.fingerprint,
            "requests_served": self.requests_served,
            "backend": prepared.backend,
            "n_ranks": prepared.runtime.n_ranks,
            "n_targets": len(prepared.target_names),
            "n_fragments": prepared.n_fragments,
            "seed_index_keys": prepared.seed_index.n_keys,
        }


class IndexRegistry:
    """The name -> resident index mapping, with budgeted LRU eviction.

    Args:
        budget_bytes: total modelled heap bytes allowed across entries;
            ``None`` is unbudgeted (nothing is ever auto-evicted).
        metrics: optional registry receiving ``gateway_index_evictions_total``
            and resident-index/heap gauges.
    """

    def __init__(self, budget_bytes: int | None = None, metrics=None) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive (or None)")
        self.budget_bytes = budget_bytes
        self._metrics = metrics
        self._lock = threading.RLock()
        self._entries: dict[str, ResidentEntry] = {}
        self._seq = 0
        self.evictions = 0

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return sum(entry.heap_bytes for entry in self._entries.values())

    # -- lookup ---------------------------------------------------------------

    def get(self, name: str) -> ResidentEntry:
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise KeyError(
                    f"unknown index {name!r} (resident: "
                    f"{', '.join(self.names()) or 'none'})")
            return entry

    def touch(self, name: str) -> ResidentEntry:
        """Bump the entry's LRU recency (called once per routed request)."""
        with self._lock:
            entry = self.get(name)
            self._seq += 1
            entry.last_used_seq = self._seq
            return entry

    # -- registration and eviction --------------------------------------------

    def add(self, entry: ResidentEntry) -> list[str]:
        """Register an entry, LRU-evicting unpinned ones to fit the budget.

        Returns the names evicted to make room (empty for an unbudgeted or
        fitting add).  Raises :class:`RegistryBudgetError` when the entry
        alone exceeds the budget or only pinned entries remain to evict.
        """
        with self._lock:
            if entry.name in self._entries:
                raise ValueError(f"index {entry.name!r} is already registered")
            evicted: list[str] = []
            if self.budget_bytes is not None:
                if entry.heap_bytes > self.budget_bytes:
                    raise RegistryBudgetError(
                        f"index {entry.name!r} needs {entry.heap_bytes} "
                        f"modelled heap bytes, over the whole budget of "
                        f"{self.budget_bytes}")
                while (self.resident_bytes + entry.heap_bytes
                       > self.budget_bytes):
                    victim = min(
                        (e for e in self._entries.values() if not e.pinned),
                        key=lambda e: e.last_used_seq, default=None)
                    if victim is None:
                        raise RegistryBudgetError(
                            f"cannot fit index {entry.name!r} "
                            f"({entry.heap_bytes} bytes) in the remaining "
                            f"budget: every resident index is pinned")
                    evicted.append(victim.name)
                    self._evict_locked(victim)
            self._seq += 1
            entry.last_used_seq = self._seq
            self._entries[entry.name] = entry
            self._mirror_gauges_locked()
            return evicted

    def evict(self, name: str, force: bool = False) -> None:
        """Explicitly evict one index (closing its scheduler and session).

        Pinned entries (the default index) refuse unless *force*.
        """
        with self._lock:
            entry = self.get(name)
            if entry.pinned and not force:
                raise ValueError(
                    f"index {name!r} is pinned (it serves requests that "
                    "name no index) and cannot be evicted")
            self._evict_locked(entry)
            self._mirror_gauges_locked()

    def _evict_locked(self, entry: ResidentEntry) -> None:
        del self._entries[entry.name]
        self.evictions += 1
        if self._metrics is not None:
            self._metrics.counter("gateway_index_evictions_total").inc()
        # Scheduler first (fails its queued requests), then the session's
        # backend residency; both closes are idempotent.
        entry.scheduler.close()
        entry.session.close()

    def close_all(self) -> None:
        """Close every resident entry (pinned included); used on shutdown."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
            self._mirror_gauges_locked()
        for entry in entries:
            entry.scheduler.close()
            entry.session.close()

    # -- reporting ------------------------------------------------------------

    def _mirror_gauges_locked(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("gateway_resident_indices").set(
                len(self._entries))
            self._metrics.gauge("gateway_resident_heap_bytes").set(
                sum(e.heap_bytes for e in self._entries.values()))

    def stats_json(self) -> dict:
        with self._lock:
            return {
                "budget_bytes": self.budget_bytes,
                "resident_bytes": self.resident_bytes,
                "evictions": self.evictions,
                "indices": [self._entries[name].to_json_dict()
                            for name in sorted(self._entries)],
            }
