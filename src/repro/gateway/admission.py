"""Admission control and per-tenant fair dispatch for the gateway.

The paper's load-balancing analysis is about keeping every rank of one SPMD
machine busy; once many independent clients share one resident service the
same concern reappears a layer up -- one hot client must not starve the
rest, and overload must be an explicit, bounded signal rather than silent
queue growth.  This module provides both:

* a **bounded pending queue**: when ``max_pending`` requests are admitted
  but not yet completed, further admissions raise
  :class:`GatewayBusyError` immediately -- the server translates that into
  a ``BUSY`` wire reply, so rejection is always explicit, never a dropped
  connection or an unbounded backlog;
* **per-tenant fair dequeue**: each tenant has its own FIFO bucket and a
  single dispatcher thread grants one dispatch per tenant per round-robin
  pass (deficit round-robin with a quantum of one request), so tenants
  interleave even when one of them floods the queue.  Requests of a single
  tenant stay strictly FIFO, which is why a default single-tenant server
  behaves exactly like the pre-gateway stack.

Dispatch also respects a per-index in-flight bound (defaulting to that
index's scheduler ``max_batch_requests``): the scheduler still sees enough
concurrent requests to coalesce micro-batches, but queue *depth* builds in
the fair per-tenant buckets where the round-robin policy governs order,
not in the scheduler's own FIFO.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["AdmissionController", "GatewayBusyError", "DEFAULT_TENANT"]

DEFAULT_TENANT = "default"


class GatewayBusyError(RuntimeError):
    """The bounded pending queue is full: the request was *rejected*, not
    queued -- the caller should retry later (wire clients see ``BUSY``)."""


class _PendingRequest:
    """One admitted request: queued, then dispatched, then awaited.

    ``result()`` is a two-stage wait -- first for the dispatcher to hand
    the request to its index's scheduler, then on the scheduler future
    itself -- under one shared deadline.
    """

    __slots__ = ("tenant", "index", "_submit_fn", "_dispatched", "_inner",
                 "_error", "_callbacks", "_cb_lock", "_finished")

    def __init__(self, tenant: str, index: str, submit_fn) -> None:
        self.tenant = tenant
        self.index = index
        self._submit_fn = submit_fn
        self._dispatched = threading.Event()
        self._inner = None
        self._error: BaseException | None = None
        self._callbacks: list = []
        self._cb_lock = threading.Lock()
        self._finished = False

    def _dispatch(self) -> None:
        try:
            self._inner = self._submit_fn()
        except BaseException as exc:  # noqa: BLE001 - delivered to the waiter
            self._error = exc
        finally:
            self._dispatched.set()
        if self._error is not None:
            self._finish()
        else:
            # Chain completion through the scheduler future so this pending
            # handle reports done exactly when result() stops blocking.
            chain = getattr(self._inner, "add_done_callback", None)
            if chain is not None:
                chain(lambda _inner: self._finish())
            else:
                self._finish()

    def _fail(self, exc: BaseException) -> None:
        self._error = exc
        self._dispatched.set()
        self._finish()

    def _finish(self) -> None:
        with self._cb_lock:
            self._finished = True
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            try:
                fn(self)
            except Exception:  # noqa: BLE001 - observers cannot fail dispatch
                pass

    def add_done_callback(self, fn) -> None:
        """Call ``fn(self)`` once ``result()`` would no longer block --
        dispatch failed, the request was rejected, or the scheduler future
        resolved.  Fires immediately when already finished."""
        with self._cb_lock:
            if not self._finished:
                self._callbacks.append(fn)
                return
        fn(self)

    def result(self, timeout: float | None = None):
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        if not self._dispatched.wait(timeout):
            raise TimeoutError(
                f"request for tenant {self.tenant!r} on index {self.index!r} "
                f"was not dispatched within {timeout}s")
        if self._error is not None:
            raise self._error
        remaining = (None if deadline is None
                     else max(0.0, deadline - time.monotonic()))
        return self._inner.result(remaining)


class AdmissionController:
    """Bounded, tenant-fair admission in front of the per-index schedulers.

    Args:
        max_pending: admitted-but-uncompleted request bound; ``None`` is
            unbounded (the pass-through default), ``0`` rejects everything
            (useful for deterministic ``BUSY`` tests).
        metrics: optional :class:`~repro.obs.registry.MetricsRegistry`
            receiving ``gateway_admitted_total`` / ``gateway_rejected_total``
            counters (labelled by tenant) and a ``gateway_pending`` gauge.
        default_inflight_limit: per-index concurrent-dispatch bound used for
            indices without an explicit :meth:`set_inflight_limit`.
    """

    def __init__(self, max_pending: int | None = None, metrics=None,
                 default_inflight_limit: int = 8) -> None:
        if max_pending is not None and max_pending < 0:
            raise ValueError("max_pending must be >= 0 (or None: unbounded)")
        self.max_pending = max_pending
        self._metrics = metrics
        self._default_inflight_limit = max(1, default_inflight_limit)
        self._cv = threading.Condition()
        self._buckets: dict[str, deque[_PendingRequest]] = {}
        #: Tenant round-robin order (append order of first admission).
        self._rotation: list[str] = []
        self._cursor = 0
        self._pending = 0   # admitted, not yet completed
        self._queued = 0    # admitted, not yet dispatched
        self._inflight: dict[str, int] = {}
        self._limits: dict[str, int] = {}
        self.admitted = 0
        self.rejected = 0
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-gateway-admission",
            daemon=True)
        self._dispatcher.start()

    # -- index bookkeeping ----------------------------------------------------

    def set_inflight_limit(self, index: str, limit: int) -> None:
        with self._cv:
            self._limits[index] = max(1, int(limit))
            self._cv.notify_all()

    def forget_index(self, index: str) -> None:
        """Drop the per-index dispatch bookkeeping of an evicted index."""
        with self._cv:
            self._limits.pop(index, None)
            self._inflight.pop(index, None)
            self._cv.notify_all()

    # -- admission ------------------------------------------------------------

    def admit(self, tenant: str, index: str, submit_fn) -> _PendingRequest:
        """Admit one request, or raise :class:`GatewayBusyError`.

        *submit_fn* is called later, on the dispatcher thread, when the
        tenant round-robin grants this request its turn; it must return a
        waitable future (``.result(timeout)``).  The caller must invoke
        :meth:`complete` exactly once after waiting (success or failure),
        so the pending bound tracks genuinely outstanding work.
        """
        with self._cv:
            if self._closed:
                raise RuntimeError("admission controller is closed")
            if (self.max_pending is not None
                    and self._pending >= self.max_pending):
                self.rejected += 1
                if self._metrics is not None:
                    self._metrics.counter("gateway_rejected_total",
                                          tenant=tenant).inc()
                raise GatewayBusyError(
                    f"gateway pending queue is full ({self._pending} "
                    f">= max_pending={self.max_pending}); retry later")
            item = _PendingRequest(tenant, index, submit_fn)
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = deque()
                self._rotation.append(tenant)
            bucket.append(item)
            self._pending += 1
            self._queued += 1
            self.admitted += 1
            if self._metrics is not None:
                self._metrics.counter("gateway_admitted_total",
                                      tenant=tenant).inc()
                self._metrics.gauge("gateway_pending").set(self._pending)
            self._cv.notify_all()
        return item

    def complete(self, index: str) -> None:
        """Mark one admitted request finished (frees a pending slot and the
        index's in-flight slot)."""
        with self._cv:
            self._pending = max(0, self._pending - 1)
            if index in self._inflight:
                self._inflight[index] = max(0, self._inflight[index] - 1)
            if self._metrics is not None:
                self._metrics.gauge("gateway_pending").set(self._pending)
            self._cv.notify_all()

    # -- fair dispatch --------------------------------------------------------

    def _select_locked(self) -> _PendingRequest | None:
        """The next dispatchable request in tenant round-robin order.

        One full pass over the rotation starting after the last grant; a
        tenant is skipped when its bucket is empty or its head request
        targets an index at its in-flight limit.
        """
        n = len(self._rotation)
        for step in range(n):
            tenant = self._rotation[(self._cursor + step) % n]
            bucket = self._buckets.get(tenant)
            if not bucket:
                continue
            item = bucket[0]
            limit = self._limits.get(item.index,
                                     self._default_inflight_limit)
            if self._inflight.get(item.index, 0) >= limit:
                continue
            bucket.popleft()
            self._cursor = (self._cursor + step + 1) % n
            self._inflight[item.index] = self._inflight.get(item.index, 0) + 1
            self._queued -= 1
            return item
        return None

    def _dispatch_loop(self) -> None:
        while True:
            with self._cv:
                item = None
                while not self._closed:
                    item = self._select_locked()
                    if item is not None:
                        break
                    self._cv.wait()
                if item is None and self._closed:
                    leftovers = [queued for bucket in self._buckets.values()
                                 for queued in bucket]
                    for bucket in self._buckets.values():
                        bucket.clear()
                    self._queued = 0
                    for left in leftovers:
                        left._fail(RuntimeError(
                            "gateway closed before the request was "
                            "dispatched"))
                    return
            # Submission runs outside the lock: scheduler.submit normalizes
            # the reads, which must not serialize against admissions.
            item._dispatch()

    # -- lifecycle and reporting ----------------------------------------------

    def close(self) -> None:
        """Stop the dispatcher; queued-but-undispatched requests fail."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        self._dispatcher.join(timeout=10.0)

    def stats_dict(self) -> dict:
        with self._cv:
            return {
                "max_pending": self.max_pending,
                "pending": self._pending,
                "queued": self._queued,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "inflight_by_index": dict(sorted(
                    (k, v) for k, v in self._inflight.items() if v)),
                "queued_by_tenant": dict(sorted(
                    (tenant, len(bucket))
                    for tenant, bucket in self._buckets.items() if bucket)),
            }
