"""TTL'd exact-duplicate result cache for the gateway.

The paper's central trick is software caches absorbing repeated remote
lookups inside the PGAS runtime; this module lifts the same idea one layer
up, into the serving stack.  Repeated *identical* requests against a
resident index -- same index, same workload, same aligner configuration,
same reads -- are the service-level analogue of repeated k-mer lookups, and
an exact-match cache in front of the scheduler absorbs them without ever
touching the simulated machine.

The key is a SHA-256 digest over ``(index name, workload, config
fingerprint, canonical read payload)``; because the served output is a pure
function of exactly those four inputs (pinned by the byte-identity tests),
a hit can be replayed verbatim.  Entries expire after a TTL and the table
is LRU-bounded, so a cold or adversarial key stream degrades to plain
pass-through, never to unbounded memory.

Counters (hits / misses / stores / capacity evictions / TTL expirations /
occupancy) are mirrored into the service's
:class:`~repro.obs.registry.MetricsRegistry` under ``gateway_cache_*`` and
surfaced through the ``STATS`` and ``METRICS`` wire verbs.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict

__all__ = ["ResultCache"]


class ResultCache:
    """Exact-duplicate response cache with TTL expiry and LRU capacity.

    Args:
        ttl_s: seconds an entry stays servable; ``0`` disables the cache
            entirely (every lookup is a pass-through miss, nothing stored).
        max_entries: LRU capacity bound; the least-recently-used entry is
            evicted when a store would exceed it.
        metrics: optional :class:`~repro.obs.registry.MetricsRegistry`;
            hit/miss/store/eviction counters and an occupancy gauge are
            mirrored there when present.
        clock: monotonic time source; injectable so tests can expire
            entries deterministically without sleeping.
    """

    def __init__(self, ttl_s: float = 0.0, max_entries: int = 1024,
                 metrics=None, clock=time.monotonic) -> None:
        if ttl_s < 0:
            raise ValueError("ttl_s must be >= 0")
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.ttl_s = ttl_s
        self.max_entries = max_entries
        self._metrics = metrics
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (expires_at, text); ordered by recency (last = most recent).
        self._entries: OrderedDict[str, tuple[float, str]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Capacity (LRU) evictions, distinct from TTL expirations.
        self.evictions = 0
        self.expirations = 0

    @property
    def enabled(self) -> bool:
        """Whether lookups can ever hit (``ttl_s > 0`` and capacity > 0)."""
        return self.ttl_s > 0 and self.max_entries > 0

    @property
    def occupancy(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- the cache key --------------------------------------------------------

    @staticmethod
    def request_key(index: str, workload: str, fingerprint: str,
                    payload) -> str:
        """Digest of the four inputs the served output is a function of.

        *payload* is the canonical read serialization (bytes or str); the
        components are length-delimited by NUL separators so no two
        distinct tuples can collide by concatenation.
        """
        if isinstance(payload, str):
            payload = payload.encode("utf-8")
        digest = hashlib.sha256()
        for part in (index, workload, fingerprint):
            digest.update(str(part).encode("utf-8"))
            digest.update(b"\x00")
        digest.update(payload)
        return digest.hexdigest()

    # -- metrics mirroring ----------------------------------------------------

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(f"gateway_cache_{name}_total").inc()

    def _mirror_occupancy_locked(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("gateway_cache_occupancy").set(
                len(self._entries))

    # -- lookups and stores ---------------------------------------------------

    def get(self, key: str) -> str | None:
        """The cached response text, or ``None`` (miss / expired / disabled).

        A disabled cache returns ``None`` without counting a miss -- the
        counters describe cache behaviour, not pass-through traffic.
        """
        if not self.enabled:
            return None
        with self._lock:
            now = self._clock()
            entry = self._entries.get(key)
            if entry is not None and entry[0] <= now:
                del self._entries[key]
                self.expirations += 1
                self._count("expirations")
                entry = None
            if entry is None:
                self.misses += 1
                self._count("misses")
                self._mirror_occupancy_locked()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._count("hits")
            return entry[1]

    def put(self, key: str, text: str) -> None:
        """Store a response; evicts LRU entries past capacity (no-op when
        disabled)."""
        if not self.enabled:
            return
        with self._lock:
            now = self._clock()
            # Sweep expired entries first so they never count as LRU
            # victims -- an expiration and a capacity eviction are
            # different signals.
            expired = [k for k, (deadline, _) in self._entries.items()
                       if deadline <= now]
            for stale in expired:
                del self._entries[stale]
                self.expirations += 1
                self._count("expirations")
            self._entries[key] = (now + self.ttl_s, text)
            self._entries.move_to_end(key)
            self.stores += 1
            self._count("stores")
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._count("evictions")
            self._mirror_occupancy_locked()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._mirror_occupancy_locked()

    # -- reporting ------------------------------------------------------------

    def stats_dict(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "enabled": self.enabled,
                "ttl_s": self.ttl_s,
                "max_entries": self.max_entries,
                "occupancy": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }
