"""A thread-safe metrics registry: counters, gauges and latency histograms.

Every layer of the serving stack -- scheduler, session, execution backends,
socket server -- records into one :class:`MetricsRegistry` so a single
snapshot describes the whole service (the ``METRICS`` wire verb serves it;
see :mod:`repro.service.server`).  The registry is *passive* observability:
it measures host wall-clock and event counts only and never touches the
modelled virtual clocks or :class:`~repro.pgas.cost_model.CommStats`, so
enabling it cannot perturb any byte-identity guarantee.

Three instrument kinds, all label-aware (``registry.counter("server_requests_total",
verb="ALIGN")`` and ``verb="COUNT"`` are distinct time series of one metric):

:class:`Counter`
    A monotonically increasing total (requests served, bytes moved).
    Increments accept floats so accumulated seconds work too.

:class:`Gauge`
    A value that goes up and down (active connections, queue depth).

:class:`Histogram`
    Fixed cumulative buckets plus exact sum/count/min/max.  p50/p95/p99 are
    derived from the buckets by linear interpolation -- the memory cost is
    the bucket vector, never the sample count, so a long-lived service stays
    bounded.  Default bounds cover 100 microseconds to 5 minutes of latency.

Exposition formats:

* :meth:`MetricsRegistry.snapshot` -- a deep-copied JSON document; taking it
  mid-flight never raises and never tears (one lock guards every mutation).
* :meth:`MetricsRegistry.to_prometheus` -- Prometheus text exposition
  (``name{label="value"} 12``, ``_bucket``/``_sum``/``_count`` series for
  histograms) for scrapers and humans with ``curl``.
"""

from __future__ import annotations

import math
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_LATENCY_BUCKETS", "percentile"]

#: Histogram bucket upper bounds (seconds) used for every latency histogram:
#: roughly logarithmic from 100 microseconds to 5 minutes, closed by +Inf.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


def percentile(samples, fraction: float) -> float:
    """Nearest-rank percentile of raw samples (0.0 for an empty list).

    The exact-sample twin of :meth:`Histogram.quantile`, shared by the load
    generator and the service statistics.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _label_suffix(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


class _Instrument:
    """Shared identity plumbing of every metric kind."""

    kind = "untyped"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...],
                 lock: threading.RLock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock

    @property
    def series(self) -> str:
        """The fully qualified series name, e.g. ``requests{verb="ALIGN"}``."""
        return self.name + _label_suffix(self.labels)


class Counter(_Instrument):
    """A monotonically increasing total (int or accumulated seconds)."""

    kind = "counter"

    def __init__(self, name, labels, lock) -> None:
        super().__init__(name, labels, lock)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.series} cannot decrease")
        with self._lock:
            self.value += amount


class Gauge(_Instrument):
    """A value that can go up and down (active connections, queue depth)."""

    kind = "gauge"

    def __init__(self, name, labels, lock) -> None:
        super().__init__(name, labels, lock)
        self.value: float = 0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount


class Histogram(_Instrument):
    """Fixed cumulative buckets with exact sum/count/min/max.

    ``bounds`` are the finite bucket upper edges; an implicit +Inf bucket
    closes the range.  ``quantile`` interpolates linearly inside the bucket
    containing the requested rank, so p50/p95/p99 are derivable without
    keeping samples.
    """

    kind = "histogram"

    def __init__(self, name, labels, lock,
                 bounds=DEFAULT_LATENCY_BUCKETS) -> None:
        super().__init__(name, labels, lock)
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        # counts[i] is the number of observations <= bounds[i]; the final
        # slot is the +Inf bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.counts[index] += 1
                    return
            self.counts[-1] += 1

    def quantile(self, fraction: float) -> float:
        """Bucket-interpolated quantile (0.0 when nothing was observed)."""
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = fraction * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self.counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= rank:
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    if index >= len(self.bounds):
                        # +Inf bucket: the exact max is the honest answer.
                        return self.max
                    upper = self.bounds[index]
                    position = (rank - cumulative) / bucket_count
                    return lower + (upper - lower) * min(1.0, max(0.0, position))
                cumulative += bucket_count
            return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """One process-wide, thread-safe home for every instrument.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    with a given ``(name, labels)`` pair creates the series, later calls
    return the same object, so call sites never coordinate registration.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    @staticmethod
    def _key(name: str, labels: dict[str, str]) -> tuple[str, tuple]:
        normalized = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        return name + _label_suffix(normalized), normalized

    def counter(self, name: str, **labels: str) -> Counter:
        key, normalized = self._key(name, labels)
        with self._lock:
            if key not in self._counters:
                self._counters[key] = Counter(name, normalized, self._lock)
            return self._counters[key]

    def gauge(self, name: str, **labels: str) -> Gauge:
        key, normalized = self._key(name, labels)
        with self._lock:
            if key not in self._gauges:
                self._gauges[key] = Gauge(name, normalized, self._lock)
            return self._gauges[key]

    def histogram(self, name: str, bounds=DEFAULT_LATENCY_BUCKETS,
                  **labels: str) -> Histogram:
        key, normalized = self._key(name, labels)
        with self._lock:
            if key not in self._histograms:
                self._histograms[key] = Histogram(name, normalized, self._lock,
                                                  bounds=bounds)
            return self._histograms[key]

    # -- exposition -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A deep-copied JSON document of every series; never tears.

        The single registry lock covers the whole walk, so a snapshot taken
        while other threads increment is internally consistent -- a
        histogram's bucket counts always sum to its ``count``.
        """
        with self._lock:
            counters = {series: counter.value
                        for series, counter in sorted(self._counters.items())}
            gauges = {series: gauge.value
                      for series, gauge in sorted(self._gauges.items())}
            histograms = {}
            for series, hist in sorted(self._histograms.items()):
                histograms[series] = {
                    "count": hist.count,
                    "sum": hist.sum,
                    "mean": hist.mean,
                    "min": hist.min if hist.count else 0.0,
                    "max": hist.max if hist.count else 0.0,
                    "p50": hist.quantile(0.50),
                    "p95": hist.quantile(0.95),
                    "p99": hist.quantile(0.99),
                    "buckets": [[bound, count] for bound, count
                                in zip(hist.bounds, hist.counts)]
                               + [["+Inf", hist.counts[-1]]],
                }
            return {"counters": counters, "gauges": gauges,
                    "histograms": histograms}

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every series (sorted, stable)."""
        with self._lock:
            lines: list[str] = []
            seen_types: set[str] = set()

            def type_line(name: str, kind: str) -> None:
                if name not in seen_types:
                    seen_types.add(name)
                    lines.append(f"# TYPE {name} {kind}")

            for _series, counter in sorted(self._counters.items()):
                type_line(counter.name, "counter")
                lines.append(f"{counter.series} {counter.value}")
            for _series, gauge in sorted(self._gauges.items()):
                type_line(gauge.name, "gauge")
                lines.append(f"{gauge.series} {gauge.value}")
            for _series, hist in sorted(self._histograms.items()):
                type_line(hist.name, "histogram")
                base = [f'{k}="{v}"' for k, v in hist.labels]
                cumulative = 0
                for bound, count in zip(hist.bounds, hist.counts):
                    cumulative += count
                    rendered = ",".join(base + [f'le="{float(bound)!r}"'])
                    lines.append(f"{hist.name}_bucket{{{rendered}}} {cumulative}")
                rendered = ",".join(base + ['le="+Inf"'])
                lines.append(f"{hist.name}_bucket{{{rendered}}} {hist.count}")
                suffix = _label_suffix(hist.labels)
                lines.append(f"{hist.name}_sum{suffix} {hist.sum}")
                lines.append(f"{hist.name}_count{suffix} {hist.count}")
            return "\n".join(lines) + ("\n" if lines else "")
