"""Measured-load generation against a running alignment server.

:class:`LoadGenerator` drives the socket protocol of
:mod:`repro.service.server` with an *open-loop* request schedule: a target
QPS fixes each request's dispatch time up front (``i / qps`` seconds after
start), a bounded worker pool issues them, and every request's wall-clock
latency is recorded from its scheduled dispatch time to its response --
so server-side queueing genuinely shows up as latency instead of silently
throttling the offered load.

The mixed workload (align / count / screen / paired, weights configurable)
and the reads of every request are drawn from a seeded RNG, so a run's
*request counts per workload are deterministic* given ``(seed, n_requests,
workloads)`` -- the property ``benchmarks/test_load_server.py`` pins in the
unmasked rows of its results file, while the measured latencies land in
volatile-masked rows.

After the last response the generator scrapes the server's ``METRICS``
document, so one :class:`LoadReport` carries both sides: client-observed
p50/p95/p99 and throughput, and server-reported batch occupancy and request
counters.  ``scripts/loadgen.py`` is the CLI wrapper.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.obs.registry import percentile

__all__ = ["LoadGenerator", "LoadOutcome", "LoadReport"]

DEFAULT_WORKLOADS = ("align", "count", "screen", "paired")


@dataclass
class LoadOutcome:
    """One issued request, client side."""

    index: int
    workload: str
    n_reads: int
    #: Seconds from *scheduled* dispatch to response (open-loop latency:
    #: worker-pool queueing counts against the server, as it should).
    wall_latency: float
    ok: bool
    error: str = ""
    #: The tenant the request was attributed to ("" for the default).
    tenant: str = ""
    #: True when the server rejected the request with an explicit BUSY
    #: (admission control working as designed -- reported separately from
    #: genuine errors).
    busy: bool = False


@dataclass
class LoadReport:
    """Everything one load-generation run measured."""

    target_qps: float
    concurrency: int
    reads_per_request: int
    seed: int
    #: The run's in-flight cap (None: bounded only by ``concurrency``).
    max_inflight: int | None = None
    #: Most requests ever simultaneously in flight (tracked whether or not
    #: a cap was set -- the observable the cap is asserted against).
    peak_inflight: int = 0
    outcomes: list[LoadOutcome] = field(default_factory=list)
    #: Start-to-last-response wall seconds.
    duration_s: float = 0.0
    #: The server's METRICS JSON document, scraped after the run (None when
    #: the scrape failed).
    server_metrics: dict | None = None

    @property
    def n_requests(self) -> int:
        return len(self.outcomes)

    @property
    def n_errors(self) -> int:
        """Genuinely failed requests; explicit BUSY rejections are counted
        separately in :attr:`n_busy`."""
        return sum(1 for outcome in self.outcomes
                   if not outcome.ok and not outcome.busy)

    @property
    def n_busy(self) -> int:
        """Requests the server rejected with an explicit ``BUSY``."""
        return sum(1 for outcome in self.outcomes if outcome.busy)

    @property
    def achieved_qps(self) -> float:
        ok = sum(1 for outcome in self.outcomes if outcome.ok)
        return ok / self.duration_s if self.duration_s > 0 else 0.0

    def counts_by_workload(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.workload] = counts.get(outcome.workload, 0) + 1
        return dict(sorted(counts.items()))

    def counts_by_tenant(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.tenant:
                counts[outcome.tenant] = counts.get(outcome.tenant, 0) + 1
        return dict(sorted(counts.items()))

    def latencies(self, workload: str | None = None) -> list[float]:
        return [outcome.wall_latency for outcome in self.outcomes
                if outcome.ok and (workload is None
                                   or outcome.workload == workload)]

    def latency_percentiles(self, workload: str | None = None) -> dict:
        samples = self.latencies(workload)
        return {"p50": percentile(samples, 0.50),
                "p95": percentile(samples, 0.95),
                "p99": percentile(samples, 0.99),
                "mean": sum(samples) / len(samples) if samples else 0.0}

    @property
    def batch_occupancy(self) -> float:
        """Server-reported mean requests per micro-batch (0.0 if unscraped)."""
        if not self.server_metrics:
            return 0.0
        service = self.server_metrics.get("service", {})
        return float(service.get("batch_occupancy", 0.0))

    def to_json_dict(self) -> dict:
        return {
            "target_qps": self.target_qps,
            "concurrency": self.concurrency,
            "max_inflight": self.max_inflight,
            "peak_inflight": self.peak_inflight,
            "reads_per_request": self.reads_per_request,
            "seed": self.seed,
            "n_requests": self.n_requests,
            "n_errors": self.n_errors,
            "n_busy": self.n_busy,
            "duration_s": self.duration_s,
            "achieved_qps": self.achieved_qps,
            "counts_by_workload": self.counts_by_workload(),
            "counts_by_tenant": self.counts_by_tenant(),
            "latency": self.latency_percentiles(),
            "latency_by_workload": {
                workload: self.latency_percentiles(workload)
                for workload in self.counts_by_workload()},
            "batch_occupancy": self.batch_occupancy,
        }


class LoadGenerator:
    """Open-loop mixed-workload traffic against one alignment server.

    Args:
        host / port: the server address (``meraligner serve`` or
            :func:`repro.api.serve`).
        reads: the single-end read pool requests draw from (any
            ``ReadRecord``/``FastqRecord`` list).
        paired_reads: interleaved R1/R2 pool for the ``paired`` workload;
            when ``None``, ``paired`` is dropped from the mix.
        qps: target request rate (the open-loop schedule).
        concurrency: worker threads issuing requests (each holds at most one
            in-flight request).
        max_inflight: optional cap on simultaneously in-flight requests,
            tighter than *concurrency*: a worker whose dispatch time has
            come still waits for a slot before sending.  The cap protects an
            admission-bounded server from a wall of BUSY rejections while
            keeping the open-loop schedule (the wait counts against
            latency, exactly like server-side queueing).  The observed
            :attr:`LoadReport.peak_inflight` is recorded either way.
        n_requests: total requests to issue; alternatively pass
            ``duration_s`` and the count becomes ``ceil(duration_s * qps)``.
        reads_per_request: reads drawn per request (pairs for ``paired``:
            the request carries ``2 *`` this many records).
        workloads: the workload mix, uniform over the given names.
        seed: RNG seed fixing the workload/read draw of every request.
        timeout: per-request socket timeout, seconds.
        tenants: optional tenant names; each request is attributed to one,
            drawn uniformly from a separate RNG derived from ``seed`` --
            enabling tenants never changes which requests are issued, and
            ``None`` keeps requests untenanted.
        route_index: optional named resident index every request routes to
            (gateway-backed servers only).
        connect_retries: per-worker client connect retries (exponential
            backoff + jitter; ``0`` fails immediately).
    """

    def __init__(self, host: str, port: int, reads, *, paired_reads=None,
                 qps: float = 20.0, concurrency: int = 4,
                 max_inflight: int | None = None,
                 n_requests: int | None = None, duration_s: float | None = None,
                 reads_per_request: int = 8,
                 workloads=DEFAULT_WORKLOADS, seed: int = 0,
                 timeout: float = 300.0, tenants=None,
                 route_index: str | None = None,
                 connect_retries: int = 0) -> None:
        if qps <= 0:
            raise ValueError("qps must be positive")
        if concurrency <= 0:
            raise ValueError("concurrency must be positive")
        if max_inflight is not None and max_inflight <= 0:
            raise ValueError("max_inflight must be positive (or None)")
        if (n_requests is None) == (duration_s is None):
            raise ValueError("pass exactly one of n_requests / duration_s")
        if n_requests is None:
            n_requests = max(1, int(duration_s * qps + 0.999999))
        if n_requests <= 0:
            raise ValueError("n_requests must be positive")
        self.host = host
        self.port = port
        self.reads = list(reads)
        self.paired_reads = (list(paired_reads) if paired_reads is not None
                             else None)
        if not self.reads:
            raise ValueError("the read pool is empty")
        if self.paired_reads is not None and len(self.paired_reads) % 2 != 0:
            raise ValueError("paired_reads must be interleaved R1/R2 "
                             "(even count)")
        self.qps = qps
        self.concurrency = concurrency
        self.max_inflight = max_inflight
        self.n_requests = n_requests
        self.reads_per_request = reads_per_request
        self.workloads = tuple(w for w in workloads
                               if w != "paired" or self.paired_reads)
        if not self.workloads:
            raise ValueError("no runnable workloads in the mix")
        self.seed = seed
        self.timeout = timeout
        self.tenants = tuple(tenants) if tenants else None
        self.route_index = route_index
        self.connect_retries = connect_retries

    # -- deterministic request plan -------------------------------------------

    def _plan(self) -> list[tuple[int, str, list, str]]:
        """The full request schedule: ``(index, workload, reads, tenant)``.

        Drawn from one seeded RNG up front, so the per-workload request
        counts -- and each request's reads -- depend only on the
        constructor arguments, never on timing.  Tenants come from a
        *separate* RNG derived from the same seed, so enabling tenants
        never perturbs the workload/read draws: a tenanted run issues
        exactly the requests its untenanted twin would.
        """
        rng = random.Random(self.seed)
        tenant_rng = random.Random(f"tenants:{self.seed}")
        plan = []
        for index in range(self.n_requests):
            workload = self.workloads[rng.randrange(len(self.workloads))]
            if workload == "paired":
                n_pairs = len(self.paired_reads) // 2
                want = min(self.reads_per_request, n_pairs)
                start = rng.randrange(n_pairs - want + 1)
                records = self.paired_reads[2 * start:2 * (start + want)]
            else:
                want = min(self.reads_per_request, len(self.reads))
                start = rng.randrange(len(self.reads) - want + 1)
                records = self.reads[start:start + want]
            tenant = (self.tenants[tenant_rng.randrange(len(self.tenants))]
                      if self.tenants else "")
            plan.append((index, workload, records, tenant))
        return plan

    # -- execution ------------------------------------------------------------

    def run(self) -> LoadReport:
        from repro.service.client import (ServiceBusyError, ServiceError,
                                          SocketAlignmentClient)

        plan = self._plan()
        report = LoadReport(target_qps=self.qps, concurrency=self.concurrency,
                            reads_per_request=self.reads_per_request,
                            seed=self.seed, max_inflight=self.max_inflight)
        outcomes: list[LoadOutcome | None] = [None] * len(plan)
        next_index = [0]
        lock = threading.Lock()
        inflight = [0]
        peak_inflight = [0]
        slot_free = threading.Condition(lock)
        start = time.perf_counter()

        def acquire_slot() -> None:
            with slot_free:
                while (self.max_inflight is not None
                       and inflight[0] >= self.max_inflight):
                    slot_free.wait()
                inflight[0] += 1
                peak_inflight[0] = max(peak_inflight[0], inflight[0])

        def release_slot() -> None:
            with slot_free:
                inflight[0] -= 1
                slot_free.notify()

        def worker() -> None:
            client = SocketAlignmentClient(
                host=self.host, port=self.port, timeout=self.timeout,
                connect_retries=self.connect_retries)
            while True:
                with lock:
                    position = next_index[0]
                    if position >= len(plan):
                        return
                    next_index[0] += 1
                index, workload, records, tenant = plan[position]
                dispatch_at = start + index / self.qps
                delay = dispatch_at - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                # Waiting for a slot happens *after* the scheduled dispatch
                # time, so a saturating cap shows up as latency -- the
                # open-loop contract.
                acquire_slot()
                try:
                    client.workload_text(workload, records,
                                         index=self.route_index,
                                         tenant=tenant or None)
                    outcomes[index] = LoadOutcome(
                        index=index, workload=workload, n_reads=len(records),
                        wall_latency=time.perf_counter() - dispatch_at,
                        ok=True, tenant=tenant)
                except ServiceBusyError as exc:
                    outcomes[index] = LoadOutcome(
                        index=index, workload=workload, n_reads=len(records),
                        wall_latency=time.perf_counter() - dispatch_at,
                        ok=False, error=f"{type(exc).__name__}: {exc}",
                        tenant=tenant, busy=True)
                except (OSError, ServiceError, ValueError) as exc:
                    outcomes[index] = LoadOutcome(
                        index=index, workload=workload, n_reads=len(records),
                        wall_latency=time.perf_counter() - dispatch_at,
                        ok=False, error=f"{type(exc).__name__}: {exc}",
                        tenant=tenant)
                finally:
                    release_slot()

        threads = [threading.Thread(target=worker, name=f"loadgen-{i}",
                                    daemon=True)
                   for i in range(self.concurrency)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report.duration_s = time.perf_counter() - start
        report.peak_inflight = peak_inflight[0]
        report.outcomes = [outcome for outcome in outcomes
                           if outcome is not None]

        client = SocketAlignmentClient(host=self.host, port=self.port,
                                       timeout=self.timeout)
        try:
            report.server_metrics = client.metrics()
        except (OSError, ServiceError, ValueError):
            report.server_metrics = None
        return report
