"""Observability: the unified metrics registry, trace spans and load-gen.

The serving stack records into one :class:`MetricsRegistry`
(:mod:`repro.obs.registry`), optionally traces every request as a JSONL
:class:`TraceSpan` (:mod:`repro.obs.tracing`), and is measured under real
traffic by :class:`LoadGenerator` (:mod:`repro.obs.loadgen`).  Everything
here is *passive*: host wall-clock and event counts only, never the modelled
virtual clocks -- enabling observability cannot change any output byte.

See ``docs/observability.md`` for the metric inventory and usage.
"""

from repro.obs.registry import (Counter, DEFAULT_LATENCY_BUCKETS, Gauge,
                                Histogram, MetricsRegistry, percentile)
from repro.obs.rss import current_rss_kib, max_rss_kib
from repro.obs.tracing import TraceLog, TraceSpan

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "percentile",
    "TraceLog",
    "TraceSpan",
    "current_rss_kib",
    "max_rss_kib",
]
