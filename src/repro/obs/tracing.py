"""Per-request trace spans of the serving stack.

The :class:`~repro.service.scheduler.RequestScheduler` emits one
:class:`TraceSpan` per served request, marking the request's path through the
micro-batching pipeline -- **enqueue** (submission), **batch-formed** (the
collector closed the batch), **executed** (the SPMD invocation returned) and
**demuxed** (the request's own result was resolved) -- in *both* time
domains:

* wall time: ``time.perf_counter()`` marks relative to the process (the
  ``wall_*`` fields), plus the derived ``queue_wait_s`` / ``execute_s`` /
  ``demux_s`` / ``wall_latency_s`` durations;
* virtual time: the runtime's modelled clock (``virtual_*`` fields) --
  queueing is host-side so enqueue and batch-formed share the batch's
  starting virtual timestamp, and the batch's modelled elapsed time is the
  request's ``modeled_latency_s``.

Spans are appended as JSON Lines by a :class:`TraceLog` (one JSON object per
line, append-only, thread-safe), enabled with ``meraligner serve --trace-log
PATH`` or ``RequestScheduler(trace_log=...)``.  Tracing is passive: it reads
clocks, it never charges them.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = ["TraceSpan", "TraceLog"]


@dataclass
class TraceSpan:
    """One request's timestamps through the scheduler, in both time domains."""

    request_id: int
    workload: str
    n_reads: int
    batch_id: int
    batch_requests: int
    #: Unix timestamp (``time.time()``) at which the span was emitted.
    emitted_unix: float
    #: ``time.perf_counter()`` marks (process-relative wall clock).
    wall_enqueued: float
    wall_batch_formed: float
    wall_executed: float
    wall_demuxed: float
    #: Modelled virtual-clock timestamps of the shared runtime (seconds).
    #: Enqueue/batch-formed share the pre-invocation clock: queueing is
    #: host-side and charges nothing.
    virtual_enqueued: float
    virtual_executed: float
    #: Modelled elapsed seconds of the serving batch (the request's modelled
    #: latency under micro-batching).
    modeled_latency_s: float

    @property
    def queue_wait_s(self) -> float:
        return self.wall_batch_formed - self.wall_enqueued

    @property
    def execute_s(self) -> float:
        return self.wall_executed - self.wall_batch_formed

    @property
    def demux_s(self) -> float:
        return self.wall_demuxed - self.wall_executed

    @property
    def wall_latency_s(self) -> float:
        return self.wall_demuxed - self.wall_enqueued

    def to_json_dict(self) -> dict:
        data = asdict(self)
        data["queue_wait_s"] = self.queue_wait_s
        data["execute_s"] = self.execute_s
        data["demux_s"] = self.demux_s
        data["wall_latency_s"] = self.wall_latency_s
        return data


class TraceLog:
    """Thread-safe append-only JSONL sink for trace spans.

    One JSON object per line; the file handle is opened lazily on the first
    span and flushed per append, so ``tail -f`` on the log follows live
    traffic.  ``close()`` is idempotent and a closed log drops spans silently
    (shutdown races must not kill the scheduler worker).
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = None
        self._closed = False

    def append(self, span: TraceSpan) -> None:
        line = json.dumps(span.to_json_dict(), sort_keys=True)
        with self._lock:
            if self._closed:
                return
            if self._handle is None:
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "TraceLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def now_unix() -> float:
    """The wall-clock Unix timestamp (isolated for testability)."""
    return time.time()
