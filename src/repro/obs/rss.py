"""Process memory watermarks for flat-RSS assertions and metrics.

The streaming subsystem's acceptance test is *memory that does not grow
with input size*.  ``resource.getrusage`` exposes the process's peak RSS
(``ru_maxrss``) -- a high watermark the kernel maintains for free -- which
the streaming tests, the CI smoke driver and the METRICS document all read
through :func:`max_rss_kib`.

``ru_maxrss`` units differ by platform (kibibytes on Linux, bytes on
macOS); :func:`max_rss_kib` normalises to KiB so assertions and metrics are
portable.  On platforms without the :mod:`resource` module the helpers
return 0, and callers treat 0 as "unknown" rather than failing.
"""

from __future__ import annotations

import sys

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None

__all__ = ["max_rss_kib", "current_rss_kib"]


def max_rss_kib() -> int:
    """Peak resident-set size of this process in KiB (0 when unknown)."""
    if resource is None:
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        return int(peak // 1024)
    return int(peak)


def current_rss_kib() -> int:
    """Current resident-set size in KiB, from /proc (0 when unavailable).

    Unlike the monotone :func:`max_rss_kib` watermark this can go down;
    the streaming benchmark samples it per chunk to show occupancy staying
    flat while the watermark records the worst case.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        import os
        page_kib = os.sysconf("SC_PAGE_SIZE") // 1024
        return int(fields[1]) * page_kib
    except (OSError, IndexError, ValueError):
        return 0
