"""SeqDB-like indexed binary container for short reads (paper section V-A).

The paper stores reads in SeqDB, a binary HDF5-based format, because FASTQ's
text structure cannot be read in parallel: a rank cannot seek to "its" records
without scanning.  This module provides an equivalent container without the
HDF5 dependency:

* sequences are 2-bit packed (the compression of section V-C), qualities are
  stored verbatim (optional), names as ASCII;
* a per-record index (offset, name length, sequence length) is written after
  the records and located through the fixed-size header, so
  :meth:`SeqDbReader.read_range` can fetch any contiguous slice of records
  with a single seek -- exactly the access pattern Parallel HDF5 gives the
  original implementation;
* the resulting file is typically 40-50 % smaller than the FASTQ it came
  from, matching the paper's reported ratio.

The format is deliberately simple; it is a reproduction artefact, not an
interchange format.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.dna.compression import pack_sequence, unpack_sequence, packed_nbytes
from repro.dna.synthetic import ReadRecord
from repro.io.fastq import FastqRecord, read_fastq
from repro.io.partition import block_partition

_MAGIC = b"SQDB"
_VERSION = 1
_HEADER_STRUCT = struct.Struct("<4sHHQQ")  # magic, version, flags, n_records, index_offset
_INDEX_STRUCT = struct.Struct("<QII")      # record offset, name length, sequence length
_FLAG_HAS_QUALITY = 0x1


@dataclass(frozen=True)
class SeqDbStats:
    """Summary of a written SeqDB file (used by tests and the I/O benchmark)."""

    n_records: int
    file_bytes: int
    sequence_bases: int

    @property
    def bytes_per_base(self) -> float:
        return self.file_bytes / self.sequence_bases if self.sequence_bases else 0.0


class SeqDbWriter:
    """Streaming writer for the SeqDB-like container."""

    def __init__(self, path: str | Path, store_quality: bool = True) -> None:
        self.path = Path(path)
        self.store_quality = store_quality
        self._handle = open(self.path, "wb")
        self._index: list[tuple[int, int, int]] = []
        self._sequence_bases = 0
        self._closed = False
        # Header placeholder; rewritten on close once the index offset is known.
        self._handle.write(_HEADER_STRUCT.pack(_MAGIC, _VERSION, 0, 0, 0))

    def __enter__(self) -> "SeqDbWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def add(self, name: str, sequence: str, quality: str | None = None) -> None:
        """Append one read record."""
        if self._closed:
            raise RuntimeError("writer is closed")
        if quality is not None and len(quality) != len(sequence):
            raise ValueError("quality must have the same length as the sequence")
        offset = self._handle.tell()
        name_bytes = name.encode("ascii")
        packed = pack_sequence(sequence)
        self._handle.write(name_bytes)
        self._handle.write(packed.tobytes())
        if self.store_quality:
            qual = quality if quality is not None else "I" * len(sequence)
            self._handle.write(qual.encode("ascii"))
        self._index.append((offset, len(name_bytes), len(sequence)))
        self._sequence_bases += len(sequence)

    def add_read(self, read: ReadRecord | FastqRecord) -> None:
        """Append a :class:`ReadRecord` or :class:`FastqRecord`."""
        self.add(read.name, read.sequence, read.quality)

    def close(self) -> SeqDbStats:
        """Finish the file: write the index and the real header."""
        if self._closed:
            return SeqDbStats(len(self._index), self.path.stat().st_size,
                              self._sequence_bases)
        index_offset = self._handle.tell()
        for entry in self._index:
            self._handle.write(_INDEX_STRUCT.pack(*entry))
        flags = _FLAG_HAS_QUALITY if self.store_quality else 0
        self._handle.seek(0)
        self._handle.write(_HEADER_STRUCT.pack(_MAGIC, _VERSION, flags,
                                               len(self._index), index_offset))
        self._handle.close()
        self._closed = True
        return SeqDbStats(len(self._index), self.path.stat().st_size,
                          self._sequence_bases)


class SeqDbReader:
    """Random-access reader supporting rank-partitioned parallel reads."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "rb")
        header = self._handle.read(_HEADER_STRUCT.size)
        if len(header) < _HEADER_STRUCT.size:
            raise ValueError(f"{self.path}: truncated SeqDB header")
        magic, version, flags, n_records, index_offset = _HEADER_STRUCT.unpack(header)
        if magic != _MAGIC:
            raise ValueError(f"{self.path}: not a SeqDB file (bad magic {magic!r})")
        if version != _VERSION:
            raise ValueError(f"{self.path}: unsupported SeqDB version {version}")
        self.has_quality = bool(flags & _FLAG_HAS_QUALITY)
        self.n_records = n_records
        self._handle.seek(index_offset)
        raw_index = self._handle.read(_INDEX_STRUCT.size * n_records)
        if len(raw_index) < _INDEX_STRUCT.size * n_records:
            raise ValueError(f"{self.path}: truncated SeqDB index")
        entries = [_INDEX_STRUCT.unpack_from(raw_index, i * _INDEX_STRUCT.size)
                   for i in range(n_records)]
        self._offsets = np.array([e[0] for e in entries], dtype=np.int64)
        self._name_lens = np.array([e[1] for e in entries], dtype=np.int64)
        self._seq_lens = np.array([e[2] for e in entries], dtype=np.int64)

    def __enter__(self) -> "SeqDbReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._handle.close()

    def __len__(self) -> int:
        return int(self.n_records)

    def record_nbytes(self, index: int) -> int:
        """On-disk size of record *index* (used to charge I/O time)."""
        name_len = int(self._name_lens[index])
        seq_len = int(self._seq_lens[index])
        qual_len = seq_len if self.has_quality else 0
        return name_len + packed_nbytes(seq_len) + qual_len

    def read_record(self, index: int) -> FastqRecord:
        """Read a single record by index."""
        if not 0 <= index < self.n_records:
            raise IndexError(f"record index {index} out of range")
        self._handle.seek(int(self._offsets[index]))
        name_len = int(self._name_lens[index])
        seq_len = int(self._seq_lens[index])
        name = self._handle.read(name_len).decode("ascii")
        packed = np.frombuffer(self._handle.read(packed_nbytes(seq_len)), dtype=np.uint8)
        sequence = unpack_sequence(packed, seq_len)
        if self.has_quality:
            quality = self._handle.read(seq_len).decode("ascii")
        else:
            quality = "I" * seq_len
        return FastqRecord(name=name, sequence=sequence, quality=quality)

    def read_range(self, start: int, count: int) -> list[FastqRecord]:
        """Read *count* consecutive records starting at *start*."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if start < 0 or start + count > self.n_records:
            raise IndexError("record range out of bounds")
        return [self.read_record(i) for i in range(start, start + count)]

    def read_partition(self, rank: int, n_ranks: int) -> list[FastqRecord]:
        """Read the block of records assigned to *rank* of *n_ranks*.

        This is the parallel-I/O access pattern: every rank calls it with its
        own rank number and touches a disjoint byte range of the file.
        """
        start, count = block_partition(int(self.n_records), n_ranks, rank)
        return self.read_range(start, count)

    def partition_nbytes(self, rank: int, n_ranks: int) -> int:
        """On-disk bytes of the partition assigned to *rank* (for I/O costing)."""
        start, count = block_partition(int(self.n_records), n_ranks, rank)
        return sum(self.record_nbytes(i) for i in range(start, start + count))


def records_to_seqdb(path: str | Path,
                     records: list[ReadRecord] | list[FastqRecord],
                     store_quality: bool = True) -> SeqDbStats:
    """Write a list of read records to a SeqDB file; returns file statistics."""
    with SeqDbWriter(path, store_quality=store_quality) as writer:
        for record in records:
            writer.add_read(record)
        stats = writer.close()
    return stats


def fastq_to_seqdb(fastq_path: str | Path, seqdb_path: str | Path,
                   store_quality: bool = True) -> SeqDbStats:
    """One-time lossless FASTQ -> SeqDB conversion (paper section V-A)."""
    records = read_fastq(fastq_path)
    return records_to_seqdb(seqdb_path, records, store_quality=store_quality)
