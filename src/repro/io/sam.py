"""SAM-style output of alignments.

merAligner's output feeds the Meraculous scaffolder; we emit a SAM-flavoured
text file so downstream tooling (and humans) can inspect the alignments
produced by examples and integration tests.

Paired-end output (:class:`PairedSamRecord` / :func:`paired_sam_text`) renders
exactly two records per pair -- the primary alignment of each mate, or an
unmapped placeholder record -- with the standard pair flags (0x1 paired,
0x2 proper, 0x4/0x8 self/mate unmapped, 0x10/0x20 self/mate reverse,
0x40/0x80 first/second in pair) and RNEXT/PNEXT/TLEN filled in.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.alignment.result import Alignment

# SAM FLAG bits used by the paired-end sink.
FLAG_PAIRED = 0x1
FLAG_PROPER_PAIR = 0x2
FLAG_UNMAPPED = 0x4
FLAG_MATE_UNMAPPED = 0x8
FLAG_REVERSE = 0x10
FLAG_MATE_REVERSE = 0x20
FLAG_FIRST_IN_PAIR = 0x40
FLAG_SECOND_IN_PAIR = 0x80


def sam_header(target_names: Sequence[str], target_lengths: Sequence[int],
               program: str = "merAligner-repro") -> list[str]:
    """Build the @HD/@SQ/@PG header lines for a SAM file."""
    if len(target_names) != len(target_lengths):
        raise ValueError("target_names and target_lengths must have equal length")
    lines = ["@HD\tVN:1.6\tSO:unsorted"]
    for name, length in zip(target_names, target_lengths):
        if length < 0:
            raise ValueError("target lengths must be non-negative")
        lines.append(f"@SQ\tSN:{name}\tLN:{length}")
    lines.append(f"@PG\tID:{program}\tPN:{program}")
    return lines


def sam_text(alignments: Sequence[Alignment], target_names: Sequence[str],
             target_lengths: Sequence[int]) -> str:
    """Render alignments as the full text of a SAM file (header + records).

    This is the exact content :func:`write_sam` writes; the alignment service
    streams it over a socket instead of through a file.
    """
    lines = sam_header(target_names, target_lengths)
    for alignment in alignments:
        if 0 <= alignment.target_id < len(target_names):
            name = target_names[alignment.target_id]
        else:
            name = f"target{alignment.target_id}"
        lines.append(alignment.to_sam_line(name))
    return "\n".join(lines) + "\n"


def write_sam(path: str | Path, alignments: Sequence[Alignment],
              target_names: Sequence[str], target_lengths: Sequence[int]) -> int:
    """Write alignments as a SAM file; returns the number of records written."""
    Path(path).write_text(sam_text(alignments, target_names, target_lengths),
                          encoding="ascii")
    return len(alignments)


# -- paired-end records ----------------------------------------------------------

@dataclass
class PairedSamRecord:
    """The SAM-ready outcome of one read pair.

    ``aln1`` / ``aln2`` are the primary alignments of mate 1 and mate 2 (or
    ``None`` for an unmapped mate); ``rescued`` names the mate (1 or 2, 0 for
    none) whose alignment was recovered by mate rescue and
    ``rescue_attempted`` records whether a rescue was tried at all (so
    per-request counters keep attempts >= rescues); ``proper`` and ``tlen``
    are the pair-level template fields computed by the paired sink (TLEN is
    signed per the SAM convention: leftmost mate positive).
    """

    name1: str
    name2: str
    aln1: Alignment | None
    aln2: Alignment | None
    rescued: int = 0
    rescue_attempted: bool = False
    proper: bool = False
    tlen: int = 0

    @property
    def n_mapped(self) -> int:
        return (self.aln1 is not None) + (self.aln2 is not None)


def _mate_flags(aln: Alignment | None, other: Alignment | None,
                first: bool, proper: bool) -> int:
    flag = FLAG_PAIRED | (FLAG_FIRST_IN_PAIR if first else FLAG_SECOND_IN_PAIR)
    if proper:
        flag |= FLAG_PROPER_PAIR
    if aln is None:
        flag |= FLAG_UNMAPPED
    elif aln.strand == "-":
        flag |= FLAG_REVERSE
    if other is None:
        flag |= FLAG_MATE_UNMAPPED
    elif other.strand == "-":
        flag |= FLAG_MATE_REVERSE
    return flag


def _target_name(target_id: int, target_names: Sequence[str]) -> str:
    if 0 <= target_id < len(target_names):
        return target_names[target_id]
    return f"target{target_id}"


def paired_sam_lines(pair: PairedSamRecord,
                     target_names: Sequence[str]) -> list[str]:
    """The two SAM records of one pair (mate 1 first, then mate 2).

    An unmapped mate whose partner is mapped is placed at the partner's
    coordinates (the standard convention that keeps pairs adjacent under a
    coordinate sort); a pair with both mates unmapped gets ``*``/0 fields.
    """
    lines = []
    mates = ((pair.name1, pair.aln1, pair.aln2, True),
             (pair.name2, pair.aln2, pair.aln1, False))
    for name, aln, other, first in mates:
        flag = _mate_flags(aln, other, first, pair.proper)
        if aln is not None:
            rname = _target_name(aln.target_id, target_names)
            pos = aln.target_start + 1  # SAM is 1-based
            mapq = "60" if aln.is_exact else "30"
            cigar = aln.cigar_string or f"{aln.query_span}M"
        elif other is not None:
            # Unmapped mate placed at its mapped partner's position.
            rname = _target_name(other.target_id, target_names)
            pos = other.target_start + 1
            mapq, cigar = "0", "*"
        else:
            rname, pos, mapq, cigar = "*", 0, "0", "*"
        if other is not None:
            rnext = "=" if (aln is None or other.target_id == aln.target_id) \
                else _target_name(other.target_id, target_names)
            pnext = other.target_start + 1
        elif aln is not None:
            rnext, pnext = "=", pos
        else:
            rnext, pnext = "*", 0
        tlen = 0
        if pair.aln1 is not None and pair.aln2 is not None \
                and pair.aln1.target_id == pair.aln2.target_id:
            tlen = pair.tlen if aln is pair.aln1 else -pair.tlen
        fields = [name, str(flag), rname, str(pos), mapq, cigar,
                  rnext, str(pnext), str(tlen), "*", "*"]
        if aln is not None:
            fields.append(f"AS:i:{aln.score}")
        lines.append("\t".join(fields))
    return lines


def paired_sam_text(pairs: Sequence[PairedSamRecord],
                    target_names: Sequence[str],
                    target_lengths: Sequence[int],
                    program: str = "merAligner-repro") -> str:
    """Render paired-end records as the full text of a SAM file.

    This is what ``meraligner align --paired`` writes and what the service's
    ``PAIRED`` verb streams; both are byte-identical for the same pairs.
    """
    lines = sam_header(target_names, target_lengths, program=program)
    for pair in pairs:
        lines.extend(paired_sam_lines(pair, target_names))
    return "\n".join(lines) + "\n"
