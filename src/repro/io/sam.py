"""SAM-style output of alignments.

merAligner's output feeds the Meraculous scaffolder; we emit a SAM-flavoured
text file so downstream tooling (and humans) can inspect the alignments
produced by examples and integration tests.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.alignment.result import Alignment


def sam_header(target_names: Sequence[str], target_lengths: Sequence[int],
               program: str = "merAligner-repro") -> list[str]:
    """Build the @HD/@SQ/@PG header lines for a SAM file."""
    if len(target_names) != len(target_lengths):
        raise ValueError("target_names and target_lengths must have equal length")
    lines = ["@HD\tVN:1.6\tSO:unsorted"]
    for name, length in zip(target_names, target_lengths):
        if length < 0:
            raise ValueError("target lengths must be non-negative")
        lines.append(f"@SQ\tSN:{name}\tLN:{length}")
    lines.append(f"@PG\tID:{program}\tPN:{program}")
    return lines


def write_sam(path: str | Path, alignments: Sequence[Alignment],
              target_names: Sequence[str], target_lengths: Sequence[int]) -> int:
    """Write alignments as a SAM file; returns the number of records written."""
    lines = sam_header(target_names, target_lengths)
    written = 0
    for alignment in alignments:
        if 0 <= alignment.target_id < len(target_names):
            name = target_names[alignment.target_id]
        else:
            name = f"target{alignment.target_id}"
        lines.append(alignment.to_sam_line(name))
        written += 1
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")
    return written
