"""SAM-style output of alignments.

merAligner's output feeds the Meraculous scaffolder; we emit a SAM-flavoured
text file so downstream tooling (and humans) can inspect the alignments
produced by examples and integration tests.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.alignment.result import Alignment


def sam_header(target_names: Sequence[str], target_lengths: Sequence[int],
               program: str = "merAligner-repro") -> list[str]:
    """Build the @HD/@SQ/@PG header lines for a SAM file."""
    if len(target_names) != len(target_lengths):
        raise ValueError("target_names and target_lengths must have equal length")
    lines = ["@HD\tVN:1.6\tSO:unsorted"]
    for name, length in zip(target_names, target_lengths):
        if length < 0:
            raise ValueError("target lengths must be non-negative")
        lines.append(f"@SQ\tSN:{name}\tLN:{length}")
    lines.append(f"@PG\tID:{program}\tPN:{program}")
    return lines


def sam_text(alignments: Sequence[Alignment], target_names: Sequence[str],
             target_lengths: Sequence[int]) -> str:
    """Render alignments as the full text of a SAM file (header + records).

    This is the exact content :func:`write_sam` writes; the alignment service
    streams it over a socket instead of through a file.
    """
    lines = sam_header(target_names, target_lengths)
    for alignment in alignments:
        if 0 <= alignment.target_id < len(target_names):
            name = target_names[alignment.target_id]
        else:
            name = f"target{alignment.target_id}"
        lines.append(alignment.to_sam_line(name))
    return "\n".join(lines) + "\n"


def write_sam(path: str | Path, alignments: Sequence[Alignment],
              target_names: Sequence[str], target_lengths: Sequence[int]) -> int:
    """Write alignments as a SAM file; returns the number of records written."""
    Path(path).write_text(sam_text(alignments, target_names, target_lengths),
                          encoding="ascii")
    return len(alignments)
