"""FASTQ reading and writing (short-read query sequences).

FASTQ is the standard text format for short reads; the paper converts it once
to SeqDB for scalable parallel reads.  This module provides the text side of
that conversion and a way to round-trip the synthetic
:class:`repro.dna.synthetic.ReadRecord` data through files.

Parsing is incremental: :func:`iter_fastq` yields one record at a time
without materialising the file (the streaming sources in
:mod:`repro.stream` build on it), and :func:`read_fastq` is just
``list(iter_fastq(path))``.  Malformed or truncated input raises
:class:`repro.io.errors.InputFileError` carrying the 0-based record index
and 1-based line number of the corruption -- never a bare ``ValueError`` or
a silently shortened record list.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.dna.synthetic import ReadRecord
from repro.io.errors import InputFileError
from repro.io.fasta import open_text_auto

__all__ = ["FastqRecord", "iter_fastq", "read_fastq", "read_fastq_paired",
           "write_fastq"]


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ record: name, sequence and per-base quality string."""

    name: str
    sequence: str
    quality: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("FASTQ record name must be non-empty")
        if len(self.sequence) != len(self.quality):
            raise ValueError("sequence and quality must have the same length")

    @classmethod
    def from_read(cls, read: ReadRecord) -> "FastqRecord":
        return cls(name=read.name, sequence=read.sequence, quality=read.quality)

    def to_read(self) -> ReadRecord:
        """Convert to a :class:`ReadRecord` (origin information is unknown)."""
        return ReadRecord(name=self.name, sequence=self.sequence, quality=self.quality)


_FIELD_NAMES = ("header", "sequence", "separator", "quality")


def iter_fastq(path: str | Path) -> Iterator[FastqRecord]:
    """Yield FASTQ records one at a time (optionally gzipped input).

    Holds at most one 4-line record in memory -- the building block of the
    bounded-memory streaming sources.  Raises :class:`InputFileError` with
    the record index and line number for a truncated record (EOF inside the
    4-line group), a malformed ``@`` header or ``+`` separator, or a
    quality string whose length disagrees with its sequence.
    """
    record_index = 0
    with open_text_auto(path) as handle:
        lines = iter(handle)
        line_number = 0
        while True:
            raw = next(lines, None)
            if raw is None:
                return  # clean EOF on a record boundary
            line_number += 1
            header = raw.rstrip("\n")
            if not header:
                # Trailing blank lines (common from editors) end the file
                # cleanly -- but only when nothing non-blank follows them.
                for raw in lines:
                    if raw.rstrip("\n"):
                        raise InputFileError(
                            f"blank FASTQ header in {path}",
                            record_index=record_index,
                            line_number=line_number)
                return
            fields: list[str] = []
            for field in _FIELD_NAMES[1:]:
                raw = next(lines, None)
                if raw is None:
                    raise InputFileError(
                        f"truncated FASTQ record in {path}: file ends before "
                        f"the {field} line",
                        record_index=record_index, line_number=line_number)
                line_number += 1
                fields.append(raw.rstrip("\n"))
            sequence, separator, quality = fields
            if not header.startswith("@"):
                raise InputFileError(
                    f"malformed FASTQ header in {path}: {header!r}",
                    record_index=record_index, line_number=line_number - 3)
            if not separator.startswith("+"):
                raise InputFileError(
                    f"malformed FASTQ separator in {path}: {separator!r}",
                    record_index=record_index, line_number=line_number - 1)
            if len(sequence) != len(quality):
                raise InputFileError(
                    f"FASTQ quality length {len(quality)} != sequence length "
                    f"{len(sequence)} in {path}",
                    record_index=record_index, line_number=line_number)
            name = header[1:].split()[0] if header[1:].split() else ""
            if not name:
                raise InputFileError(
                    f"empty FASTQ read name in {path}",
                    record_index=record_index, line_number=line_number - 3)
            yield FastqRecord(name=name, sequence=sequence.upper(),
                              quality=quality)
            record_index += 1


def read_fastq(path: str | Path) -> list[FastqRecord]:
    """Parse a FASTQ file (optionally gzipped; 4 lines per record).

    Raises :class:`InputFileError` (with record index and line number) for
    truncated files or malformed headers/separators.
    """
    return list(iter_fastq(path))


def read_fastq_paired(path: str | Path,
                      path2: str | Path | None = None) -> list[FastqRecord]:
    """Read a paired-end library as an interleaved record list.

    Two layouts are supported, matching how paired libraries ship:

    * **interleaved** (only *path* given): records alternate R1, R2, R1, R2;
      the file must hold an even number of records.
    * **two-file** (*path* and *path2* given): *path* holds every R1 and
      *path2* the matching R2, in the same order; the files must hold the
      same number of records.

    Returns the interleaved list ``[R1_0, R2_0, R1_1, R2_1, ...]`` -- the
    read order every paired entry point (:func:`repro.api.align_paired`, the
    CLI, the service's ``PAIRED`` verb) consumes.  Raises
    :class:`InputFileError` on an odd interleaved count or mismatched file
    lengths.
    """
    first = read_fastq(path)
    if path2 is None:
        if len(first) % 2 != 0:
            raise InputFileError(
                f"interleaved paired FASTQ needs an even number of records, "
                f"got {len(first)} in {path}")
        return first
    second = read_fastq(path2)
    if len(first) != len(second):
        raise InputFileError(
            f"paired FASTQ files disagree: {len(first)} reads in {path} vs "
            f"{len(second)} in {path2}")
    interleaved: list[FastqRecord] = []
    for r1, r2 in zip(first, second):
        interleaved.append(r1)
        interleaved.append(r2)
    return interleaved


def write_fastq(path: str | Path,
                records: list[FastqRecord] | list[ReadRecord]) -> None:
    """Write FASTQ records (accepts :class:`ReadRecord` objects directly)."""
    with open(path, "w", encoding="ascii") as handle:
        for record in records:
            if isinstance(record, ReadRecord):
                record = FastqRecord.from_read(record)
            handle.write(f"@{record.name}\n{record.sequence}\n+\n{record.quality}\n")
