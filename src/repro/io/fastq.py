"""FASTQ reading and writing (short-read query sequences).

FASTQ is the standard text format for short reads; the paper converts it once
to SeqDB for scalable parallel reads.  This module provides the text side of
that conversion and a way to round-trip the synthetic
:class:`repro.dna.synthetic.ReadRecord` data through files.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.dna.synthetic import ReadRecord
from repro.io.fasta import open_text_auto


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ record: name, sequence and per-base quality string."""

    name: str
    sequence: str
    quality: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("FASTQ record name must be non-empty")
        if len(self.sequence) != len(self.quality):
            raise ValueError("sequence and quality must have the same length")

    @classmethod
    def from_read(cls, read: ReadRecord) -> "FastqRecord":
        return cls(name=read.name, sequence=read.sequence, quality=read.quality)

    def to_read(self) -> ReadRecord:
        """Convert to a :class:`ReadRecord` (origin information is unknown)."""
        return ReadRecord(name=self.name, sequence=self.sequence, quality=self.quality)


def read_fastq(path: str | Path) -> list[FastqRecord]:
    """Parse a FASTQ file (optionally gzipped; 4 lines per record).

    Raises ``ValueError`` for truncated files or malformed separators.
    """
    records: list[FastqRecord] = []
    with open_text_auto(path) as handle:
        lines = [line.rstrip("\n") for line in handle]
    if len(lines) % 4 not in (0,):
        # allow a single trailing blank line
        while lines and not lines[-1]:
            lines.pop()
        if len(lines) % 4 != 0:
            raise ValueError("truncated FASTQ file (record count not a multiple of 4 lines)")
    for index in range(0, len(lines), 4):
        header, sequence, separator, quality = lines[index:index + 4]
        if not header.startswith("@"):
            raise ValueError(f"malformed FASTQ header at line {index + 1}: {header!r}")
        if not separator.startswith("+"):
            raise ValueError(f"malformed FASTQ separator at line {index + 3}: {separator!r}")
        records.append(FastqRecord(name=header[1:].split()[0],
                                   sequence=sequence.upper(),
                                   quality=quality))
    return records


def read_fastq_paired(path: str | Path,
                      path2: str | Path | None = None) -> list[FastqRecord]:
    """Read a paired-end library as an interleaved record list.

    Two layouts are supported, matching how paired libraries ship:

    * **interleaved** (only *path* given): records alternate R1, R2, R1, R2;
      the file must hold an even number of records.
    * **two-file** (*path* and *path2* given): *path* holds every R1 and
      *path2* the matching R2, in the same order; the files must hold the
      same number of records.

    Returns the interleaved list ``[R1_0, R2_0, R1_1, R2_1, ...]`` -- the
    read order every paired entry point (:func:`repro.api.align_paired`, the
    CLI, the service's ``PAIRED`` verb) consumes.  Raises ``ValueError`` on
    an odd interleaved count or mismatched file lengths.
    """
    first = read_fastq(path)
    if path2 is None:
        if len(first) % 2 != 0:
            raise ValueError(
                f"interleaved paired FASTQ needs an even number of records, "
                f"got {len(first)} in {path}")
        return first
    second = read_fastq(path2)
    if len(first) != len(second):
        raise ValueError(
            f"paired FASTQ files disagree: {len(first)} reads in {path} vs "
            f"{len(second)} in {path2}")
    interleaved: list[FastqRecord] = []
    for r1, r2 in zip(first, second):
        interleaved.append(r1)
        interleaved.append(r2)
    return interleaved


def write_fastq(path: str | Path,
                records: list[FastqRecord] | list[ReadRecord]) -> None:
    """Write FASTQ records (accepts :class:`ReadRecord` objects directly)."""
    with open(path, "w", encoding="ascii") as handle:
        for record in records:
            if isinstance(record, ReadRecord):
                record = FastqRecord.from_read(record)
            handle.write(f"@{record.name}\n{record.sequence}\n+\n{record.quality}\n")
