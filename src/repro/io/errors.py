"""Input-file failures reported uniformly across readers, CLI and streams.

:class:`InputFileError` is the one exception every input path raises for a
missing, unreadable, malformed or truncated file.  The CLI maps it to exit
code 2 with a one-line ``meraligner: error:`` message; streaming sources
raise it mid-stream with enough position information (record index and line
number) to locate the corruption in a multi-gigabyte library without
re-reading it.
"""

from __future__ import annotations

__all__ = ["InputFileError"]


class InputFileError(ValueError):
    """A missing, unreadable, malformed or truncated input file.

    Parsers attach ``record_index`` (0-based index of the record being
    parsed) and ``line_number`` (1-based line in the text file) when the
    failure happens mid-file; both stay ``None`` for whole-file failures
    such as a missing path.  Subclasses :class:`ValueError` so callers
    written against the original readers' bare ``ValueError`` contract
    keep working.
    """

    def __init__(self, message: str, *, record_index: int | None = None,
                 line_number: int | None = None) -> None:
        if record_index is not None or line_number is not None:
            where = []
            if record_index is not None:
                where.append(f"record {record_index}")
            if line_number is not None:
                where.append(f"line {line_number}")
            message = f"{message} ({', '.join(where)})"
        super().__init__(message)
        self.record_index = record_index
        self.line_number = line_number
