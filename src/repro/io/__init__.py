"""I/O substrate: FASTA/FASTQ text formats, the SeqDB-like binary container,
record partitioning for parallel reads, and SAM-style output.

The paper replaces FASTQ with SeqDB (a binary HDF5 container) so that every
rank can read its own slice of the input in parallel (section V-A).  HDF5 is
not part of this reproduction's dependency set, so :mod:`repro.io.seqdb`
implements an indexed, seekable binary container with 2-bit packed sequences
that supports the same access pattern: any rank can read any contiguous range
of records without scanning the whole file.
"""

from repro.io.errors import InputFileError
from repro.io.fasta import read_fasta, write_fasta, FastaRecord, open_text_auto
from repro.io.fastq import read_fastq, iter_fastq, write_fastq, FastqRecord
from repro.io.seqdb import SeqDbWriter, SeqDbReader, fastq_to_seqdb, records_to_seqdb
from repro.io.partition import block_partition, cyclic_partition, partition_records
from repro.io.sam import write_sam, sam_header, sam_text

__all__ = [
    "InputFileError",
    "open_text_auto",
    "read_fasta",
    "write_fasta",
    "FastaRecord",
    "read_fastq",
    "iter_fastq",
    "write_fastq",
    "FastqRecord",
    "SeqDbWriter",
    "SeqDbReader",
    "fastq_to_seqdb",
    "records_to_seqdb",
    "block_partition",
    "cyclic_partition",
    "partition_records",
    "write_sam",
    "sam_header",
    "sam_text",
]
