"""FASTA reading and writing (target/contig sequences)."""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from pathlib import Path


#: The two-byte gzip magic number (RFC 1952).
_GZIP_MAGIC = b"\x1f\x8b"


def open_text_auto(path: str | Path):
    """Open *path* for text reading, transparently decompressing gzip files.

    Real-world read sets and assemblies ship gzipped (``.fasta.gz`` /
    ``.fastq.gz``); the suffix is checked first, and files *without* a
    ``.gz`` suffix are additionally sniffed for the gzip magic bytes -- a
    gzipped file renamed to plain ``.fastq`` (a routine pipeline accident)
    still opens correctly instead of blowing up mid-parse.
    """
    if str(path).endswith(".gz"):
        return gzip.open(path, "rt", encoding="ascii")
    with open(path, "rb") as probe:
        magic = probe.read(2)
    if magic == _GZIP_MAGIC:
        return gzip.open(path, "rt", encoding="ascii")
    return open(path, "r", encoding="ascii")


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record: a name and its sequence."""

    name: str
    sequence: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("FASTA record name must be non-empty")


def read_fasta(path: str | Path) -> list[FastaRecord]:
    """Parse a FASTA file (optionally gzipped) into a list of records.

    Multi-line sequences are concatenated; blank lines are ignored.  Raises
    ``ValueError`` on malformed input (sequence data before the first header).
    """
    records: list[FastaRecord] = []
    name: str | None = None
    chunks: list[str] = []
    with open_text_auto(path) as handle:
        for raw_line in handle:
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    records.append(FastaRecord(name=name, sequence="".join(chunks)))
                name = line[1:].split()[0] if len(line) > 1 else ""
                if not name:
                    raise ValueError("FASTA header with empty name")
                chunks = []
            else:
                if name is None:
                    raise ValueError("sequence data before the first FASTA header")
                chunks.append(line.upper())
    if name is not None:
        records.append(FastaRecord(name=name, sequence="".join(chunks)))
    return records


def write_fasta(path: str | Path, records: list[FastaRecord] | list[tuple[str, str]],
                line_width: int = 80) -> None:
    """Write records to a FASTA file, wrapping sequences at *line_width*."""
    if line_width <= 0:
        raise ValueError("line_width must be positive")
    with open(path, "w", encoding="ascii") as handle:
        for record in records:
            if isinstance(record, FastaRecord):
                name, seq = record.name, record.sequence
            else:
                name, seq = record
            handle.write(f">{name}\n")
            for start in range(0, len(seq), line_width):
                handle.write(seq[start:start + line_width] + "\n")
            if not seq:
                handle.write("\n")
