"""Partitioning of records across ranks.

merAligner block-partitions both the target and the query files so every rank
reads a disjoint contiguous slice in parallel.  The pMap baseline instead has
a master process carve the reads and *send* each slice to its worker, which is
one of the serial bottlenecks Table II exposes.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

T = TypeVar("T")


def block_partition(n_items: int, n_parts: int, part: int) -> tuple[int, int]:
    """Contiguous block partition: return ``(start, count)`` for *part*.

    Remainder items are spread one-per-part over the lowest-numbered parts, so
    block sizes differ by at most one.
    """
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    if not 0 <= part < n_parts:
        raise IndexError(f"part {part} out of range [0, {n_parts})")
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    base, extra = divmod(n_items, n_parts)
    start = part * base + min(part, extra)
    count = base + (1 if part < extra else 0)
    return start, count


def cyclic_partition(n_items: int, n_parts: int, part: int) -> list[int]:
    """Round-robin partition: the indices assigned to *part*."""
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    if not 0 <= part < n_parts:
        raise IndexError(f"part {part} out of range [0, {n_parts})")
    return list(range(part, n_items, n_parts))


def partition_records(records: Sequence[T], n_parts: int) -> list[list[T]]:
    """Split *records* into ``n_parts`` contiguous blocks (list of lists)."""
    result: list[list[T]] = []
    for part in range(n_parts):
        start, count = block_partition(len(records), n_parts, part)
        result.append(list(records[start:start + count]))
    return result
