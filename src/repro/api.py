"""The documented public API of the merAligner reproduction.

Everything a program needs -- one-shot runs, custom stage pipelines,
resident sessions and the socket service -- behind one import::

    from repro import api

    report = api.align("contigs.fa", "reads.fastq", n_ranks=8)
    paired = api.align_paired("contigs.fa", "reads_R1.fastq", "reads_R2.fastq")
    histogram = api.count("contigs.fa", "reads.fastq")
    rows = api.screen("contigs.fa", "reads.fastq")

    # Custom pipelines: compose stages, run them anywhere.
    plan = api.plan("count")                       # a registered workload
    result = api.run_plan(plan, "contigs.fa", "reads.fastq")

    # Serving: build the index once, serve align/count/screen over TCP.
    with api.serve("contigs.fa", port=0) as service:
        print(service.host, service.port)

The stage vocabulary (:class:`BuildIndex`, :class:`SeedLookup`,
:class:`CandidateCollect`, :class:`ExtendAlign`, :class:`EmitSam`, ...) is
re-exported here so bespoke plans -- e.g. a seed-lookup-only pipeline with a
custom sink, see ``examples/custom_pipeline.py`` -- can be built from this
module alone.  This module is the compatibility surface:
``tests/test_api_surface.py`` pins its exports.
"""

from __future__ import annotations

import threading

from repro.core.config import AlignerConfig
from repro.core.plan import (AlignmentPlan, BuildIndex, CandidateCollect,
                             EmitSam, EmitSamPaired, EmitScreen,
                             EmitSeedCounts, ExactPath, ExtendAlign,
                             MateRescue, PairJoin, PairStage, PairState,
                             PlanResult, PlanRunner, PlanValidationError,
                             QueryStage, ReadQueries, ReadState,
                             ScreenSummary, SeedCountSummary, SeedLookup,
                             SinkStage, Stage, StageContext, WORKLOAD_PLANS,
                             normalize_paired_reads, plan_for_workload)
from repro.core.pipeline import MerAligner
from repro.core.stats import AlignerReport, PhaseStats, REPORT_SCHEMA_VERSION
from repro.io.errors import InputFileError
from repro.io.sam import PairedSamRecord, paired_sam_text
from repro.pgas.cost_model import EDISON_LIKE, MachineModel
from repro.stream import (BoundedChannel, ChannelClosed, ChannelFull,
                          ReadChunk, open_read_stream)

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # the service stack is imported lazily at runtime, below
    from repro.service.client import SocketAlignmentClient
    from repro.service.scheduler import RequestScheduler
    from repro.service.server import AlignmentServer
    from repro.service.session import AlignmentSession

#: Serving-stack exports resolved on first attribute access (PEP 562) so
#: ``import repro`` / ``from repro import api`` does not drag sockets,
#: threading servers and the scheduler into every library or CLI start-up.
_LAZY_SERVICE_EXPORTS = {
    "AlignmentClient": "repro.service.client",
    "SocketAlignmentClient": "repro.service.client",
    "RequestScheduler": "repro.service.scheduler",
    "ServiceStats": "repro.service.scheduler",
    "AlignmentServer": "repro.service.server",
    "AsyncAlignmentServer": "repro.service.async_server",
    "AlignmentSession": "repro.service.session",
    "MetricsRegistry": "repro.obs.registry",
    "TraceLog": "repro.obs.tracing",
    "LoadGenerator": "repro.obs.loadgen",
    # multi-tenant gateway
    "AlignmentGateway": "repro.gateway",
    "AdmissionController": "repro.gateway",
    "GatewayBusyError": "repro.gateway",
    "IndexRegistry": "repro.gateway",
    "ResultCache": "repro.gateway",
    "ServiceBusyError": "repro.service.client",
    # streaming ingestion
    "StreamPart": "repro.service.session",
}


def __getattr__(name: str):
    if name in _LAZY_SERVICE_EXPORTS:
        import importlib
        module = importlib.import_module(_LAZY_SERVICE_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    # entry points
    "align",
    "align_paired",
    "align_stream",
    "count",
    "screen",
    "plan",
    "run_plan",
    "prepare",
    "serve",
    # plan vocabulary
    "AlignmentPlan",
    "PlanRunner",
    "PlanResult",
    "PlanValidationError",
    "Stage",
    "QueryStage",
    "SinkStage",
    "PairStage",
    "StageContext",
    "ReadState",
    "PairState",
    "BuildIndex",
    "ReadQueries",
    "ExactPath",
    "SeedLookup",
    "CandidateCollect",
    "ExtendAlign",
    "PairJoin",
    "MateRescue",
    "EmitSam",
    "EmitSamPaired",
    "EmitSeedCounts",
    "EmitScreen",
    "WORKLOAD_PLANS",
    "plan_for_workload",
    "normalize_paired_reads",
    # configuration / results
    "AlignerConfig",
    "AlignerReport",
    "PhaseStats",
    "REPORT_SCHEMA_VERSION",
    "SeedCountSummary",
    "ScreenSummary",
    "PairedSamRecord",
    "paired_sam_text",
    "MerAligner",
    "MachineModel",
    "EDISON_LIKE",
    # serving
    "AlignmentService",
    "AlignmentSession",
    "AlignmentServer",
    "AsyncAlignmentServer",
    "AlignmentClient",
    "SocketAlignmentClient",
    "RequestScheduler",
    "ServiceStats",
    # multi-tenant gateway
    "AlignmentGateway",
    "AdmissionController",
    "GatewayBusyError",
    "IndexRegistry",
    "ResultCache",
    "ServiceBusyError",
    # observability
    "MetricsRegistry",
    "TraceLog",
    "LoadGenerator",
    # streaming ingestion
    "BoundedChannel",
    "ChannelClosed",
    "ChannelFull",
    "InputFileError",
    "ReadChunk",
    "StreamPart",
    "open_read_stream",
]


# -- one-shot entry points ------------------------------------------------------

def align(targets, reads, *, config: AlignerConfig | None = None,
          n_ranks: int = 8, machine: MachineModel = EDISON_LIKE,
          backend: str | None = None) -> AlignerReport:
    """Align *reads* against *targets*: the default plan, end to end.

    Equivalent to ``MerAligner(config).run(...)``; returns the full
    :class:`AlignerReport` (alignments, per-phase and per-stage timings,
    communication statistics).  *targets* is a FASTA path, a list of
    :class:`~repro.io.fasta.FastaRecord` or plain sequences; *reads* a
    FASTQ/SeqDB path, FASTQ records or :class:`~repro.ReadRecord` objects.

    Example:
        >>> from repro import GenomeSpec, ReadSetSpec, make_dataset
        >>> genome, reads = make_dataset(
        ...     GenomeSpec(name="doc", genome_length=4000, n_contigs=2),
        ...     ReadSetSpec(coverage=1.0, read_length=80), seed=3)
        >>> report = align(genome.contigs, reads[:8], n_ranks=2)
        >>> report.counters.reads_processed
        8
        >>> len(report.alignments) == report.counters.alignments_reported
        True
    """
    return MerAligner(config).run(targets, reads, n_ranks=n_ranks,
                                  machine=machine, backend=backend)


def align_paired(targets, reads, reads2=None, *,
                 config: AlignerConfig | None = None, n_ranks: int = 8,
                 machine: MachineModel = EDISON_LIKE,
                 backend: str | None = None) -> PlanResult:
    """Paired-end alignment (the ``paired`` workload), end to end.

    *reads* is an interleaved paired library (R1, R2, R1, R2, ...) -- or the
    R1 half, with every mate supplied through *reads2* in the same order.
    The full per-read pipeline runs on both mates, pairs are re-joined
    (:class:`PairJoin`), lost mates are rescued by banded Smith-Waterman
    inside the expected insert window (:class:`MateRescue`, tuned by
    ``config.insert_size`` / ``config.insert_slack``), and the result is a
    :class:`PlanResult` whose ``output`` is one :class:`PairedSamRecord` per
    pair -- render it with :func:`paired_sam_text`.

    Example:
        >>> from repro import GenomeSpec, ReadSetSpec, make_dataset
        >>> genome, reads = make_dataset(
        ...     GenomeSpec(name="doc", genome_length=4000, n_contigs=2),
        ...     ReadSetSpec(coverage=1.0, read_length=80, paired=True,
        ...                 insert_size=300), seed=3)
        >>> result = align_paired(genome.contigs, reads[:10], n_ranks=2)
        >>> [record.n_mapped for record in result.output]  # 5 pairs in
        [2, 2, 2, 2, 2]
        >>> result.report.counters.pairs_processed
        5
    """
    records = normalize_paired_reads(reads, reads2)
    return run_plan(plan_for_workload("paired"), targets, records,
                    config=config, n_ranks=n_ranks, machine=machine,
                    backend=backend)


def count(targets, reads, *, config: AlignerConfig | None = None,
          n_ranks: int = 8, machine: MachineModel = EDISON_LIKE,
          backend: str | None = None) -> SeedCountSummary:
    """Distributed query-seed frequency histogram (the ``count`` workload).

    Runs the pipeline through the seed-lookup stage only -- no fragment
    fetches, no extension -- and folds the per-seed index occurrence counts
    into a :class:`SeedCountSummary`.

    Example:
        >>> from repro import GenomeSpec, ReadSetSpec, make_dataset
        >>> genome, reads = make_dataset(
        ...     GenomeSpec(name="doc", genome_length=4000, n_contigs=2),
        ...     ReadSetSpec(coverage=1.0, read_length=80), seed=3)
        >>> summary = count(genome.contigs, reads[:6], n_ranks=2)
        >>> summary.n_reads
        6
        >>> sum(summary.histogram.values()) == summary.n_seed_lookups
        True
    """
    return run_plan(plan_for_workload("count"), targets, reads, config=config,
                    n_ranks=n_ranks, machine=machine, backend=backend).output


def screen(targets, reads, *, config: AlignerConfig | None = None,
           n_ranks: int = 8, machine: MachineModel = EDISON_LIKE,
           backend: str | None = None) -> ScreenSummary:
    """Exact-match-only read screening (the ``screen`` workload).

    Probes only the Lemma 1 exact-match fast path and returns one
    hit/miss row per read, in input order, as a :class:`ScreenSummary`.

    Example:
        >>> from repro import GenomeSpec, ReadSetSpec, make_dataset
        >>> genome, reads = make_dataset(
        ...     GenomeSpec(name="doc", genome_length=4000, n_contigs=2),
        ...     ReadSetSpec(coverage=1.0, read_length=80), seed=3)
        >>> summary = screen(genome.contigs, reads[:6], n_ranks=2)
        >>> len(summary.rows)
        6
        >>> summary.rows[0][0] == reads[0].name
        True
    """
    return run_plan(plan_for_workload("screen"), targets, reads, config=config,
                    n_ranks=n_ranks, machine=machine, backend=backend).output


def plan(workload: str = "align") -> AlignmentPlan:
    """A fresh copy of the registered plan for *workload*.

    ``align`` is the full aligner, ``count`` stops after seed lookup,
    ``screen`` probes only the exact-match path, ``paired`` is the
    paired-end pipeline with mate rescue.  Build bespoke plans by
    constructing :class:`AlignmentPlan` from the stage classes directly.

    Example:
        >>> plan("count").workload
        'count'
        >>> print(plan("paired").describe())
        plan 'paired' (workload: paired)
          build_index(targets -> seed_index, target_store)
          read_queries(reads -> read_chunk)
          exact_path(read_chunk, seed_index, target_store -> exact_hits)
          seed_lookup(read_chunk, seed_index -> seed_hits)
          candidate_collect(seed_hits -> candidates)
          extend_align(candidates, target_store -> alignments)
          pair_join(alignments, exact_hits? -> pairs)
          mate_rescue(pairs, target_store -> pairs)
          emit_sam_paired(pairs -> sam)
    """
    return plan_for_workload(workload)


def run_plan(plan: AlignmentPlan, targets, reads, *,
             config: AlignerConfig | None = None, n_ranks: int = 8,
             machine: MachineModel = EDISON_LIKE,
             backend: str | None = None) -> PlanResult:
    """Execute any :class:`AlignmentPlan` end to end on a fresh machine.

    Example:
        >>> from repro import GenomeSpec, ReadSetSpec, make_dataset
        >>> genome, reads = make_dataset(
        ...     GenomeSpec(name="doc", genome_length=4000, n_contigs=2),
        ...     ReadSetSpec(coverage=1.0, read_length=80), seed=3)
        >>> result = run_plan(plan("count"), genome.contigs, reads[:6],
        ...                   n_ranks=2)
        >>> result.workload
        'count'
        >>> result.report.counters.sw_calls  # count never extends
        0
    """
    return PlanRunner(plan, config).run(targets, reads, n_ranks=n_ranks,
                                        machine=machine, backend=backend)


def prepare(targets, *, config: AlignerConfig | None = None, n_ranks: int = 8,
            machine: MachineModel = EDISON_LIKE, backend: str | None = None,
            target_names: list[str] | None = None) -> AlignmentSession:
    """Build the distributed index once and return a resident session.

    The session serves any registered workload (``session.align(reads)``,
    ``session.align_paired(reads)``, ``session.count(reads)``,
    ``session.screen(reads)``) or micro-batches through
    :meth:`AlignmentSession.run_plan_many`, on any backend.

    Example:
        >>> from repro import GenomeSpec, ReadSetSpec, make_dataset
        >>> genome, reads = make_dataset(
        ...     GenomeSpec(name="doc", genome_length=4000, n_contigs=2),
        ...     ReadSetSpec(coverage=1.0, read_length=80), seed=3)
        >>> with prepare(genome.contigs, n_ranks=2) as session:
        ...     report = session.align(reads[:4])   # index built only once
        ...     histogram = session.count(reads[:4])
        >>> report.counters.reads_processed, histogram.n_reads
        (4, 4)
    """
    return MerAligner(config).prepare(targets, n_ranks=n_ranks,
                                      machine=machine, backend=backend,
                                      target_names=target_names)


def align_stream(targets, reads, *, config: AlignerConfig | None = None,
                 n_ranks: int = 8, machine: MachineModel = EDISON_LIKE,
                 backend: str | None = None, chunk_reads: int = 4096,
                 paired: bool = False, reads2=None,
                 session: "AlignmentSession | None" = None):
    """Stream alignment with bounded memory: yields incremental
    :class:`StreamPart` s instead of returning one materialised report.

    *reads* may be a FASTQ/SeqDB path (gzip transparent), a record
    iterable, or an iterator of :class:`ReadChunk` s; unchunked sources are
    chunked at *chunk_reads* reads.  The ``text`` fields of the yielded
    parts concatenate to exactly the SAM a materialised :func:`align` run
    writes for the same reads -- at any chunk size, on any backend -- and
    the final part (``part.final``) carries the whole-stream
    :class:`~repro.core.stats.AlignmentCounters` plus chunk/unit totals.
    At no point is the read library, or more than one chunk's alignments,
    resident in memory.

    Pass an existing *session* (from :func:`prepare`) to reuse a built
    index; it is left open.  Without one, an index is built first and
    closed when the stream is exhausted.  *paired* streams the paired-end
    workload over whole R1/R2 pairs (interleaved input, or R1 plus a
    *reads2* mate file).

    Example:
        >>> from repro import GenomeSpec, ReadSetSpec, make_dataset
        >>> genome, reads = make_dataset(
        ...     GenomeSpec(name="doc", genome_length=4000, n_contigs=2),
        ...     ReadSetSpec(coverage=1.0, read_length=80), seed=3)
        >>> parts = list(align_stream(genome.contigs, reads[:8], n_ranks=2,
        ...                           chunk_reads=3))
        >>> parts[-1].final, parts[-1].counters.reads_processed
        (True, 8)
        >>> len([p for p in parts if not p.final])  # ceil(8 / 3) chunks
        3
    """
    own_session = session is None
    if own_session:
        session = prepare(targets, config=config, n_ranks=n_ranks,
                          machine=machine, backend=backend)
    try:
        chunks = open_read_stream(reads, chunk_reads=chunk_reads,
                                  paired=paired, reads2=reads2)
        stream = (session.align_paired_stream(chunks) if paired
                  else session.align_stream(chunks))
        yield from stream
    finally:
        if own_session:
            session.close()


# -- the socket service ---------------------------------------------------------

class AlignmentService:
    """A running alignment service: session + scheduler + socket server.

    Returned by :func:`serve`; the server thread is already accepting
    connections when the constructor returns.  Closing (or exiting the
    context) shuts down the server, the scheduler and the resident session
    in order.
    """

    def __init__(self, session: AlignmentSession, scheduler: RequestScheduler,
                 server, gateway=None) -> None:
        self.session = session
        self.scheduler = scheduler
        self.server = server
        #: The multi-tenant gateway (None for a bare scheduler-only server).
        self.gateway = gateway
        self._thread = threading.Thread(target=server.serve_forever,
                                        name="repro-service", daemon=True)
        self._thread.start()

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, timeout: float | None = 300.0) -> "SocketAlignmentClient":
        """A socket client bound to this service's address."""
        from repro.service.client import SocketAlignmentClient
        return SocketAlignmentClient(host=self.host, port=self.port,
                                     timeout=timeout)

    def stats(self) -> dict:
        """The service's ``STATS`` document (scheduler + session summary)."""
        return self.server.stats_json()

    def metrics(self) -> dict:
        """The service's ``METRICS`` document: the unified observability
        snapshot (registry series, service stats, session summary, cumulative
        comm counters and cache statistics)."""
        return self.server.metrics_json()

    def metrics_text(self) -> str:
        """The service's metrics as Prometheus text exposition."""
        return self.server.metrics_text()

    def join(self, timeout: float | None = None) -> None:
        """Block until the serve loop exits (e.g. a client SHUTDOWN)."""
        self._thread.join(timeout=timeout)

    def close(self) -> None:
        """Stop serving and release every resident resource (idempotent)."""
        self.server.shutdown()
        self._thread.join(timeout=30.0)
        if self.gateway is not None:
            # Closes the admission dispatcher and every resident index --
            # including the default session/scheduler, whose closes below
            # are idempotent no-ops afterwards.
            self.gateway.close()
        self.scheduler.close()
        self.session.close()

    def __enter__(self) -> "AlignmentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(targets, *, config: AlignerConfig | None = None, n_ranks: int = 8,
          machine: MachineModel = EDISON_LIKE, backend: str | None = None,
          host: str = "127.0.0.1", port: int = 0,
          max_batch_requests: int = 8, max_batch_reads: int | None = None,
          max_wait_s: float = 0.02, warm_caches: bool = False,
          request_timeout: float | None = 300.0,
          session: AlignmentSession | None = None,
          metrics=None, trace_log=None,
          indices=None, cache_ttl: float = 0.0,
          cache_max_entries: int = 1024, max_pending: int | None = None,
          heap_budget_bytes: int | None = None,
          frontend: str | None = None,
          client_timeout: float | None = None) -> AlignmentService:
    """Build the index and start serving align/paired/count/screen over TCP.

    Returns a running :class:`AlignmentService` (``port=0`` binds an
    OS-assigned port, read it from ``service.port``).  Pass an existing
    *session* to serve a prebuilt index instead of building one here.

    *frontend* selects the connection layer: ``"async"`` (the default) is
    the event-loop front-end multiplexing every client onto one loop;
    ``"thread"`` the classic thread-per-connection server.  Both speak
    byte-identical protocol (``tests/test_wire_conformance.py``), so the
    choice is purely operational.  *client_timeout* (seconds, default off)
    arms the slow-loris guard: a connection idle past it mid-read (or a
    reader stalled past it mid-write) is reaped -- counted in
    ``server_client_timeouts_total`` and closed without a reply.

    *metrics* is an optional :class:`~repro.obs.MetricsRegistry` to record
    into (one is created otherwise; read it back via ``service.metrics()``
    or the ``METRICS`` wire verb), and *trace_log* an optional
    :class:`~repro.obs.TraceLog` or path receiving one JSONL trace span per
    served request (``meraligner serve --trace-log``).

    The server is always fronted by a multi-tenant
    :class:`~repro.gateway.AlignmentGateway` whose defaults are pure
    pass-through (no extra indices, result cache disabled, unbounded
    admission) -- existing clients see identical behaviour.  *indices*
    registers additional named resident indices up front (a ``{name:
    targets}`` mapping, each built with the same configuration as the
    default index); *cache_ttl* / *cache_max_entries* enable the TTL'd
    exact-duplicate result cache; *max_pending* bounds the admission queue
    (full: clients get ``BUSY``); *heap_budget_bytes* arms LRU eviction of
    registered indices by modelled heap bytes.  See ``docs/gateway.md``.

    Example:
        >>> from repro import GenomeSpec, ReadSetSpec, make_dataset
        >>> genome, reads = make_dataset(
        ...     GenomeSpec(name="doc", genome_length=4000, n_contigs=2),
        ...     ReadSetSpec(coverage=1.0, read_length=80), seed=3)
        >>> with serve(genome.contigs, n_ranks=2, port=0) as service:
        ...     client = service.client()
        ...     client.ping()
        ...     sam = client.align_sam(reads[:4])
        True
        >>> sam.splitlines()[0]
        '@HD\\tVN:1.6\\tSO:unsorted'
    """
    from repro.gateway import AlignmentGateway
    from repro.service import DEFAULT_FRONTEND, FRONTENDS
    from repro.service.scheduler import RequestScheduler
    frontend = frontend or DEFAULT_FRONTEND
    if frontend not in FRONTENDS:
        raise ValueError(f"unknown frontend {frontend!r}; available: "
                         f"{', '.join(sorted(FRONTENDS))}")
    if session is None:
        session = prepare(targets, config=config, n_ranks=n_ranks,
                          machine=machine, backend=backend)
    scheduler = RequestScheduler(session,
                                 max_batch_requests=max_batch_requests,
                                 max_batch_reads=max_batch_reads,
                                 max_wait_s=max_wait_s,
                                 warm_caches=warm_caches,
                                 metrics=metrics,
                                 trace_log=trace_log)
    gateway = AlignmentGateway(session, scheduler,
                               cache_ttl_s=cache_ttl,
                               cache_max_entries=cache_max_entries,
                               max_pending=max_pending,
                               heap_budget_bytes=heap_budget_bytes)
    try:
        for name, index_targets in dict(indices or {}).items():
            gateway.register(name, index_targets)
    except BaseException:
        gateway.close()
        raise
    server = FRONTENDS[frontend](scheduler, host=host, port=port,
                                 request_timeout=request_timeout,
                                 gateway=gateway,
                                 client_timeout=client_timeout)
    return AlignmentService(session, scheduler, server, gateway=gateway)
