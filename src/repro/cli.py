"""Command-line interface.

The subcommands mirror how the original merAligner is used inside the
Meraculous/HipMer pipeline, plus a data generator and the plan-built
workloads:

``meraligner simulate``
    Generate a synthetic genome, contigs (FASTA) and reads (FASTQ or SeqDB).

``meraligner align``
    Run the fully parallel aligner on a contig FASTA and a read file, write a
    SAM file and print (or ``--json-report``) the per-phase report.  With
    ``--paired`` (interleaved R1/R2) or ``--reads2`` (two-file layout) the
    paired-end plan runs instead: pair joining, insert-window mate rescue and
    flag-complete paired SAM.  With ``--stream`` the library is read, aligned
    and written in bounded chunks (``--chunk-reads``), never materialised --
    the output file is byte-identical either way (``docs/streaming.md``).

``meraligner count``
    The seed-count workload: run the pipeline through the distributed seed
    lookup stage only and write the query-seed frequency histogram as TSV.

``meraligner screen``
    The exact-screen workload: probe only the Lemma 1 exact-match fast path
    and write per-read hit/miss rows as TSV.

``meraligner compare``
    Run merAligner and the BWA-mem-like / Bowtie2-like baselines (under the
    pMap driver) on the same inputs and print a Table II style comparison.

``meraligner serve``
    Build the index once, keep the ranks resident, and serve alignment
    (single and paired-end), count and screen requests over a socket through
    the micro-batching scheduler.

``meraligner query``
    Client of ``serve``: send a read file
    (``--workload align|count|screen|paired``) and write the response; also
    ``--stats`` (JSON service report), ``--metrics`` (the unified
    observability snapshot, ``--metrics-format prom`` for Prometheus text)
    and ``--shutdown``.  ``--stream`` switches to the chunked wire verbs so
    neither client nor server ever holds the whole library.

Missing or unreadable input files exit with code 2 and a one-line message on
stderr, uniformly across subcommands.

The CLI is a thin veneer over the public API (:mod:`repro.api`); everything
it does can be done programmatically (see the examples/ directory).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import os

from repro.backend import available_backends, default_backend_name
from repro.baselines.bowtie_like import BowtieLikeAligner
from repro.baselines.bwa_like import BwaLikeAligner
from repro.baselines.pmap import PMapFramework
from repro.core.config import AlignerConfig
from repro.core.pipeline import MerAligner, _normalize_reads
from repro.core.plan import PlanRunner, plan_for_workload
from repro.dna.synthetic import GenomeSpec, ReadSetSpec, make_dataset
from repro.io.errors import InputFileError
from repro.io.fasta import read_fasta, write_fasta
from repro.io.fastq import write_fastq
from repro.io.sam import write_sam
from repro.io.seqdb import records_to_seqdb
from repro.pgas.cost_model import EDISON_LIKE


def _check_input_file(path: Path, what: str) -> Path:
    """Validate an input *path* before handing it to a subcommand.

    Every subcommand funnels its input files through this check so the CLI
    fails uniformly: exit code 2 and a one-line ``meraligner: error:``
    message on stderr, instead of a traceback from deep inside a reader.
    """
    if not path.exists():
        raise InputFileError(f"{what} file not found: {path}")
    if path.is_dir():
        raise InputFileError(f"{what} path is a directory, not a file: {path}")
    if not os.access(path, os.R_OK):
        raise InputFileError(f"{what} file is not readable: {path}")
    return path


def _add_aligner_options(parser: argparse.ArgumentParser,
                         default_ranks: int = 8) -> None:
    """Aligner configuration flags shared by ``align`` and ``serve``."""
    parser.add_argument("--ranks", type=int, default=default_ranks,
                        help="number of simulated ranks (cores)")
    parser.add_argument("--seed-length", type=int, default=31)
    parser.add_argument("--no-aggregating-stores", action="store_true")
    parser.add_argument("--no-caches", action="store_true")
    parser.add_argument("--no-exact-match", action="store_true")
    parser.add_argument("--no-permute", action="store_true")
    parser.add_argument("--max-alignments-per-seed", type=int, default=8)
    parser.add_argument("--seed-stride", type=int, default=1)
    parser.add_argument("--bulk-lookups", action="store_true",
                        help="batch the aligning phase: aggregated bulk seed "
                             "lookups and fragment fetches over windows of reads")
    parser.add_argument("--lookup-batch-size", type=int, default=64,
                        help="work units per bulk window (with --bulk-lookups): "
                             "reads, or whole R1/R2 pairs in the paired "
                             "workload")
    parser.add_argument("--insert-size", type=int, default=240,
                        help="expected paired-end insert size: centers the "
                             "mate-rescue search window and the proper-pair "
                             "TLEN check (paired workload only)")
    parser.add_argument("--insert-slack", type=int, default=60,
                        help="tolerated insert-size deviation (the mate-"
                             "rescue band half-width)")
    parser.add_argument("--no-mate-rescue", action="store_true",
                        help="disable banded-SW mate rescue in the paired "
                             "workload")
    parser.add_argument("--backend",
                        choices=sorted(available_backends()),
                        default=None,
                        help="execution backend: cooperative (deterministic "
                             "in-process driver, the default), threaded (one "
                             "OS thread per rank), or process (one OS process "
                             "per rank with a shared-memory heap); every "
                             "backend writes byte-identical SAM output. "
                             "Defaults to $REPRO_BACKEND or cooperative.")


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__
    parser = argparse.ArgumentParser(
        prog="meraligner",
        description="merAligner reproduction: fully parallel seed-and-extend "
                    "sequence alignment on a simulated PGAS runtime")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="generate a synthetic genome, contigs and reads")
    simulate.add_argument("--output-dir", type=Path, required=True)
    simulate.add_argument("--genome-length", type=int, default=50_000)
    simulate.add_argument("--n-contigs", type=int, default=80)
    simulate.add_argument("--repeat-fraction", type=float, default=0.05)
    simulate.add_argument("--coverage", type=float, default=4.0)
    simulate.add_argument("--read-length", type=int, default=100)
    simulate.add_argument("--error-rate", type=float, default=0.005)
    simulate.add_argument("--paired", action="store_true",
                          help="emit an interleaved paired-end library "
                               "(insert-size-distributed FR templates)")
    simulate.add_argument("--insert-size", type=int, default=240,
                          help="mean paired-end insert size (with --paired)")
    simulate.add_argument("--insert-sd", type=int, default=20,
                          help="insert-size standard deviation (with --paired)")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--reads-format", choices=("fastq", "seqdb"),
                          default="fastq")

    align = subparsers.add_parser(
        "align", help="align reads (FASTQ/SeqDB) against contigs (FASTA)")
    align.add_argument("--targets", type=Path, required=True,
                       help="FASTA file of target/contig sequences "
                            "(.gz transparently decompressed)")
    align.add_argument("--reads", type=Path, required=True,
                       help="FASTQ or SeqDB file of reads "
                            "(.fastq.gz transparently decompressed); with "
                            "--paired, interleaved R1/R2 records")
    align.add_argument("--paired", action="store_true",
                       help="paired-end mode: treat --reads as interleaved "
                            "R1/R2 (or pass the mates via --reads2) and "
                            "write flag-complete paired SAM with mate "
                            "rescue")
    align.add_argument("--reads2", type=Path, default=None,
                       help="second FASTQ file holding every R2 mate "
                            "(implies --paired; --reads then holds R1)")
    align.add_argument("--output", type=Path, required=True,
                       help="SAM file to write")
    align.add_argument("--json-report", type=Path, default=None,
                       help="also write the per-phase report (timings, "
                            "communication counters, cache stats) as JSON")
    align.add_argument("--stream", action="store_true",
                       help="bounded-memory streaming: read the library in "
                            "chunks and append each chunk's SAM records to "
                            "--output as they finish, never holding the "
                            "whole library (or its alignments) in memory; "
                            "the file written is byte-identical to the "
                            "materialised run")
    align.add_argument("--chunk-reads", type=int, default=4096,
                       help="reads per streamed chunk (with --stream; "
                            "paired mode rounds down to whole pairs)")
    _add_aligner_options(align, default_ranks=8)

    workload_parsers = {
        "count": ("seed-count workload: distributed query-seed frequency "
                  "histogram (stops after the seed-lookup stage)",
                  "TSV file to write (occurrences histogram)"),
        "screen": ("exact-screen workload: per-read exact-match hit/miss "
                   "TSV (runs only the exact-match fast path)",
                   "TSV file to write (one hit/miss row per read)"),
    }
    for name, (help_text, output_help) in workload_parsers.items():
        workload = subparsers.add_parser(name, help=help_text)
        workload.add_argument("--targets", type=Path, required=True,
                              help="FASTA file of target/contig sequences "
                                   "(.gz transparently decompressed)")
        workload.add_argument("--reads", type=Path, required=True,
                              help="FASTQ or SeqDB file of reads")
        workload.add_argument("--output", type=Path, required=True,
                              help=output_help)
        workload.add_argument("--json-report", type=Path, default=None,
                              help="also write the per-phase/per-stage "
                                   "report as JSON")
        _add_aligner_options(workload, default_ranks=8)

    serve = subparsers.add_parser(
        "serve", help="persistent alignment service: build the index once, "
                      "serve many requests over a socket")
    serve.add_argument("--targets", type=Path, required=True,
                       help="FASTA file of target/contig sequences "
                            "(.gz transparently decompressed)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7679,
                       help="TCP port to listen on (0 = OS-assigned)")
    serve.add_argument("--max-batch-requests", type=int, default=8,
                       help="maximum requests coalesced into one micro-batch")
    serve.add_argument("--max-wait-ms", type=float, default=20.0,
                       help="micro-batching latency budget: how long to wait "
                            "for more requests after the first one arrives")
    serve.add_argument("--trace-log", type=Path, default=None,
                       help="append one JSON line per served request "
                            "(enqueue/batch-formed/executed/demuxed "
                            "timestamps in wall and virtual time)")
    serve.add_argument("--index", action="append", default=[],
                       metavar="NAME=FASTA", dest="indices",
                       help="additional named resident index (repeatable); "
                            "clients route to it with query --index NAME")
    serve.add_argument("--cache-ttl", type=float, default=0.0,
                       help="seconds an exact-duplicate request stays "
                            "servable from the gateway result cache "
                            "(default 0: cache disabled)")
    serve.add_argument("--cache-max-entries", type=int, default=1024,
                       help="LRU capacity of the gateway result cache")
    serve.add_argument("--max-pending", type=int, default=None,
                       help="admission bound: pending requests past this "
                            "get an explicit BUSY reply "
                            "(default: unbounded)")
    serve.add_argument("--heap-budget-mb", type=float, default=None,
                       help="modelled heap budget (MiB) across resident "
                            "indices; registering past it LRU-evicts "
                            "unpinned indices")
    serve.add_argument("--frontend", choices=("async", "thread"),
                       default="async",
                       help="connection front-end: 'async' multiplexes all "
                            "clients on one event loop (default), 'thread' "
                            "dedicates a thread per connection; both speak "
                            "byte-identical protocol")
    serve.add_argument("--client-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="slow-loris guard: drop connections whose reads "
                            "or writes stall longer than this "
                            "(default: no timeout)")
    _add_aligner_options(serve, default_ranks=8)

    query = subparsers.add_parser(
        "query", help="client of 'serve': align a read file, write SAM")
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=7679)
    query.add_argument("--reads", type=Path, default=None,
                       help="FASTQ file of reads to align "
                            "(.fastq.gz transparently decompressed)")
    query.add_argument("--workload",
                       choices=("align", "count", "screen", "paired"),
                       default="align",
                       help="which plan workload to request: align (SAM), "
                            "count (seed-frequency TSV), screen "
                            "(hit/miss TSV) or paired (interleaved R1/R2 "
                            "reads, paired SAM)")
    query.add_argument("--output", type=Path, default=None,
                       help="response file to write (default: stdout)")
    query.add_argument("--stream", action="store_true",
                       help="use the streaming wire verbs (ALIGNSTREAM "
                            "family): send --reads in bounded chunks over "
                            "one connection and write response parts as "
                            "they arrive -- neither side materialises the "
                            "library; output is byte-identical to the "
                            "one-shot request")
    query.add_argument("--chunk-reads", type=int, default=4096,
                       help="reads per streamed chunk (with --stream)")
    query.add_argument("--stats", action="store_true",
                       help="print the service's JSON statistics report")
    query.add_argument("--metrics", action="store_true",
                       help="print the service's unified metrics snapshot "
                            "(registry, service, session, comm and cache "
                            "counters)")
    query.add_argument("--metrics-format", choices=("json", "prom"),
                       default="json",
                       help="metrics exposition format (with --metrics): "
                            "the JSON snapshot document or Prometheus text")
    query.add_argument("--index", default=None,
                       help="route to a named resident index of a "
                            "gateway-backed server (default: the server's "
                            "default index)")
    query.add_argument("--tenant", default=None,
                       help="tenant name for fair admission accounting")
    query.add_argument("--indices", action="store_true",
                       help="print the server's resident indices as JSON")
    query.add_argument("--register", default=None, metavar="NAME=FASTA",
                       help="register a named resident index from a "
                            "server-side FASTA path")
    query.add_argument("--evict", default=None, metavar="NAME",
                       help="evict a named resident index")
    query.add_argument("--shutdown", action="store_true",
                       help="ask the server to shut down cleanly")
    query.add_argument("--timeout", type=float, default=300.0)
    query.add_argument("--connect-retries", type=int, default=0,
                       help="retry refused connections this many times with "
                            "exponential backoff + jitter (default 0: fail "
                            "immediately)")

    compare = subparsers.add_parser(
        "compare", help="compare merAligner against the pMap-driven baselines")
    compare.add_argument("--targets", type=Path, required=True)
    compare.add_argument("--reads", type=Path, required=True)
    compare.add_argument("--ranks", type=int, default=16)
    compare.add_argument("--seed-length", type=int, default=31)

    return parser


def _config_from_args(args: argparse.Namespace) -> AlignerConfig:
    return AlignerConfig(
        seed_length=args.seed_length,
        fragment_length=max(2000, args.seed_length * 10),
        use_aggregating_stores=not args.no_aggregating_stores,
        use_seed_index_cache=not args.no_caches,
        use_target_cache=not args.no_caches,
        use_exact_match_optimization=not args.no_exact_match,
        permute_reads=not args.no_permute,
        max_alignments_per_seed=args.max_alignments_per_seed,
        seed_stride=args.seed_stride,
        use_bulk_lookups=getattr(args, "bulk_lookups", False),
        lookup_batch_size=getattr(args, "lookup_batch_size", 64),
        use_mate_rescue=not getattr(args, "no_mate_rescue", False),
        insert_size=getattr(args, "insert_size", 240),
        insert_slack=getattr(args, "insert_slack", 60),
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    args.output_dir.mkdir(parents=True, exist_ok=True)
    genome_spec = GenomeSpec(name="simulated", genome_length=args.genome_length,
                             n_contigs=args.n_contigs,
                             repeat_fraction=args.repeat_fraction)
    read_spec = ReadSetSpec(coverage=args.coverage, read_length=args.read_length,
                            error_rate=args.error_rate, paired=args.paired,
                            insert_size=args.insert_size,
                            insert_sd=args.insert_sd)
    genome, reads = make_dataset(genome_spec, read_spec, seed=args.seed)
    contig_path = args.output_dir / "contigs.fa"
    write_fasta(contig_path, [(f"contig{i:05d}", seq)
                              for i, seq in enumerate(genome.contigs)])
    if args.reads_format == "fastq":
        reads_path = args.output_dir / "reads.fastq"
        write_fastq(reads_path, reads)
    else:
        reads_path = args.output_dir / "reads.seqdb"
        records_to_seqdb(reads_path, reads)
    print(f"wrote {len(genome.contigs)} contigs to {contig_path}")
    print(f"wrote {len(reads)} reads to {reads_path}")
    return 0


def _cmd_align(args: argparse.Namespace) -> int:
    _check_input_file(args.targets, "targets")
    _check_input_file(args.reads, "reads")
    if args.reads2 is not None:
        _check_input_file(args.reads2, "reads2")
    if args.stream:
        return _cmd_align_stream(args)
    if args.paired or args.reads2 is not None:
        return _cmd_align_paired(args)
    config = _config_from_args(args)
    backend = args.backend or default_backend_name()
    report = MerAligner(config).run(args.targets, args.reads, n_ranks=args.ranks,
                                    machine=EDISON_LIKE, backend=backend)
    contigs = read_fasta(args.targets)
    write_sam(args.output, report.alignments,
              [record.name for record in contigs],
              [len(record.sequence) for record in contigs])
    print(f"backend: {backend} ({args.ranks} ranks)")
    print(f"aligned {report.counters.reads_aligned} / "
          f"{report.counters.reads_processed} reads "
          f"({report.counters.aligned_fraction:.1%})")
    print(f"exact-match fast path: {report.counters.exact_fraction:.1%} of aligned reads")
    print("phase breakdown (modelled seconds):")
    for phase in report.phases:
        print(f"  {phase.name:28s} {phase.elapsed:.6f}")
    print(f"  {'total':28s} {report.total_time:.6f}")
    print(f"wrote {len(report.alignments)} alignments to {args.output}")
    if args.json_report is not None:
        report.write_json(args.json_report)
        print(f"wrote JSON report to {args.json_report}")
    return 0


def _cmd_align_stream(args: argparse.Namespace) -> int:
    """``align --stream``: chunked source -> resident session -> incremental
    SAM, writing each part as it finishes (bounded memory end to end)."""
    from repro.stream import open_read_stream

    config = _config_from_args(args)
    backend = args.backend or default_backend_name()
    paired = args.paired or args.reads2 is not None
    session = MerAligner(config).prepare(args.targets, n_ranks=args.ranks,
                                         machine=EDISON_LIKE, backend=backend)
    try:
        chunks = open_read_stream(args.reads, chunk_reads=args.chunk_reads,
                                  paired=paired, reads2=args.reads2)
        stream = (session.align_paired_stream(chunks) if paired
                  else session.align_stream(chunks))
        final = None
        with open(args.output, "w", encoding="ascii") as handle:
            for part in stream:
                handle.write(part.text)
                if part.final:
                    final = part
        counters = final.counters
        print(f"backend: {backend} ({args.ranks} ranks, streaming, "
              f"{args.chunk_reads} reads/chunk)")
        if paired:
            print(f"aligned {counters.reads_aligned} / "
                  f"{counters.reads_processed} mates over "
                  f"{counters.pairs_processed} pairs in {final.n_chunks} "
                  "chunks")
        else:
            print(f"aligned {counters.reads_aligned} / "
                  f"{counters.reads_processed} reads in {final.n_chunks} "
                  "chunks")
        print(f"wrote {counters.alignments_reported} alignments to "
              f"{args.output}")
        return 0
    finally:
        session.close()


def _cmd_align_paired(args: argparse.Namespace) -> int:
    """``align --paired`` / ``align --reads2``: the paired plan workload."""
    from repro.core.plan import normalize_paired_reads
    from repro.io.sam import paired_sam_text

    config = _config_from_args(args)
    backend = args.backend or default_backend_name()
    try:
        reads = normalize_paired_reads(args.reads, args.reads2)
    except ValueError as exc:
        raise InputFileError(str(exc)) from exc
    contigs = read_fasta(args.targets)
    result = PlanRunner(plan_for_workload("paired"), config).run(
        contigs, reads, n_ranks=args.ranks, machine=EDISON_LIKE,
        backend=backend)
    pairs = result.output
    text = paired_sam_text(pairs, [record.name for record in contigs],
                           [len(record.sequence) for record in contigs])
    args.output.write_text(text, encoding="ascii")
    counters = result.report.counters
    proper = sum(1 for pair in pairs if pair.proper)
    print(f"backend: {backend} ({args.ranks} ranks)")
    print(f"aligned {counters.reads_aligned} / {counters.reads_processed} "
          f"mates over {counters.pairs_processed} pairs "
          f"({proper} proper pairs)")
    print(f"mate rescue: {counters.mate_rescues} rescued of "
          f"{counters.mate_rescue_attempts} attempts")
    print("phase breakdown (modelled seconds):")
    for phase in result.report.phases:
        print(f"  {phase.name:28s} {phase.elapsed:.6f}")
    print(f"  {'total':28s} {result.report.total_time:.6f}")
    print(f"wrote {2 * len(pairs)} paired records to {args.output}")
    if args.json_report is not None:
        result.report.write_json(args.json_report)
        print(f"wrote JSON report to {args.json_report}")
    return 0


def _cmd_workload(args: argparse.Namespace, workload: str) -> int:
    """Shared driver of the plan-built TSV workloads (count / screen)."""
    _check_input_file(args.targets, "targets")
    _check_input_file(args.reads, "reads")
    config = _config_from_args(args)
    backend = args.backend or default_backend_name()
    # Parse the FASTA once: the runner accepts the records, and the screen
    # renderer reuses their names.
    targets = read_fasta(args.targets)
    result = PlanRunner(plan_for_workload(workload), config).run(
        targets, args.reads, n_ranks=args.ranks,
        machine=EDISON_LIKE, backend=backend)
    summary = result.output
    print(f"backend: {backend} ({args.ranks} ranks)")
    if workload == "count":
        text = summary.to_tsv()
        print(f"looked up {summary.n_seed_lookups} query seeds over "
              f"{summary.n_reads} reads; {summary.n_missing} absent from the "
              f"index ({len(summary.histogram)} distinct occurrence counts)")
        what = "histogram"
    else:
        text = summary.to_tsv([record.name for record in targets])
        print(f"screened {len(summary.rows)} reads: {summary.n_hits} exact "
              f"hits ({summary.n_hits / len(summary.rows):.1%})"
              if summary.rows else "screened 0 reads")
        what = "screen rows"
    args.output.write_text(text, encoding="ascii")
    print(f"wrote {what} to {args.output}")
    if args.json_report is not None:
        result.report.write_json(args.json_report)
        print(f"wrote JSON report to {args.json_report}")
    return 0


def _parse_named_indices(specs: list[str]) -> dict[str, Path]:
    """Parse repeated ``--index NAME=FASTA`` flags into a name -> path map."""
    indices: dict[str, Path] = {}
    for spec in specs:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise InputFileError(
                f"malformed --index {spec!r} (expected NAME=FASTA)")
        if name in indices:
            raise InputFileError(f"duplicate --index name {name!r}")
        indices[name] = _check_input_file(Path(path), f"index {name!r}")
    return indices


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro import api

    _check_input_file(args.targets, "targets")
    indices = _parse_named_indices(args.indices)
    config = _config_from_args(args)
    backend = args.backend or default_backend_name()
    print(f"building index from {args.targets} "
          f"({args.ranks} ranks, {backend} backend)...", flush=True)
    session = MerAligner(config).prepare(args.targets, n_ranks=args.ranks,
                                         machine=EDISON_LIKE, backend=backend)
    print(f"index ready: {session.prepared.seed_index.n_keys} seeds over "
          f"{session.prepared.n_fragments} fragments "
          f"(modelled build time "
          f"{session.prepared.index_construction_time:.6f}s)", flush=True)
    heap_budget = (int(args.heap_budget_mb * 2 ** 20)
                   if args.heap_budget_mb is not None else None)
    service = api.serve(None, session=session, host=args.host, port=args.port,
                        max_batch_requests=args.max_batch_requests,
                        max_wait_s=args.max_wait_ms / 1000.0,
                        trace_log=args.trace_log,
                        indices=indices, cache_ttl=args.cache_ttl,
                        cache_max_entries=args.cache_max_entries,
                        max_pending=args.max_pending,
                        heap_budget_bytes=heap_budget,
                        frontend=args.frontend,
                        client_timeout=args.client_timeout)
    for name in sorted(indices):
        print(f"registered index {name!r} from {indices[name]}", flush=True)
    print(f"serving on {service.host}:{service.port} "
          f"[{args.frontend} front-end] "
          "(PING / ALIGN / PAIRED / COUNT / SCREEN / STATS / METRICS / "
          "INDICES / REGISTER / EVICT / SHUTDOWN)", flush=True)
    if args.trace_log is not None:
        print(f"tracing requests to {args.trace_log}", flush=True)
    try:
        service.join()
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    stats = service.scheduler.stats()
    print(f"served {stats.requests} requests in {stats.batches} batches "
          f"(occupancy {stats.batch_occupancy:.2f}); shutdown complete",
          flush=True)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.io.fastq import read_fastq
    from repro.service import ServiceBusyError, SocketAlignmentClient

    client = SocketAlignmentClient(host=args.host, port=args.port,
                                   timeout=args.timeout,
                                   connect_retries=args.connect_retries)
    try:
        return _run_query(args, client, read_fastq)
    except ServiceBusyError as exc:
        # The gateway's explicit admission rejection: distinct exit code so
        # scripts can tell "retry later" from a hard failure.
        print(f"meraligner: busy: {exc}", file=sys.stderr)
        return 3


def _run_query(args: argparse.Namespace, client, read_fastq) -> int:
    ran_command = False
    if args.register is not None:
        name, sep, path = args.register.partition("=")
        if not sep or not name or not path:
            raise InputFileError(
                f"malformed --register {args.register!r} "
                "(expected NAME=FASTA)")
        summary = client.register_index(name, path)
        print(json.dumps(summary, indent=2, sort_keys=True))
        ran_command = True
    if args.reads is not None:
        _check_input_file(args.reads, "reads")
        workload = getattr(args, "workload", "align")
        if args.stream:
            # The bounded-memory path: the client chunks the file itself
            # (never materialising it) and response parts are written as
            # they arrive.
            parts = client.stream_parts(workload, args.reads,
                                        chunk_reads=args.chunk_reads,
                                        index=args.index, tenant=args.tenant)
            if args.output is not None:
                records = 0
                with open(args.output, "w", encoding="ascii") as handle:
                    for part in parts:
                        handle.write(part)
                        records += sum(
                            1 for line in part.splitlines()
                            if line and not line.startswith(("@", "#")))
                noun = ("alignments" if workload in ("align", "paired")
                        else f"{workload} rows")
                print(f"wrote {records} {noun} to {args.output} (streamed)")
            else:
                for part in parts:
                    sys.stdout.write(part)
        else:
            text = client.workload_text(workload, read_fastq(args.reads),
                                        index=args.index, tenant=args.tenant)
            if args.output is not None:
                args.output.write_text(text, encoding="ascii")
                if workload in ("align", "paired"):
                    records = sum(1 for line in text.splitlines()
                                  if line and not line.startswith("@"))
                    print(f"wrote {records} alignments to {args.output}")
                else:
                    rows = sum(1 for line in text.splitlines()
                               if line and not line.startswith("#"))
                    print(f"wrote {rows} {workload} rows to {args.output}")
            else:
                sys.stdout.write(text)
        ran_command = True
    if args.indices:
        print(json.dumps(client.indices(), indent=2, sort_keys=True))
        ran_command = True
    if args.evict is not None:
        client.evict_index(args.evict)
        print(f"evicted index {args.evict!r}")
        ran_command = True
    if args.stats:
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
        ran_command = True
    if args.metrics:
        if args.metrics_format == "prom":
            sys.stdout.write(client.metrics_text())
        else:
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
        ran_command = True
    if args.shutdown:
        client.shutdown()
        print("server shutdown requested")
        ran_command = True
    if not ran_command:
        print("nothing to do: pass --reads, --stats, --indices, --register, "
              "--evict and/or --shutdown", file=sys.stderr)
        return 2
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    _check_input_file(args.targets, "targets")
    _check_input_file(args.reads, "reads")
    targets = [record.sequence for record in read_fasta(args.targets)]
    reads = _normalize_reads(args.reads)
    config = AlignerConfig(seed_length=args.seed_length,
                           fragment_length=max(2000, args.seed_length * 10),
                           seed_stride=2)
    mer = MerAligner(config).run(targets, reads, n_ranks=args.ranks,
                                 machine=EDISON_LIKE)
    bwa = PMapFramework(lambda: BwaLikeAligner(seed_length=args.seed_length),
                        n_instances=args.ranks).run(targets, reads)
    bowtie = PMapFramework(lambda: BowtieLikeAligner(),
                           n_instances=args.ranks).run(targets, reads)
    header = (f"{'aligner':<16} {'index (s)':>12} {'mapping (s)':>12} "
              f"{'total (s)':>12} {'aligned':>9}")
    print(header)
    print("-" * len(header))
    print(f"{'merAligner':<16} {mer.index_construction_time:>12.5f} "
          f"{mer.alignment_time:>12.5f} {mer.total_time:>12.5f} "
          f"{mer.counters.aligned_fraction:>9.3f}")
    for report in (bwa, bowtie):
        print(f"{report.tool_name:<16} {report.index_construction_time:>12.5f} "
              f"{report.mapping_time:>12.5f} {report.total_time:>12.5f} "
              f"{report.aligned_fraction:>9.3f}")
    print("\n(index construction is parallel for merAligner, serial for the "
          "baselines -- the structural difference Table II of the paper isolates)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    import functools
    handlers = {
        "simulate": _cmd_simulate,
        "align": _cmd_align,
        "count": functools.partial(_cmd_workload, workload="count"),
        "screen": functools.partial(_cmd_workload, workload="screen"),
        "compare": _cmd_compare,
        "serve": _cmd_serve,
        "query": _cmd_query,
    }
    # argparse enforces that args.command is one of the handlers.
    try:
        return handlers[args.command](args)
    except InputFileError as exc:
        print(f"meraligner: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
