"""Command-line interface.

Five subcommands mirror how the original merAligner is used inside the
Meraculous/HipMer pipeline, plus a data generator for experimentation:

``meraligner simulate``
    Generate a synthetic genome, contigs (FASTA) and reads (FASTQ or SeqDB).

``meraligner align``
    Run the fully parallel aligner on a contig FASTA and a read file, write a
    SAM file and print (or ``--json-report``) the per-phase report.

``meraligner compare``
    Run merAligner and the BWA-mem-like / Bowtie2-like baselines (under the
    pMap driver) on the same inputs and print a Table II style comparison.

``meraligner serve``
    Build the index once, keep the ranks resident, and serve alignment
    requests over a socket through the micro-batching scheduler.

``meraligner query``
    Client of ``serve``: send a read file, write the SAM response; also
    ``--stats`` (JSON service report) and ``--shutdown``.

The CLI is a thin veneer over the public API; everything it does can be done
programmatically (see the examples/ directory).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.backend import available_backends, default_backend_name
from repro.baselines.bowtie_like import BowtieLikeAligner
from repro.baselines.bwa_like import BwaLikeAligner
from repro.baselines.pmap import PMapFramework
from repro.core.config import AlignerConfig
from repro.core.pipeline import MerAligner, _normalize_reads
from repro.dna.synthetic import GenomeSpec, ReadSetSpec, make_dataset
from repro.io.fasta import read_fasta, write_fasta
from repro.io.fastq import write_fastq
from repro.io.sam import write_sam
from repro.io.seqdb import records_to_seqdb
from repro.pgas.cost_model import EDISON_LIKE


def _add_aligner_options(parser: argparse.ArgumentParser,
                         default_ranks: int = 8) -> None:
    """Aligner configuration flags shared by ``align`` and ``serve``."""
    parser.add_argument("--ranks", type=int, default=default_ranks,
                        help="number of simulated ranks (cores)")
    parser.add_argument("--seed-length", type=int, default=31)
    parser.add_argument("--no-aggregating-stores", action="store_true")
    parser.add_argument("--no-caches", action="store_true")
    parser.add_argument("--no-exact-match", action="store_true")
    parser.add_argument("--no-permute", action="store_true")
    parser.add_argument("--max-alignments-per-seed", type=int, default=8)
    parser.add_argument("--seed-stride", type=int, default=1)
    parser.add_argument("--bulk-lookups", action="store_true",
                        help="batch the aligning phase: aggregated bulk seed "
                             "lookups and fragment fetches over windows of reads")
    parser.add_argument("--lookup-batch-size", type=int, default=64,
                        help="reads per bulk window (with --bulk-lookups)")
    parser.add_argument("--backend",
                        choices=sorted(available_backends()),
                        default=None,
                        help="execution backend: cooperative (deterministic "
                             "in-process driver, the default), threaded (one "
                             "OS thread per rank), or process (one OS process "
                             "per rank with a shared-memory heap); every "
                             "backend writes byte-identical SAM output. "
                             "Defaults to $REPRO_BACKEND or cooperative.")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="meraligner",
        description="merAligner reproduction: fully parallel seed-and-extend "
                    "sequence alignment on a simulated PGAS runtime")
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="generate a synthetic genome, contigs and reads")
    simulate.add_argument("--output-dir", type=Path, required=True)
    simulate.add_argument("--genome-length", type=int, default=50_000)
    simulate.add_argument("--n-contigs", type=int, default=80)
    simulate.add_argument("--repeat-fraction", type=float, default=0.05)
    simulate.add_argument("--coverage", type=float, default=4.0)
    simulate.add_argument("--read-length", type=int, default=100)
    simulate.add_argument("--error-rate", type=float, default=0.005)
    simulate.add_argument("--paired", action="store_true")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--reads-format", choices=("fastq", "seqdb"),
                          default="fastq")

    align = subparsers.add_parser(
        "align", help="align reads (FASTQ/SeqDB) against contigs (FASTA)")
    align.add_argument("--targets", type=Path, required=True,
                       help="FASTA file of target/contig sequences "
                            "(.gz transparently decompressed)")
    align.add_argument("--reads", type=Path, required=True,
                       help="FASTQ or SeqDB file of reads "
                            "(.fastq.gz transparently decompressed)")
    align.add_argument("--output", type=Path, required=True,
                       help="SAM file to write")
    align.add_argument("--json-report", type=Path, default=None,
                       help="also write the per-phase report (timings, "
                            "communication counters, cache stats) as JSON")
    _add_aligner_options(align, default_ranks=8)

    serve = subparsers.add_parser(
        "serve", help="persistent alignment service: build the index once, "
                      "serve many requests over a socket")
    serve.add_argument("--targets", type=Path, required=True,
                       help="FASTA file of target/contig sequences "
                            "(.gz transparently decompressed)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7679,
                       help="TCP port to listen on (0 = OS-assigned)")
    serve.add_argument("--max-batch-requests", type=int, default=8,
                       help="maximum requests coalesced into one micro-batch")
    serve.add_argument("--max-wait-ms", type=float, default=20.0,
                       help="micro-batching latency budget: how long to wait "
                            "for more requests after the first one arrives")
    _add_aligner_options(serve, default_ranks=8)

    query = subparsers.add_parser(
        "query", help="client of 'serve': align a read file, write SAM")
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=7679)
    query.add_argument("--reads", type=Path, default=None,
                       help="FASTQ file of reads to align "
                            "(.fastq.gz transparently decompressed)")
    query.add_argument("--output", type=Path, default=None,
                       help="SAM file to write (default: stdout)")
    query.add_argument("--stats", action="store_true",
                       help="print the service's JSON statistics report")
    query.add_argument("--shutdown", action="store_true",
                       help="ask the server to shut down cleanly")
    query.add_argument("--timeout", type=float, default=300.0)

    compare = subparsers.add_parser(
        "compare", help="compare merAligner against the pMap-driven baselines")
    compare.add_argument("--targets", type=Path, required=True)
    compare.add_argument("--reads", type=Path, required=True)
    compare.add_argument("--ranks", type=int, default=16)
    compare.add_argument("--seed-length", type=int, default=31)

    return parser


def _config_from_args(args: argparse.Namespace) -> AlignerConfig:
    return AlignerConfig(
        seed_length=args.seed_length,
        fragment_length=max(2000, args.seed_length * 10),
        use_aggregating_stores=not args.no_aggregating_stores,
        use_seed_index_cache=not args.no_caches,
        use_target_cache=not args.no_caches,
        use_exact_match_optimization=not args.no_exact_match,
        permute_reads=not args.no_permute,
        max_alignments_per_seed=args.max_alignments_per_seed,
        seed_stride=args.seed_stride,
        use_bulk_lookups=getattr(args, "bulk_lookups", False),
        lookup_batch_size=getattr(args, "lookup_batch_size", 64),
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    args.output_dir.mkdir(parents=True, exist_ok=True)
    genome_spec = GenomeSpec(name="simulated", genome_length=args.genome_length,
                             n_contigs=args.n_contigs,
                             repeat_fraction=args.repeat_fraction)
    read_spec = ReadSetSpec(coverage=args.coverage, read_length=args.read_length,
                            error_rate=args.error_rate, paired=args.paired)
    genome, reads = make_dataset(genome_spec, read_spec, seed=args.seed)
    contig_path = args.output_dir / "contigs.fa"
    write_fasta(contig_path, [(f"contig{i:05d}", seq)
                              for i, seq in enumerate(genome.contigs)])
    if args.reads_format == "fastq":
        reads_path = args.output_dir / "reads.fastq"
        write_fastq(reads_path, reads)
    else:
        reads_path = args.output_dir / "reads.seqdb"
        records_to_seqdb(reads_path, reads)
    print(f"wrote {len(genome.contigs)} contigs to {contig_path}")
    print(f"wrote {len(reads)} reads to {reads_path}")
    return 0


def _cmd_align(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    backend = args.backend or default_backend_name()
    report = MerAligner(config).run(args.targets, args.reads, n_ranks=args.ranks,
                                    machine=EDISON_LIKE, backend=backend)
    contigs = read_fasta(args.targets)
    write_sam(args.output, report.alignments,
              [record.name for record in contigs],
              [len(record.sequence) for record in contigs])
    print(f"backend: {backend} ({args.ranks} ranks)")
    print(f"aligned {report.counters.reads_aligned} / "
          f"{report.counters.reads_processed} reads "
          f"({report.counters.aligned_fraction:.1%})")
    print(f"exact-match fast path: {report.counters.exact_fraction:.1%} of aligned reads")
    print("phase breakdown (modelled seconds):")
    for phase in report.phases:
        print(f"  {phase.name:28s} {phase.elapsed:.6f}")
    print(f"  {'total':28s} {report.total_time:.6f}")
    print(f"wrote {len(report.alignments)} alignments to {args.output}")
    if args.json_report is not None:
        report.write_json(args.json_report)
        print(f"wrote JSON report to {args.json_report}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import AlignmentServer, RequestScheduler

    config = _config_from_args(args)
    backend = args.backend or default_backend_name()
    print(f"building index from {args.targets} "
          f"({args.ranks} ranks, {backend} backend)...", flush=True)
    session = MerAligner(config).prepare(args.targets, n_ranks=args.ranks,
                                         machine=EDISON_LIKE, backend=backend)
    print(f"index ready: {session.prepared.seed_index.n_keys} seeds over "
          f"{session.prepared.n_fragments} fragments "
          f"(modelled build time "
          f"{session.prepared.index_construction_time:.6f}s)", flush=True)
    scheduler = RequestScheduler(session,
                                 max_batch_requests=args.max_batch_requests,
                                 max_wait_s=args.max_wait_ms / 1000.0)
    server = AlignmentServer(scheduler, host=args.host, port=args.port)
    print(f"serving on {server.host}:{server.port} "
          "(PING / ALIGN / STATS / SHUTDOWN)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        scheduler.close()
        session.close()
    stats = scheduler.stats()
    print(f"served {stats.requests} requests in {stats.batches} batches "
          f"(occupancy {stats.batch_occupancy:.2f}); shutdown complete",
          flush=True)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.io.fastq import read_fastq
    from repro.service import SocketAlignmentClient

    client = SocketAlignmentClient(host=args.host, port=args.port,
                                   timeout=args.timeout)
    ran_command = False
    if args.reads is not None:
        sam = client.align_sam(read_fastq(args.reads))
        if args.output is not None:
            args.output.write_text(sam, encoding="ascii")
            records = sum(1 for line in sam.splitlines()
                          if line and not line.startswith("@"))
            print(f"wrote {records} alignments to {args.output}")
        else:
            sys.stdout.write(sam)
        ran_command = True
    if args.stats:
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
        ran_command = True
    if args.shutdown:
        client.shutdown()
        print("server shutdown requested")
        ran_command = True
    if not ran_command:
        print("nothing to do: pass --reads, --stats and/or --shutdown",
              file=sys.stderr)
        return 2
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    targets = [record.sequence for record in read_fasta(args.targets)]
    reads = _normalize_reads(args.reads)
    config = AlignerConfig(seed_length=args.seed_length,
                           fragment_length=max(2000, args.seed_length * 10),
                           seed_stride=2)
    mer = MerAligner(config).run(targets, reads, n_ranks=args.ranks,
                                 machine=EDISON_LIKE)
    bwa = PMapFramework(lambda: BwaLikeAligner(seed_length=args.seed_length),
                        n_instances=args.ranks).run(targets, reads)
    bowtie = PMapFramework(lambda: BowtieLikeAligner(),
                           n_instances=args.ranks).run(targets, reads)
    header = (f"{'aligner':<16} {'index (s)':>12} {'mapping (s)':>12} "
              f"{'total (s)':>12} {'aligned':>9}")
    print(header)
    print("-" * len(header))
    print(f"{'merAligner':<16} {mer.index_construction_time:>12.5f} "
          f"{mer.alignment_time:>12.5f} {mer.total_time:>12.5f} "
          f"{mer.counters.aligned_fraction:>9.3f}")
    for report in (bwa, bowtie):
        print(f"{report.tool_name:<16} {report.index_construction_time:>12.5f} "
              f"{report.mapping_time:>12.5f} {report.total_time:>12.5f} "
              f"{report.aligned_fraction:>9.3f}")
    print("\n(index construction is parallel for merAligner, serial for the "
          "baselines -- the structural difference Table II of the paper isolates)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "align": _cmd_align,
        "compare": _cmd_compare,
        "serve": _cmd_serve,
        "query": _cmd_query,
    }
    # argparse enforces that args.command is one of the handlers.
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
