"""A Bowtie2-flavoured baseline aligner.

Bowtie2 seeds with short fixed-length substrings (at most 31 bases -- the
paper sets the maximum, 31, with ``--very-fast``) taken at a coarse stride,
caps the number of hits it will extend per seed, and extends with SIMD
Smith-Waterman.  Its FFM-index construction (bowtie2-build) is roughly twice
as slow as BWA's in the paper's Table II, which the cost factor reflects.
"""

from __future__ import annotations

from repro.baselines.base import BaselineAligner, BaselineCostModel


class BowtieLikeAligner(BaselineAligner):
    """Bowtie2 stand-in: short seeds, coarse stride, tight hit cap."""

    name = "bowtie2-like"

    #: Bowtie2's maximum seed length.
    MAX_SEED_LENGTH = 31

    def __init__(self, seed_length: int = 31, very_fast: bool = True, **kwargs) -> None:
        seed_length = min(seed_length, self.MAX_SEED_LENGTH)
        # --very-fast: fewer seed extractions per read, fewer extensions.
        kwargs.setdefault("seed_stride", 22 if very_fast else 10)
        kwargs.setdefault("max_hits_per_seed", 8 if very_fast else 20)
        kwargs.setdefault("costs", BaselineCostModel(index_build_per_char=3.0e-6))
        super().__init__(seed_length=seed_length, **kwargs)
        self.very_fast = very_fast

    def _index_cost_factor(self) -> float:
        # bowtie2-build is roughly 2x slower than bwa index on the same input
        # (Table II: 10,916 s vs 5,384 s on the human contig set).
        return 2.0
