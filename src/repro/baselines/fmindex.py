"""Suffix array, BWT and FM-index (the substrate of the baseline aligners).

BWA and Bowtie2 are FM-index based: the reference is indexed once (serially)
by building its suffix array and Burrows-Wheeler transform, after which exact
occurrences of any pattern are found with backward search in time proportional
to the pattern length, and located through a sampled suffix array.
"""

from __future__ import annotations

import numpy as np

#: Sentinel terminating the indexed text (lexicographically smallest).
SENTINEL = "$"
#: Separator placed between concatenated target sequences.
SEPARATOR = "#"


def suffix_array(text: str) -> np.ndarray:
    """Suffix array of *text* by prefix doubling (O(n log^2 n), numpy-vectorised).

    The caller is expected to have appended a unique smallest sentinel; the
    function itself works for any string.
    """
    n = len(text)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    rank = np.frombuffer(text.encode("ascii"), dtype=np.uint8).astype(np.int64)
    sa = np.argsort(rank, kind="stable").astype(np.int64)
    k = 1
    while True:
        indices = np.arange(n, dtype=np.int64)
        second = np.full(n, -1, dtype=np.int64)
        valid = indices + k < n
        second[valid] = rank[indices[valid] + k]
        sa = np.lexsort((second, rank)).astype(np.int64)
        pairs = np.stack([rank[sa], second[sa]], axis=1)
        changed = np.ones(n, dtype=bool)
        changed[1:] = np.any(pairs[1:] != pairs[:-1], axis=1)
        new_rank = np.empty(n, dtype=np.int64)
        new_rank[sa] = np.cumsum(changed) - 1
        rank = new_rank
        if rank[sa[-1]] == n - 1:
            return sa
        k *= 2


def bwt_from_suffix_array(text: str, sa: np.ndarray) -> str:
    """Burrows-Wheeler transform of *text* given its suffix array."""
    if len(text) != len(sa):
        raise ValueError("suffix array length must match text length")
    chars = [text[i - 1] if i > 0 else text[-1] for i in sa]
    return "".join(chars)


class FMIndex:
    """FM-index over one text with backward search and sampled-SA locate."""

    def __init__(self, text: str, sa_sample_rate: int = 8) -> None:
        if SENTINEL in text:
            raise ValueError("text must not contain the sentinel character")
        if sa_sample_rate <= 0:
            raise ValueError("sa_sample_rate must be positive")
        self.text_length = len(text)
        indexed = text + SENTINEL
        self._sa = suffix_array(indexed)
        self._bwt = bwt_from_suffix_array(indexed, self._sa)
        self.sa_sample_rate = sa_sample_rate

        # Alphabet, C array (number of characters strictly smaller), Occ table.
        self.alphabet = sorted(set(indexed))
        self._char_to_idx = {ch: i for i, ch in enumerate(self.alphabet)}
        bwt_codes = np.array([self._char_to_idx[ch] for ch in self._bwt], dtype=np.int64)
        counts = np.bincount(bwt_codes, minlength=len(self.alphabet))
        self._C = np.concatenate(([0], np.cumsum(counts)[:-1]))
        one_hot = np.zeros((len(indexed), len(self.alphabet)), dtype=np.int32)
        one_hot[np.arange(len(indexed)), bwt_codes] = 1
        # occ[i, c] = number of occurrences of c in bwt[:i]
        self._occ = np.vstack([np.zeros((1, len(self.alphabet)), dtype=np.int64),
                               np.cumsum(one_hot, axis=0, dtype=np.int64)])
        # Sampled suffix array for locate().
        mask = self._sa % sa_sample_rate == 0
        self._sampled_positions = np.flatnonzero(mask)
        self._sampled_values = self._sa[mask]
        self._sampled_lookup = {int(pos): int(val)
                                for pos, val in zip(self._sampled_positions,
                                                    self._sampled_values)}

    # -- core operations -----------------------------------------------------------

    def occ(self, char: str, index: int) -> int:
        """Occurrences of *char* in ``bwt[:index]``."""
        code = self._char_to_idx.get(char)
        if code is None:
            return 0
        return int(self._occ[index, code])

    def lf(self, index: int) -> int:
        """Last-to-first mapping of BWT row *index*."""
        char = self._bwt[index]
        code = self._char_to_idx[char]
        return int(self._C[code]) + self.occ(char, index)

    def backward_search(self, pattern: str) -> tuple[int, int]:
        """Return the half-open SA interval ``[lo, hi)`` of *pattern*.

        An empty pattern matches everywhere; a pattern containing characters
        absent from the text returns an empty interval.
        """
        lo, hi = 0, len(self._bwt)
        for char in reversed(pattern):
            code = self._char_to_idx.get(char)
            if code is None:
                return 0, 0
            lo = int(self._C[code]) + int(self._occ[lo, code])
            hi = int(self._C[code]) + int(self._occ[hi, code])
            if lo >= hi:
                return 0, 0
        return lo, hi

    def count(self, pattern: str) -> int:
        """Number of occurrences of *pattern* in the text."""
        lo, hi = self.backward_search(pattern)
        return hi - lo

    def locate(self, pattern: str, limit: int | None = None) -> list[int]:
        """Text positions of *pattern* occurrences (unsorted order).

        Positions are recovered by LF-stepping from each SA row to the nearest
        sampled entry.  *limit* caps the number of positions returned.
        """
        lo, hi = self.backward_search(pattern)
        positions: list[int] = []
        for row in range(lo, hi):
            if limit is not None and len(positions) >= limit:
                break
            steps = 0
            current = row
            while current not in self._sampled_lookup:
                current = self.lf(current)
                steps += 1
            positions.append((self._sampled_lookup[current] + steps) % len(self._bwt))
        return positions

    # -- memory accounting (pMap needs the replicated index size) --------------------

    @property
    def index_nbytes(self) -> int:
        """Approximate resident size of the index (what pMap replicates per instance)."""
        return int(self._occ.nbytes + self._sampled_values.nbytes
                   + self._sampled_positions.nbytes + len(self._bwt))
