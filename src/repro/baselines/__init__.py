"""Baseline aligners and the pMap-style parallel driver.

The paper compares merAligner against BWA-mem and Bowtie2 executed under the
pMap framework (Table II, Fig 1 single points, Fig 11).  Those tools are
FM-index (BWT) based aligners whose *index construction is serial* and whose
index is *replicated* in every instance's memory -- the structural properties
the comparison is about.  This package rebuilds that structure from scratch:

* :mod:`repro.baselines.fmindex` -- suffix array, Burrows-Wheeler transform
  and an FM-index with backward search and sampled-SA locate.
* :mod:`repro.baselines.bwa_like` -- a BWA-mem-flavoured seed-and-extend
  aligner over the FM-index (long exact seeds, SW extension).
* :mod:`repro.baselines.bowtie_like` -- a Bowtie2-flavoured aligner (short
  fixed-length seeds, capped per-seed hits, "--very-fast" style policy).
* :mod:`repro.baselines.pmap` -- the pMap driver: serial index build, serial
  master-based read partitioning, embarrassingly parallel mapping.
"""

from repro.baselines.fmindex import suffix_array, bwt_from_suffix_array, FMIndex
from repro.baselines.base import BaselineAligner, BaselineCostModel
from repro.baselines.bwa_like import BwaLikeAligner
from repro.baselines.bowtie_like import BowtieLikeAligner
from repro.baselines.pmap import PMapFramework, PMapReport

__all__ = [
    "suffix_array",
    "bwt_from_suffix_array",
    "FMIndex",
    "BaselineAligner",
    "BaselineCostModel",
    "BwaLikeAligner",
    "BowtieLikeAligner",
    "PMapFramework",
    "PMapReport",
]
