"""Shared machinery of the FM-index baseline aligners.

The baselines exist to reproduce the *structural* comparison of the paper:
serial index construction + per-instance index replication (BWA-mem, Bowtie2
under pMap) versus merAligner's fully parallel construction + distributed
index.  Each baseline therefore tracks, in modelled seconds consistent with
the merAligner cost model, how long its serial index build takes and how long
mapping each read takes, so the pMap driver can assemble Table II / Fig 1 /
Fig 11 style numbers.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.alignment.extend import SeedHit, extend_seed_hit
from repro.alignment.result import Alignment
from repro.alignment.scoring import DEFAULT_SCORING, ScoringScheme
from repro.baselines.fmindex import FMIndex, SEPARATOR
from repro.dna.sequence import reverse_complement
from repro.dna.synthetic import ReadRecord


@dataclass(frozen=True)
class BaselineCostModel:
    """Per-operation modelled CPU costs of the baseline aligners (seconds).

    The index-construction constants are calibrated so that the *ratio*
    between serial index build and parallel mapping resembles Table II; tests
    only rely on orderings, never on absolute values.
    """

    index_build_per_char: float = 1.5e-6
    index_load_per_byte: float = 4.0e-10
    fm_step: float = 1.2e-7
    locate_step: float = 2.5e-7
    sw_cell: float = 2.0e-9
    read_partition_per_byte: float = 2.0e-9


class BaselineAligner:
    """Base class: FM-index construction plus seed-and-extend mapping."""

    #: Human-readable tool name (overridden by subclasses).
    name = "fm-baseline"

    def __init__(self, seed_length: int = 51,
                 seed_stride: int | None = None,
                 max_hits_per_seed: int = 16,
                 min_alignment_score: int = 20,
                 scoring: ScoringScheme = DEFAULT_SCORING,
                 costs: BaselineCostModel | None = None) -> None:
        if seed_length <= 0:
            raise ValueError("seed_length must be positive")
        self.seed_length = seed_length
        self.seed_stride = seed_stride or max(1, seed_length // 2)
        self.max_hits_per_seed = max_hits_per_seed
        self.min_alignment_score = min_alignment_score
        self.scoring = scoring
        self.costs = costs or BaselineCostModel()
        self.index: FMIndex | None = None
        self._targets: list[str] = []
        self._boundaries: list[int] = []
        self.index_build_seconds = 0.0
        self.mapping_seconds = 0.0
        self.reads_processed = 0
        self.reads_aligned = 0

    # -- index construction (serial) ----------------------------------------------

    def build_index(self, targets: list[str]) -> float:
        """Build the FM-index of the concatenated targets (serial).

        Returns the modelled construction time in seconds.
        """
        self._targets = list(targets)
        self._boundaries = []
        offset = 0
        pieces: list[str] = []
        for target in targets:
            self._boundaries.append(offset)
            pieces.append(target)
            offset += len(target) + 1
        concatenated = SEPARATOR.join(pieces) if pieces else ""
        self.index = FMIndex(concatenated) if concatenated else None
        total_chars = sum(len(t) for t in targets)
        self.index_build_seconds = self.costs.index_build_per_char * total_chars * self._index_cost_factor()
        return self.index_build_seconds

    def _index_cost_factor(self) -> float:
        """Relative index-construction cost of this tool (1.0 = BWA-like)."""
        return 1.0

    @property
    def index_nbytes(self) -> int:
        """Size of the index each pMap instance must hold in memory."""
        return self.index.index_nbytes if self.index is not None else 0

    def _concat_to_target(self, position: int) -> tuple[int, int]:
        """Map a concatenated-text position to ``(target_id, offset)``."""
        target_id = bisect.bisect_right(self._boundaries, position) - 1
        return target_id, position - self._boundaries[target_id]

    # -- seeding policy (overridden by subclasses) ----------------------------------

    def seed_offsets(self, read_length: int) -> list[int]:
        """Query offsets at which seeds are extracted."""
        if read_length < self.seed_length:
            return []
        return list(range(0, read_length - self.seed_length + 1, self.seed_stride))

    # -- mapping --------------------------------------------------------------------

    def align_read(self, read: ReadRecord) -> tuple[list[Alignment], float]:
        """Map one read; returns its alignments and the modelled seconds spent."""
        if self.index is None:
            raise RuntimeError("build_index must be called before align_read")
        self.reads_processed += 1
        seconds = 0.0
        alignments: list[Alignment] = []
        seen: set[tuple[str, int, int]] = set()
        for strand in ("+", "-"):
            sequence = read.sequence if strand == "+" else reverse_complement(read.sequence)
            for query_offset in self.seed_offsets(len(sequence)):
                seed = sequence[query_offset:query_offset + self.seed_length]
                seconds += self.costs.fm_step * len(seed)
                positions = self.index.locate(seed, limit=self.max_hits_per_seed)
                seconds += self.costs.locate_step * max(1, len(positions)) * self.index.sa_sample_rate
                for position in positions:
                    target_id, target_offset = self._concat_to_target(position)
                    key = (strand, target_id, target_offset - query_offset)
                    if key in seen:
                        continue
                    seen.add(key)
                    target = self._targets[target_id]
                    hit = SeedHit(target_id=target_id, target_offset=target_offset,
                                  query_offset=query_offset,
                                  seed_length=self.seed_length, strand=strand)
                    alignment, cells = extend_seed_hit(read.name, sequence, target, hit,
                                                       scoring=self.scoring)
                    seconds += self.costs.sw_cell * cells
                    if alignment.score >= self.min_alignment_score:
                        alignments.append(alignment)
        if alignments:
            self.reads_aligned += 1
        self.mapping_seconds += seconds
        return alignments, seconds

    def map_reads(self, reads: list[ReadRecord]) -> tuple[list[Alignment], list[float]]:
        """Map a list of reads; returns all alignments and per-read modelled times."""
        all_alignments: list[Alignment] = []
        per_read_seconds: list[float] = []
        for read in reads:
            alignments, seconds = self.align_read(read)
            all_alignments.extend(alignments)
            per_read_seconds.append(seconds)
        return all_alignments, per_read_seconds

    @property
    def aligned_fraction(self) -> float:
        if self.reads_processed == 0:
            return 0.0
        return self.reads_aligned / self.reads_processed
