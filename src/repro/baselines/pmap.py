"""The pMap-style parallel mapping framework (paper sections I, VI-D).

pMap parallelises an existing shared-memory aligner by (1) building /
replicating its index, (2) partitioning the reads across instances from a
single master process, and (3) running the instances independently.  Steps
(1) and (2) are serial, which is exactly the bottleneck Table II quantifies:
at 7,680 cores, BWA-mem under pMap spends 5,384 s building its index serially
while merAligner builds its distributed index in 21 s.

The driver here reproduces that structure over the baseline aligners and
reports modelled times consistent with the merAligner cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.alignment.result import Alignment
from repro.baselines.base import BaselineAligner
from repro.dna.synthetic import ReadRecord
from repro.io.partition import block_partition


@dataclass
class PMapReport:
    """Outcome of one pMap run, with enough detail to re-scale instance counts."""

    tool_name: str
    n_instances: int
    index_construction_time: float
    index_load_time: float
    read_partition_time: float
    per_read_seconds: list[float] = field(default_factory=list)
    alignments: list[Alignment] = field(default_factory=list)
    reads_processed: int = 0
    reads_aligned: int = 0

    @property
    def aligned_fraction(self) -> float:
        if self.reads_processed == 0:
            return 0.0
        return self.reads_aligned / self.reads_processed

    def mapping_time_at(self, n_instances: int) -> float:
        """Parallel mapping wall time with *n_instances* instances.

        Reads are block-partitioned over the instances exactly as pMap does;
        the wall time is the slowest instance's total.
        """
        if n_instances <= 0:
            raise ValueError("n_instances must be positive")
        n_reads = len(self.per_read_seconds)
        worst = 0.0
        for instance in range(n_instances):
            start, count = block_partition(n_reads, n_instances, instance)
            worst = max(worst, sum(self.per_read_seconds[start:start + count]))
        return worst

    @property
    def mapping_time(self) -> float:
        """Mapping wall time at the configured instance count."""
        return self.mapping_time_at(self.n_instances)

    @property
    def total_time(self) -> float:
        """Index construction + index load + mapping (Table II convention:
        the serial read-partitioning time is excluded 'to make a fair
        comparison', exactly as the paper does)."""
        return self.index_construction_time + self.index_load_time + self.mapping_time

    @property
    def total_time_with_partitioning(self) -> float:
        """Like :attr:`total_time` but including the master's read partitioning."""
        return self.total_time + self.read_partition_time

    def total_time_at(self, n_instances: int) -> float:
        """Total (index + load + mapping) wall time at another instance count."""
        return (self.index_construction_time + self.index_load_time
                + self.mapping_time_at(n_instances))


class PMapFramework:
    """Serial-index / parallel-mapping driver over a baseline aligner."""

    def __init__(self, aligner_factory: Callable[[], BaselineAligner],
                 n_instances: int = 4,
                 instances_per_node: int = 4) -> None:
        if n_instances <= 0:
            raise ValueError("n_instances must be positive")
        if instances_per_node <= 0:
            raise ValueError("instances_per_node must be positive")
        self.aligner_factory = aligner_factory
        self.n_instances = n_instances
        self.instances_per_node = instances_per_node

    def run(self, targets: list[str], reads: list[ReadRecord]) -> PMapReport:
        """Run the full pMap pipeline and return its report.

        The mapping work is executed once (the alignments do not depend on the
        instance count); per-read modelled times are retained so the report
        can be re-scaled to any instance count.
        """
        aligner = self.aligner_factory()
        # (1) Serial index construction, then every instance loads a replica.
        index_time = aligner.build_index(targets)
        index_load_time = aligner.index_nbytes * aligner.costs.index_load_per_byte
        # (2) Serial master-based read partitioning: the master streams every
        # read's bytes to its destination instance.
        total_read_bytes = sum(len(r.sequence) + len(r.quality) + len(r.name)
                               for r in reads)
        partition_time = total_read_bytes * aligner.costs.read_partition_per_byte
        # (3) Parallel mapping.
        alignments, per_read_seconds = aligner.map_reads(reads)
        return PMapReport(
            tool_name=aligner.name,
            n_instances=self.n_instances,
            index_construction_time=index_time,
            index_load_time=index_load_time,
            read_partition_time=partition_time,
            per_read_seconds=per_read_seconds,
            alignments=alignments,
            reads_processed=aligner.reads_processed,
            reads_aligned=aligner.reads_aligned,
        )
