"""A BWA-mem-flavoured baseline aligner.

BWA-mem seeds with long (super-maximal) exact matches and extends them with
banded Smith-Waterman.  The reproduction uses long fixed-length exact seeds
(the paper runs BWA-mem with minimum seed length 51, equal to merAligner's k)
located through the FM-index, followed by vectorised SW extension.  Its index
construction is serial, which is the property Table II isolates.
"""

from __future__ import annotations

from repro.baselines.base import BaselineAligner, BaselineCostModel


class BwaLikeAligner(BaselineAligner):
    """BWA-mem stand-in: long seeds, moderate per-seed hit cap."""

    name = "bwa-mem-like"

    def __init__(self, seed_length: int = 51, **kwargs) -> None:
        kwargs.setdefault("seed_stride", max(1, seed_length // 2))
        kwargs.setdefault("max_hits_per_seed", 16)
        kwargs.setdefault("costs", BaselineCostModel(index_build_per_char=1.5e-6))
        super().__init__(seed_length=seed_length, **kwargs)

    def _index_cost_factor(self) -> float:
        # BWA builds the BWT of both strands; keep it as the 1.0 reference.
        return 1.0
