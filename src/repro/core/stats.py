"""Counters, per-phase timings and the end-to-end report of one aligner run.

The report exposes exactly the quantities the paper's evaluation section
plots: end-to-end time and parallel efficiency (Fig 1), seed index
construction time (Fig 8), communication during the aligning phase split into
seed lookups and target fetches (Fig 9), computation vs communication of the
aligning phase (Fig 10), min/max/avg computation and total alignment time per
rank (Table I), and the index-construction/mapping split (Table II).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.alignment.result import Alignment
from repro.pgas.cost_model import CommStats
from repro.pgas.trace import PhaseTrace


@dataclass
class AlignmentCounters:
    """Event counters accumulated by one rank during the aligning phase."""

    reads_processed: int = 0
    reads_aligned: int = 0
    exact_path_hits: int = 0
    seed_lookups: int = 0
    seed_lookup_hits: int = 0
    sw_calls: int = 0
    sw_cells: int = 0
    candidates_examined: int = 0
    candidates_skipped_threshold: int = 0
    alignments_reported: int = 0
    pairs_processed: int = 0
    mate_rescue_attempts: int = 0
    mate_rescues: int = 0

    def merge(self, other: "AlignmentCounters") -> "AlignmentCounters":
        return AlignmentCounters(
            reads_processed=self.reads_processed + other.reads_processed,
            reads_aligned=self.reads_aligned + other.reads_aligned,
            exact_path_hits=self.exact_path_hits + other.exact_path_hits,
            seed_lookups=self.seed_lookups + other.seed_lookups,
            seed_lookup_hits=self.seed_lookup_hits + other.seed_lookup_hits,
            sw_calls=self.sw_calls + other.sw_calls,
            sw_cells=self.sw_cells + other.sw_cells,
            candidates_examined=self.candidates_examined + other.candidates_examined,
            candidates_skipped_threshold=(self.candidates_skipped_threshold
                                          + other.candidates_skipped_threshold),
            alignments_reported=self.alignments_reported + other.alignments_reported,
            pairs_processed=self.pairs_processed + other.pairs_processed,
            mate_rescue_attempts=(self.mate_rescue_attempts
                                  + other.mate_rescue_attempts),
            mate_rescues=self.mate_rescues + other.mate_rescues,
        )

    @property
    def aligned_fraction(self) -> float:
        """Fraction of processed reads with at least one reported alignment."""
        if self.reads_processed == 0:
            return 0.0
        return self.reads_aligned / self.reads_processed

    @property
    def exact_fraction(self) -> float:
        """Fraction of aligned reads resolved by the exact-match fast path."""
        if self.reads_aligned == 0:
            return 0.0
        return self.exact_path_hits / self.reads_aligned


# Phase names used by the pipeline; stats helpers group them.
IO_PHASES = ("read_targets", "read_queries")
INDEX_PHASES = ("extract_and_store_seeds", "drain_stacks", "mark_single_copy")
ALIGN_PHASES = ("align_reads",)

#: Version of the JSON report schema (``align --json-report`` and the
#: service's ``STATS`` payload).  Bump when the shape of the document
#: changes *incompatibly*; purely additive keys (e.g. the paired-workload
#: ``pairs_processed`` / ``mate_rescue*`` counters) do not bump it.
#: Downstream tooling dispatches on it.
#: 2: added ``schema_version`` itself and per-stage ``stages`` timings.
#: 3: service stats gained p99 modelled/wall latency and
#:    ``latency_sample_window`` (the bounded percentile reservoir), and the
#:    server grew the ``METRICS`` document alongside ``STATS``.
REPORT_SCHEMA_VERSION = 3


@dataclass
class PhaseStats:
    """Modelled time and work-item accounting of one pipeline stage.

    The :class:`~repro.core.plan.PlanRunner` snapshots every rank's virtual
    clock around each stage invocation, so a stage's compute/communication/IO
    split is known even when several stages share one barrier phase (the
    aligning stages all run inside ``align_reads``).  Instances are summed
    across ranks; ``items`` counts the work units the stage processed (reads,
    lookups, windows -- whatever the stage declares).
    """

    name: str
    compute: float = 0.0
    comm: float = 0.0
    io: float = 0.0
    items: int = 0
    calls: int = 0

    @property
    def elapsed(self) -> float:
        """Summed modelled seconds spent in the stage across all ranks."""
        return self.compute + self.comm + self.io

    def add_breakdown(self, breakdown, items: int = 0) -> None:
        """Accumulate one invocation's :class:`TimeBreakdown` delta."""
        self.compute += breakdown.compute
        self.comm += breakdown.comm
        self.io += breakdown.io
        self.items += items
        self.calls += 1

    def merge(self, other: "PhaseStats") -> "PhaseStats":
        """Sum of two per-rank records for the same stage."""
        if other.name != self.name:
            raise ValueError(f"cannot merge stage stats {self.name!r} "
                             f"with {other.name!r}")
        return PhaseStats(name=self.name,
                          compute=self.compute + other.compute,
                          comm=self.comm + other.comm,
                          io=self.io + other.io,
                          items=self.items + other.items,
                          calls=self.calls + other.calls)

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "elapsed": self.elapsed,
            "compute": self.compute,
            "comm": self.comm,
            "io": self.io,
            "items": self.items,
            "calls": self.calls,
        }


@dataclass
class AlignerReport:
    """Everything produced by one end-to-end run of :class:`MerAligner`."""

    n_ranks: int
    config_summary: dict = field(default_factory=dict)
    alignments: list[Alignment] = field(default_factory=list)
    counters: AlignmentCounters = field(default_factory=AlignmentCounters)
    phases: list[PhaseTrace] = field(default_factory=list)
    per_rank_stats: list[CommStats] = field(default_factory=list)
    seed_index_keys: int = 0
    seed_index_values: int = 0
    single_copy_fragment_fraction: float = 0.0
    cache_stats: dict = field(default_factory=dict)
    #: Per-stage modelled timings collected by the plan runner (summed across
    #: ranks, in plan order).  Empty for reports produced outside a plan run.
    stage_stats: list[PhaseStats] = field(default_factory=list)
    #: The workload the producing plan's sink declares ("align", "count",
    #: "screen", ...).
    workload: str = "align"

    # -- time roll-ups ----------------------------------------------------------

    def _phase_time(self, names: tuple[str, ...]) -> float:
        return sum(phase.elapsed for phase in self.phases if phase.name in names)

    @property
    def total_time(self) -> float:
        """End-to-end modelled wall time."""
        return sum(phase.elapsed for phase in self.phases)

    @property
    def io_time(self) -> float:
        return self._phase_time(IO_PHASES)

    @property
    def index_construction_time(self) -> float:
        """Distributed seed index construction time (Fig 8 quantity)."""
        return self._phase_time(INDEX_PHASES)

    @property
    def alignment_time(self) -> float:
        """Aligning-phase wall time (Fig 10 / Table II 'mapping time')."""
        return self._phase_time(ALIGN_PHASES)

    def phase(self, name: str) -> PhaseTrace:
        for trace in self.phases:
            if trace.name == name:
                return trace
        raise KeyError(f"no phase named {name!r}")

    # -- communication roll-ups --------------------------------------------------

    @property
    def total_stats(self) -> CommStats:
        return CommStats.aggregate(self.per_rank_stats)

    def category_time(self, prefix: str) -> float:
        """Summed per-category modelled time across ranks (e.g. 'dht:lookup')."""
        total = 0.0
        for stats in self.per_rank_stats:
            for category, seconds in stats.time_by_category.items():
                if category.startswith(prefix):
                    total += seconds
        return total

    @property
    def seed_lookup_comm_time(self) -> float:
        """Communication time spent on seed index lookups (Fig 9 red bars)."""
        return self.category_time("dht:lookup") + self.category_time("cache:seed_index")

    @property
    def target_fetch_comm_time(self) -> float:
        """Communication time spent fetching targets (Fig 9 blue bars)."""
        return self.category_time("target:fetch") + self.category_time("cache:target")

    @property
    def alignment_phase_compute(self) -> float:
        """Summed per-rank computation time of the aligning phase."""
        try:
            return self.phase("align_reads").total_compute
        except KeyError:
            return 0.0

    @property
    def alignment_phase_comm(self) -> float:
        """Summed per-rank communication time of the aligning phase."""
        try:
            return self.phase("align_reads").total_comm
        except KeyError:
            return 0.0

    # -- Table I style summaries ---------------------------------------------------

    def load_balance_summary(self) -> dict[str, float]:
        """Min/max/avg computation and total time of the aligning phase."""
        trace = self.phase("align_reads")
        return {
            "compute_min": trace.min_compute,
            "compute_max": trace.max_compute,
            "compute_avg": trace.avg_compute,
            "total_min": trace.min_total,
            "total_max": trace.max_total,
            "total_avg": trace.avg_total,
        }

    def summary(self) -> dict[str, float]:
        """Compact dictionary used by benchmarks and examples for printing."""
        return {
            "n_ranks": float(self.n_ranks),
            "total_time": self.total_time,
            "io_time": self.io_time,
            "index_construction_time": self.index_construction_time,
            "alignment_time": self.alignment_time,
            "reads_processed": float(self.counters.reads_processed),
            "aligned_fraction": self.counters.aligned_fraction,
            "exact_fraction": self.counters.exact_fraction,
            "sw_calls": float(self.counters.sw_calls),
            "seed_lookups": float(self.counters.seed_lookups),
        }

    # -- machine-readable export ---------------------------------------------------

    def to_json_dict(self) -> dict:
        """The whole report as plain JSON-serialisable types.

        This is what ``meraligner align --json-report`` writes and what the
        alignment service's ``STATS`` endpoint embeds, so downstream tooling
        can consume per-phase timings and communication counters without
        parsing the pretty-printed output.  Alignments themselves are not
        included (they go to SAM).
        """
        totals = self.total_stats
        comm = asdict(totals)
        comm["time_by_category"] = dict(sorted(totals.time_by_category.items()))
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "workload": self.workload,
            "n_ranks": self.n_ranks,
            "config": dict(self.config_summary),
            "counters": asdict(self.counters),
            "phases": [
                {
                    "name": phase.name,
                    "elapsed": phase.elapsed,
                    "wall_seconds": phase.wall_seconds,
                    "total_compute": phase.total_compute,
                    "total_comm": phase.total_comm,
                }
                for phase in self.phases
            ],
            "times": {
                "total_time": self.total_time,
                "io_time": self.io_time,
                "index_construction_time": self.index_construction_time,
                "alignment_time": self.alignment_time,
            },
            "stages": [stage.to_json_dict() for stage in self.stage_stats],
            "comm": comm,
            "seed_index": {
                "keys": self.seed_index_keys,
                "values": self.seed_index_values,
            },
            "single_copy_fragment_fraction": self.single_copy_fragment_fraction,
            "cache_stats": {name: asdict(stats)
                            for name, stats in self.cache_stats.items()},
            "n_alignments": len(self.alignments),
        }

    def write_json(self, path: str | Path) -> None:
        """Write :meth:`to_json_dict` to *path* as indented JSON."""
        Path(path).write_text(json.dumps(self.to_json_dict(), indent=2,
                                         sort_keys=True) + "\n",
                              encoding="ascii")
