"""Load balancing by random permutation of the query file (section IV-B).

Reads differ widely in processing cost: a read that matches a single target
exactly costs one lookup and a memcmp, while a read hitting many candidates
costs many lookups and Smith-Waterman executions.  Randomly permuting the
reads before block-partitioning them over the ranks bounds, with high
probability, the imbalance of "slow" reads by ``2 * sqrt(2 * h * p * log p)``
(Theorem 1, balls-into-bins).
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def permute_reads(reads: Sequence[T], seed: int = 0) -> list[T]:
    """Return the reads in a uniformly random order (Fisher-Yates via numpy).

    The permutation is a pure reordering: the multiset of reads is unchanged
    (property tests rely on this).
    """
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(reads))
    return [reads[i] for i in order]


def chunk_for_rank(reads: Sequence[T], rank: int, n_ranks: int) -> list[T]:
    """The contiguous chunk of ``len(reads)/p`` reads assigned to *rank*."""
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")
    if not 0 <= rank < n_ranks:
        raise IndexError("rank out of range")
    base, extra = divmod(len(reads), n_ranks)
    start = rank * base + min(rank, extra)
    count = base + (1 if rank < extra else 0)
    return list(reads[start:start + count])


def imbalance(per_rank_loads: Sequence[float]) -> float:
    """Distance of the maximum load from the average load (Theorem 1 metric)."""
    if not per_rank_loads:
        return 0.0
    loads = np.asarray(per_rank_loads, dtype=float)
    return float(loads.max() - loads.mean())


def theoretical_imbalance_bound(h: int, p: int) -> float:
    """Theorem 1 bound on the imbalance of *h* slow reads over *p* ranks."""
    if h < 0 or p <= 0:
        raise ValueError("h must be non-negative and p positive")
    if h == 0 or p == 1:
        return 0.0
    return 2.0 * np.sqrt(2.0 * h / p * np.log(p))
