"""merAligner core: the paper's primary contribution.

* :mod:`repro.core.config` -- :class:`AlignerConfig`, every tuning knob the
  paper describes (seed length, aggregation buffer size S, cache sizes, the
  exact-match optimization, target fragmentation, load balancing, the
  max-alignments-per-seed threshold).
* :mod:`repro.core.target_store` -- distributed storage of target sequences
  and their fragmentation into subsequences with disjoint seed sets.
* :mod:`repro.core.seed_index` -- the distributed seed index built with (or
  without) aggregating stores, including single-copy-seed marking.
* :mod:`repro.core.load_balance` -- random permutation of the query file.
* :mod:`repro.core.plan` -- the composable stage-pipeline API:
  :class:`AlignmentPlan` (typed stage sequences with validated dataflow),
  :class:`PlanRunner` (chunking, permutation, bulk windows, per-stage
  :class:`~repro.core.stats.PhaseStats`), the built-in stages, and the
  registered workloads (``align``, ``count``, ``screen``).
* :mod:`repro.core.pipeline` -- :class:`MerAligner`, the end-to-end parallel
  aligner (Algorithm 1 plus sections III-V) as a preset over the default
  plan.
* :mod:`repro.core.stats` -- :class:`AlignerReport`, per-phase timings,
  counters and communication statistics.
"""

from repro.core.config import AlignerConfig, config_summary
from repro.core.stats import AlignerReport, AlignmentCounters, PhaseStats
from repro.core.target_store import TargetStore, FragmentRecord, fragment_target
from repro.core.seed_index import SeedIndex
from repro.core.load_balance import permute_reads, chunk_for_rank, imbalance
from repro.core.evaluation import EvaluationResult, evaluate_alignments, compare_aligners
from repro.core.plan import (AlignmentPlan, PlanResult, PlanRunner,
                             PlanValidationError, ScreenSummary,
                             SeedCountSummary, plan_for_workload)
from repro.core.pipeline import MerAligner

__all__ = [
    "AlignerConfig",
    "AlignerReport",
    "AlignmentCounters",
    "AlignmentPlan",
    "PhaseStats",
    "PlanResult",
    "PlanRunner",
    "PlanValidationError",
    "ScreenSummary",
    "SeedCountSummary",
    "config_summary",
    "plan_for_workload",
    "TargetStore",
    "FragmentRecord",
    "fragment_target",
    "SeedIndex",
    "permute_reads",
    "chunk_for_rank",
    "imbalance",
    "EvaluationResult",
    "evaluate_alignments",
    "compare_aligners",
    "MerAligner",
]
