"""Composable stage pipelines: :class:`AlignmentPlan` + :class:`PlanRunner`.

The paper presents merAligner as a sequence of distinct distributed phases --
index construction, seed lookup, software-cached fragment fetch, extension --
and this module makes that sequence an explicit, composable object instead of
a hardwired monolith:

:class:`AlignmentPlan`
    A validated, typed sequence of :class:`Stage` objects.  Every stage
    declares the named inputs it consumes and the outputs it produces;
    building a plan checks that each stage's inputs are satisfied by the plan
    sources (``targets``, ``reads``) or by an earlier stage, so an impossible
    pipeline fails at construction, not mid-run.

:class:`PlanRunner`
    Executes a plan as one SPMD job on any execution backend.  The runner
    owns read chunking and the Theorem 1 random permutation, the bulk-
    batching windows of the aggregated-communication engine, and per-stage
    :class:`~repro.core.stats.PhaseStats` (virtual-clock deltas snapshotted
    around every stage invocation).

The built-in stages decompose the original monolithic aligner exactly --
same candidate dedupe keys, same truncation order, same charge ordering --
so the default plan reproduces the pre-plan aligner byte for byte on every
backend, with bulk batching on or off.  New workloads are new plans over the
same stages: ``seed_count`` stops after the lookup stage and folds a
k-mer-frequency histogram; ``exact_screen`` runs only the Lemma 1 exact-match
probe and reports per-read hit/miss rows; ``paired`` runs the full per-read
pipeline on both mates of a pair, then joins them (:class:`PairJoin`),
rescues lost mates inside the insert-size window (:class:`MateRescue`) and
emits flag-complete paired SAM (:class:`EmitSamPaired`).
``examples/custom_pipeline.py`` shows a bespoke plan with a user-defined
sink; ``docs/plan-api.md`` is the narrative guide.

:class:`~repro.core.pipeline.MerAligner` is a thin preset over the default
plan; the serving stack (:mod:`repro.service`) executes the query side of
any registered plan against a resident index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.alignment.exact import exact_match_at
from repro.alignment.extend import SeedHit, extend_batch, extend_seed_hit
from repro.alignment.result import Alignment, CigarOp
from repro.core.config import AlignerConfig, config_summary
from repro.core.load_balance import chunk_for_rank, permute_reads
from repro.core.seed_index import SeedIndex
from repro.core.stats import AlignerReport, AlignmentCounters, PhaseStats
from repro.core.target_store import TargetStore, fragment_target
from repro.dna.sequence import reverse_complement
from repro.dna.synthetic import ReadRecord
from repro.hashtable.cache import SoftwareCache
from repro.io.fasta import FastaRecord, read_fasta
from repro.io.fastq import FastqRecord, read_fastq, read_fastq_paired
from repro.io.sam import PairedSamRecord
from repro.io.seqdb import SeqDbReader
from repro.pgas.cost_model import EDISON_LIKE, MachineModel
from repro.pgas.gptr import GlobalPointer
from repro.pgas.runtime import PgasRuntime, RankContext


# -- input normalization (accepted by every plan entry point) -------------------

def normalize_targets(targets) -> list[str]:
    """Accept a FASTA path, FastaRecords, or plain sequences."""
    return [sequence for _name, sequence in normalize_targets_named(targets)]


def normalize_targets_named(targets) -> list[tuple[str, str]]:
    """Like :func:`normalize_targets` but keeps (or synthesizes) names.

    SAM/TSV emission needs target names identical between the offline CLI and
    the alignment service; plain sequences get the same ``contig{i:05d}``
    names the data generator writes.
    """
    if isinstance(targets, (str, Path)):
        return [(record.name, record.sequence) for record in read_fasta(targets)]
    named: list[tuple[str, str]] = []
    for index, item in enumerate(targets):
        if isinstance(item, FastaRecord):
            named.append((item.name, item.sequence))
        elif isinstance(item, str):
            named.append((f"contig{index:05d}", item))
        else:
            raise TypeError(f"unsupported target type: {type(item)!r}")
    return named


#: File suffixes routed to the SeqDB reader instead of the FASTQ parser.
SEQDB_SUFFIXES = (".seqdb", ".sqdb", ".db")


def normalize_reads(reads) -> list[ReadRecord]:
    """Accept a SeqDB/FASTQ path, FastqRecords, or ReadRecords."""
    if isinstance(reads, (str, Path)):
        path = Path(reads)
        if path.suffix in SEQDB_SUFFIXES:
            with SeqDbReader(path) as reader:
                return [rec.to_read() for rec in reader.read_range(0, len(reader))]
        return [rec.to_read() for rec in read_fastq(path)]
    normalized: list[ReadRecord] = []
    for item in reads:
        if isinstance(item, ReadRecord):
            normalized.append(item)
        elif isinstance(item, FastqRecord):
            normalized.append(item.to_read())
        else:
            raise TypeError(f"unsupported read type: {type(item)!r}")
    return normalized


def normalize_paired_reads(reads, reads2=None) -> list[ReadRecord]:
    """Normalize a paired-end library into the interleaved read list.

    *reads* is anything :func:`normalize_reads` accepts -- interleaved
    (R1, R2, R1, R2, ...) -- or, with *reads2*, the R1 half whose mates come
    from *reads2* in the same order.  FASTQ paths go through
    :func:`repro.io.fastq.read_fastq_paired`.  Raises ``ValueError`` on an
    odd interleaved count or mismatched halves.
    """
    if reads2 is None:
        if isinstance(reads, (str, Path)) \
                and Path(reads).suffix not in SEQDB_SUFFIXES:
            return [rec.to_read() for rec in read_fastq_paired(reads)]
        records = normalize_reads(reads)
        if len(records) % 2 != 0:
            raise ValueError("an interleaved paired read set needs an even "
                             f"number of reads, got {len(records)}")
        return records
    if isinstance(reads, (str, Path)) and isinstance(reads2, (str, Path)) \
            and Path(reads).suffix not in SEQDB_SUFFIXES \
            and Path(reads2).suffix not in SEQDB_SUFFIXES:
        return [rec.to_read() for rec in read_fastq_paired(reads, reads2)]
    # SeqDB halves (or in-memory records) go through the generic reader.
    first, second = normalize_reads(reads), normalize_reads(reads2)
    if len(first) != len(second):
        raise ValueError(f"paired read sets disagree: {len(first)} R1 reads "
                         f"vs {len(second)} R2 reads")
    interleaved: list[ReadRecord] = []
    for r1, r2 in zip(first, second):
        interleaved.append(r1)
        interleaved.append(r2)
    return interleaved


def one_shot_read_order(n_reads: int, config: AlignerConfig) -> list[int]:
    """Read indices in the order a one-shot run *processes* them.

    The runner permutes the read list (Theorem 1 load balancing) before
    block-partitioning it over the ranks, so the per-rank work chunks follow
    the *permuted* read order.  This describes processing/rank assignment
    only: every sink reports its output in canonical input-unit order (see
    :meth:`SinkStage.collect`), which is what makes streamed runs
    byte-identical to materialised ones at any chunk size -- the permutation
    stays a purely internal load-balancing device, exactly as in the paper.
    """
    indices = list(range(n_reads))
    if config.permute_reads:
        return permute_reads(indices, seed=config.permutation_seed)
    return indices


def read_orientations(sequence: str, config: AlignerConfig) -> list[tuple[str, str]]:
    """The (strand, oriented sequence) pairs a read is searched under."""
    orientations = [("+", sequence)]
    if config.try_reverse_complement:
        orientations.append(("-", reverse_complement(sequence)))
    return orientations


def exact_alignment(config: AlignerConfig, query_name: str, strand: str,
                    oriented: str, fragment, start: int) -> Alignment:
    """The full-score alignment reported by the exact-match fast path."""
    length = len(oriented)
    return Alignment(
        query_name=query_name,
        target_id=fragment.parent_target_id,
        score=config.scoring.max_score(length),
        query_start=0,
        query_end=length,
        target_start=fragment.parent_offset + start,
        target_end=fragment.parent_offset + start + length,
        strand=strand,
        cigar=[(length, CigarOp.MATCH)],
        is_exact=True,
        identity=1.0,
    )


# -- the state flowing through a plan ------------------------------------------

class StageContext:
    """Everything a stage invocation may touch on one rank.

    One instance per rank per SPMD invocation: the rank's
    :class:`~repro.pgas.runtime.RankContext` (all cost accounting goes
    through it), the configuration, the resident distributed structures, the
    per-node software caches, the invocation's event counters, and the
    window-scoped fragment pool bulk stages share.
    """

    __slots__ = ("ctx", "config", "seed_index", "target_store", "seed_cache",
                 "target_cache", "counters", "window_fragments")

    def __init__(self, ctx: RankContext, config: AlignerConfig,
                 seed_index: SeedIndex, target_store: TargetStore,
                 seed_cache: SoftwareCache | None,
                 target_cache: SoftwareCache | None,
                 counters: AlignmentCounters) -> None:
        self.ctx = ctx
        self.config = config
        self.seed_index = seed_index
        self.target_store = target_store
        self.seed_cache = seed_cache
        self.target_cache = target_cache
        self.counters = counters
        #: Fragments fetched by earlier bulk stages of the *current* window,
        #: keyed by the pointer's ``(owner, key)`` address.  Later stages of
        #: the same window (bulk mate rescue) reuse these records instead of
        #: paying a second charged get for a fragment already on this rank.
        self.window_fragments: dict[tuple[int, Any], Any] = {}

    def begin_window(self) -> None:
        """Reset the window-scoped fragment pool (called by the runner at
        the start of every unit window)."""
        self.window_fragments.clear()


class ReadState:
    """Per-read state threaded through the query stages of a plan.

    Stages communicate by filling the slot their declared output names:
    ``lookups`` (seed_hits), ``candidates``, ``alignments``, ``resolved``
    (exact_hits).  ``active`` is False for reads too short to seed -- such
    reads skip every transform stage and reach the sink empty-handed.

    ``sources`` mirrors ``alignments`` with the :class:`GlobalPointer` of
    the fragment each alignment was extended on, and ``resolved_source`` is
    the fragment of an exact-path resolution -- the anchors mate rescue
    fetches back (from the window's fragment pool when possible, else a
    charged get like any other) to search the insert window.
    """

    __slots__ = ("read", "orientations", "active", "resolved", "lookups",
                 "candidates", "alignments", "sources", "resolved_source")

    def __init__(self, read: ReadRecord, config: AlignerConfig) -> None:
        self.read = read
        self.active = len(read.sequence) >= config.seed_length
        self.orientations = (read_orientations(read.sequence, config)
                             if self.active else [])
        self.resolved: Alignment | None = None
        self.lookups: list[tuple[str, int, Any]] | None = None
        self.candidates: dict | None = None
        self.alignments: list[Alignment] | None = None
        self.sources: list[GlobalPointer] | None = None
        self.resolved_source: GlobalPointer | None = None

    @property
    def pending(self) -> bool:
        """True while transform stages should still process this read."""
        return self.active and self.resolved is None

    def best_alignment(self) -> tuple[Alignment | None, GlobalPointer | None]:
        """The read's primary alignment and its source fragment.

        The exact-path resolution wins outright (it scores the maximum);
        otherwise the highest-scoring extension, first-wins on ties -- the
        deterministic choice every engine and backend agrees on.
        """
        if self.resolved is not None:
            return self.resolved, self.resolved_source
        best: Alignment | None = None
        source: GlobalPointer | None = None
        for alignment, pointer in zip(self.alignments or [],
                                      self.sources or []):
            if best is None or alignment.score > best.score:
                best, source = alignment, pointer
        return best, source


class PairState:
    """The joined state of one read pair (mate 1 and mate 2).

    Built by the runner from two consecutive :class:`ReadState` objects and
    populated by the pair stages: :class:`PairJoin` selects each mate's
    primary alignment (and its source fragment), :class:`MateRescue` may
    replace a missing primary with a rescued alignment, and the paired sink
    reads the final primaries.
    """

    __slots__ = ("index", "r1", "r2", "primary1", "primary2",
                 "source1", "source2", "rescued_mate", "rescue_attempted")

    def __init__(self, index: int, r1: ReadState, r2: ReadState) -> None:
        self.index = index
        self.r1 = r1
        self.r2 = r2
        self.primary1: Alignment | None = None
        self.primary2: Alignment | None = None
        self.source1: GlobalPointer | None = None
        self.source2: GlobalPointer | None = None
        self.rescued_mate = 0  # 0 = none, 1 / 2 = that mate was rescued
        self.rescue_attempted = False


# -- stage objects --------------------------------------------------------------

class Stage:
    """One step of an :class:`AlignmentPlan`.

    Subclasses declare ``name``, the named ``inputs`` they consume and the
    ``outputs`` they produce; :meth:`AlignmentPlan.validate` wires the
    declarations into a dataflow check.  ``optional_inputs`` are used when
    present but do not fail validation when absent (the SAM sink consumes
    exact-path hits only in plans that probe them).
    """

    name: str = "stage"
    inputs: tuple[str, ...] = ()
    optional_inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()

    def signature(self) -> str:
        """``name(inputs -> outputs)``, for plan descriptions and errors."""
        consumed = ", ".join(self.inputs +
                             tuple(f"{opt}?" for opt in self.optional_inputs))
        produced = ", ".join(self.outputs)
        return f"{self.name}({consumed} -> {produced})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.signature()}>"


class BuildIndex(Stage):
    """Phases 1-4: build the distributed seed index and target store.

    Runs once per plan execution (or once per resident session on the
    serving path); the phases and cost accounting are identical in both.

    ``mark_single_copy`` overrides whether phase 4 (single-copy-seed
    marking) runs: ``None`` follows ``config.use_exact_match_optimization``
    (the align plan's behaviour), ``True`` forces it -- plans whose exact
    probe is unconditional (the screen workload) need marked flags even when
    the align-phase optimization is switched off.
    """

    name = "build_index"
    inputs = ("targets",)
    outputs = ("seed_index", "target_store")
    phase_names = ("read_targets", "extract_and_store_seeds", "drain_stacks",
                   "mark_single_copy")

    def __init__(self, mark_single_copy: bool | None = None) -> None:
        self.mark_single_copy = mark_single_copy

    def marks_single_copy(self, config: AlignerConfig) -> bool:
        if self.mark_single_copy is not None:
            return self.mark_single_copy
        return config.use_exact_match_optimization

    def program(self, xs: StageContext, target_seqs: list[str]):
        """The SPMD generator of the index-construction phases."""
        ctx, config = xs.ctx, xs.config
        seed_index, target_store = xs.seed_index, xs.target_store

        # Phase 1: parallel read + fragmentation + storage of targets.
        my_target_ids = list(range(len(target_seqs)))[ctx.my_slice(len(target_seqs))]
        my_fragments: list[tuple[GlobalPointer, object]] = []
        fragment_counter = 0
        for target_id in my_target_ids:
            sequence = target_seqs[target_id]
            ctx.charge_io_bytes(len(sequence), category="io:targets")
            if config.fragment_targets:
                pieces = fragment_target(target_id, sequence,
                                         config.fragment_length, config.seed_length)
            else:
                pieces = [(0, sequence)] if sequence else []
            for parent_offset, piece in pieces:
                fragment_id = ctx.me * (1 << 40) + fragment_counter
                fragment_counter += 1
                record = target_store.store_fragment(ctx, fragment_id, target_id,
                                                     parent_offset, piece)
                pointer = GlobalPointer(owner=ctx.me, segment=TargetStore.SEGMENT,
                                        key=fragment_id, nbytes=record.nbytes)
                my_fragments.append((pointer, record))
        yield "read_targets"

        # Phase 2: extract seeds from this rank's own fragments (retained from
        # phase 1 -- rereading the local segment would be uncharged anyway)
        # and route them to their owners.
        for pointer, record in my_fragments:
            seed_index.add_fragment_seeds(ctx, record, pointer)
        seed_index.flush(ctx)
        yield "extract_and_store_seeds"

        # Phase 3: drain local-shared stacks (aggregating stores only).
        seed_index.drain(ctx)
        yield "drain_stacks"

        # Phase 4: single-copy-seed marking for the exact-match fast path.
        if self.marks_single_copy(config):
            seed_index.mark_single_copy_flags(ctx, target_store)
        yield "mark_single_copy"


class QueryStage(Stage):
    """A stage of the query side: transforms per-read state.

    ``process_read`` is the fine-grained engine's unit (one read at a time,
    one message per remote access); ``process_window`` is the bulk engine's
    unit (a window of ``lookup_batch_size`` reads, aggregated communication).
    The default window implementation simply loops ``process_read`` over the
    still-pending reads -- stages whose communication can be aggregated
    override it.
    """

    def process_read(self, xs: StageContext, item: ReadState) -> None:
        raise NotImplementedError

    def process_window(self, xs: StageContext, items: list[ReadState]) -> None:
        for item in items:
            if item.pending:
                self.process_read(xs, item)


class ReadQueries(QueryStage):
    """Phase 5: parallel read of the (optionally permuted) query chunk.

    Chunking and permutation themselves belong to the
    :class:`PlanRunner`; this stage charges the parallel-I/O cost of this
    rank's chunk.
    """

    name = "read_queries"
    inputs = ("reads",)
    outputs = ("read_chunk",)

    def charge(self, xs: StageContext, my_reads: list[ReadRecord]) -> None:
        read_bytes = sum(len(r.sequence) // 4 + len(r.quality) + len(r.name)
                         for r in my_reads)
        xs.ctx.charge_io_bytes(read_bytes, category="io:queries")

    def process_read(self, xs: StageContext, item: ReadState) -> None:
        raise RuntimeError("ReadQueries runs once per rank, not per read; "
                           "the PlanRunner invokes charge()")


class ExactPath(QueryStage):
    """The Lemma 1 exact-match fast path (section IV-A).

    One lookup of the first seed, one fragment fetch, one memcmp; a hit on a
    single-copy fragment resolves the read without seed-and-extend.  Gated by
    ``config.use_exact_match_optimization`` unless constructed with
    ``force=True`` (the exact-screen workload probes unconditionally).

    The bulk form looks up the first seed of *both* orientations up front
    (conditional lookups would defeat aggregation) and resolves reads in the
    same '+'-before-'-' precedence as the fine-grained probe, so both engines
    resolve identical reads to identical alignments.
    """

    name = "exact_path"
    inputs = ("read_chunk", "seed_index", "target_store")
    outputs = ("exact_hits",)

    def __init__(self, force: bool = False) -> None:
        self.force = force

    def enabled(self, config: AlignerConfig) -> bool:
        return self.force or config.use_exact_match_optimization

    def process_read(self, xs: StageContext, item: ReadState) -> None:
        config, ctx, counters = xs.config, xs.ctx, xs.counters
        if not self.enabled(config):
            return
        k = config.seed_length
        for strand, oriented in item.orientations:
            entry = xs.seed_index.lookup(ctx, oriented[:k], cache=xs.seed_cache)
            counters.seed_lookups += 1
            if entry is None or not entry.values:
                continue
            counters.seed_lookup_hits += 1
            placement = entry.values[0]
            fragment = xs.target_store.fetch(ctx, placement.fragment,
                                             cache=xs.target_cache)
            if not fragment.single_copy_seeds:
                continue
            start = placement.offset  # the first query seed starts the query
            ctx.charge_op("memcmp_byte", len(oriented))
            if exact_match_at(oriented, fragment.sequence(), start):
                item.resolved = exact_alignment(config, item.read.name, strand,
                                                oriented, fragment, start)
                item.resolved_source = placement.fragment
                return

    def process_window(self, xs: StageContext, items: list[ReadState]) -> None:
        config, ctx, counters = xs.config, xs.ctx, xs.counters
        if not self.enabled(config):
            return
        k = config.seed_length
        work = [item for item in items if item.pending]
        exact_keys: list[str] = []
        exact_tags: list[tuple[int, int]] = []
        for work_index, item in enumerate(work):
            for strand_index, (_strand, oriented) in enumerate(item.orientations):
                exact_keys.append(oriented[:k])
                exact_tags.append((work_index, strand_index))
        entries = xs.seed_index.lookup_many(ctx, exact_keys, cache=xs.seed_cache)
        counters.seed_lookups += len(exact_keys)

        fetch_pointers = []
        fetch_tags: list[tuple[int, int, object]] = []
        for (work_index, strand_index), entry in zip(exact_tags, entries):
            if entry is None or not entry.values:
                continue
            counters.seed_lookup_hits += 1
            placement = entry.values[0]
            fetch_pointers.append(placement.fragment)
            fetch_tags.append((work_index, strand_index, placement))
        fragments = xs.target_store.fetch_many(ctx, fetch_pointers,
                                               cache=xs.target_cache)
        pool = xs.window_fragments
        for pointer, fragment in zip(fetch_pointers, fragments):
            pool[(pointer.owner, pointer.key)] = fragment
        fetched: dict[tuple[int, int], tuple] = {}
        for (work_index, strand_index, placement), fragment in \
                zip(fetch_tags, fragments):
            fetched[(work_index, strand_index)] = (placement, fragment)

        for work_index, item in enumerate(work):
            for strand_index, (strand, oriented) in enumerate(item.orientations):
                candidate = fetched.get((work_index, strand_index))
                if candidate is None:
                    continue
                placement, fragment = candidate
                if not fragment.single_copy_seeds:
                    continue
                start = placement.offset
                ctx.charge_op("memcmp_byte", len(oriented))
                if exact_match_at(oriented, fragment.sequence(), start):
                    item.resolved = exact_alignment(
                        xs.config, item.read.name, strand, oriented, fragment,
                        start)
                    item.resolved_source = placement.fragment
                    break


class SeedLookup(QueryStage):
    """Look up every query seed of every pending read in the distributed index.

    The fine-grained form issues one (software-cached) lookup per seed; the
    bulk form aggregates the whole window's seeds into one get per owning
    rank.  Output: per read, the ``(strand, query_offset, entry)`` list in
    extraction order.
    """

    name = "seed_lookup"
    inputs = ("read_chunk", "seed_index")
    outputs = ("seed_hits",)

    def process_read(self, xs: StageContext, item: ReadState) -> None:
        config, counters = xs.config, xs.counters
        k = config.seed_length
        item.lookups = []
        for strand, oriented in item.orientations:
            for query_offset in range(0, len(oriented) - k + 1,
                                      config.seed_stride):
                entry = xs.seed_index.lookup(
                    xs.ctx, oriented[query_offset:query_offset + k],
                    cache=xs.seed_cache)
                counters.seed_lookups += 1
                item.lookups.append((strand, query_offset, entry))

    def process_window(self, xs: StageContext, items: list[ReadState]) -> None:
        config, counters = xs.config, xs.counters
        k = config.seed_length
        work = [item for item in items if item.pending]
        keys: list[str] = []
        tags: list[tuple[ReadState, str, int]] = []
        for item in work:
            item.lookups = []
            for strand, oriented in item.orientations:
                for query_offset in range(0, len(oriented) - k + 1,
                                          config.seed_stride):
                    keys.append(oriented[query_offset:query_offset + k])
                    tags.append((item, strand, query_offset))
        entries = xs.seed_index.lookup_many(xs.ctx, keys, cache=xs.seed_cache)
        counters.seed_lookups += len(keys)
        for (item, strand, query_offset), entry in zip(tags, entries):
            item.lookups.append((strand, query_offset, entry))


class CandidateCollect(QueryStage):
    """Select unique (strand, fragment) candidates from the seed lookups.

    Pure computation: the dedupe key, the ``max_alignments_per_seed``
    truncation order and the first-placement-wins insertion order are the
    alignment-determining invariants every engine must share.
    """

    name = "candidate_collect"
    inputs = ("seed_hits",)
    outputs = ("candidates",)

    def process_read(self, xs: StageContext, item: ReadState) -> None:
        counters = xs.counters
        limit = xs.config.max_alignments_per_seed
        candidates: dict[tuple[str, tuple[int, object]], tuple] = {}
        for strand, query_offset, entry in item.lookups or []:
            if entry is None or not entry.values:
                continue
            counters.seed_lookup_hits += 1
            values = entry.values
            if limit and len(values) > limit:
                counters.candidates_skipped_threshold += len(values) - limit
                values = values[:limit]
            for placement in values:
                fragment_key = (placement.fragment.owner, placement.fragment.key)
                key = (strand, fragment_key)
                if key not in candidates:
                    candidates[key] = (placement, query_offset)
        item.candidates = candidates


class ExtendAlign(QueryStage):
    """Fetch candidate fragments and run banded Smith-Waterman extension.

    The fine-grained form fetches and extends per candidate; the bulk form
    deduplicates the window's fragment fetches into one get per owning rank
    and sweeps same-shaped extension windows through the batched striped
    kernel.  Scoring, thresholding and coordinate adjustment are identical.
    """

    name = "extend_align"
    inputs = ("candidates", "target_store")
    outputs = ("alignments",)

    def process_read(self, xs: StageContext, item: ReadState) -> None:
        config, ctx, counters = xs.config, xs.ctx, xs.counters
        k = config.seed_length
        item.alignments = []
        item.sources = []
        for (strand, _fragment_key), (placement, query_offset) in \
                (item.candidates or {}).items():
            fragment = xs.target_store.fetch(ctx, placement.fragment,
                                             cache=xs.target_cache)
            counters.candidates_examined += 1
            oriented = (item.orientations[0][1] if strand == "+"
                        else item.orientations[1][1])
            hit = SeedHit(target_id=fragment.parent_target_id,
                          target_offset=placement.offset,
                          query_offset=query_offset,
                          seed_length=k, strand=strand)
            alignment, cells = extend_seed_hit(
                item.read.name, oriented, fragment.sequence(), hit,
                scoring=config.scoring,
                window_padding=config.window_padding,
                detailed=config.detailed_alignments)
            counters.sw_calls += 1
            counters.sw_cells += cells
            ctx.charge_op("sw_cell", cells)
            if alignment.score >= config.min_alignment_score:
                alignment.target_start += fragment.parent_offset
                alignment.target_end += fragment.parent_offset
                item.alignments.append(alignment)
                item.sources.append(placement.fragment)

    def process_window(self, xs: StageContext, items: list[ReadState]) -> None:
        config, ctx, counters = xs.config, xs.ctx, xs.counters
        k = config.seed_length
        work = [item for item in items if item.pending]
        fetch_pointers = []
        job_tags: list[tuple[ReadState, str, object, int]] = []
        for item in work:
            item.alignments = []
            item.sources = []
            for (strand, _fragment_key), (placement, query_offset) in \
                    (item.candidates or {}).items():
                fetch_pointers.append(placement.fragment)
                job_tags.append((item, strand, placement, query_offset))
        fragments = xs.target_store.fetch_many(ctx, fetch_pointers,
                                               cache=xs.target_cache)
        pool = xs.window_fragments
        for pointer, fragment in zip(fetch_pointers, fragments):
            pool[(pointer.owner, pointer.key)] = fragment
        counters.candidates_examined += len(fetch_pointers)

        jobs = []
        for (item, strand, placement, query_offset), fragment in \
                zip(job_tags, fragments):
            oriented = (item.orientations[0][1] if strand == "+"
                        else item.orientations[1][1])
            hit = SeedHit(target_id=fragment.parent_target_id,
                          target_offset=placement.offset,
                          query_offset=query_offset,
                          seed_length=k, strand=strand)
            jobs.append((item.read.name, oriented, fragment.sequence(), hit))
        extended = extend_batch(jobs, scoring=config.scoring,
                                window_padding=config.window_padding,
                                detailed=config.detailed_alignments)
        for (item, _strand, placement, _query_offset), fragment, \
                (alignment, cells) in zip(job_tags, fragments, extended):
            counters.sw_calls += 1
            counters.sw_cells += cells
            ctx.charge_op("sw_cell", cells)
            if alignment.score >= config.min_alignment_score:
                alignment.target_start += fragment.parent_offset
                alignment.target_end += fragment.parent_offset
                item.alignments.append(alignment)
                item.sources.append(placement.fragment)


class PairStage(QueryStage):
    """A stage operating on joined read pairs (paired-end plans only).

    Pair stages run after every per-read transform stage: the runner zips
    each unit's two :class:`ReadState` objects into a :class:`PairState` and
    drives ``process_pairs`` over the window's pairs (both engines call the
    same method, so fine-grained and bulk runs agree exactly).  A plan that
    contains a pair stage must end in a sink with ``group_size == 2``.
    """

    def process_pair(self, xs: StageContext, pair: PairState) -> None:
        raise NotImplementedError

    def process_pairs(self, xs: StageContext, pairs: list[PairState]) -> None:
        for pair in pairs:
            self.process_pair(xs, pair)

    def process_read(self, xs: StageContext, item: ReadState) -> None:
        raise RuntimeError("pair stages are driven through process_pairs()")


class PairJoin(PairStage):
    """Re-associate R1/R2 after the per-read pipeline.

    The per-read stages treat every read independently (mates of one pair
    may even sit in different bulk windows of the same rank chunk); this
    stage joins each pair back together and selects each mate's *primary*
    alignment -- the exact-path resolution if there is one, else the
    highest-scoring extension (first-wins on ties) -- along with the source
    fragment pointer mate rescue needs.
    """

    name = "pair_join"
    inputs = ("alignments",)
    optional_inputs = ("exact_hits",)
    outputs = ("pairs",)

    def process_pair(self, xs: StageContext, pair: PairState) -> None:
        xs.counters.pairs_processed += 1
        pair.primary1, pair.source1 = pair.r1.best_alignment()
        pair.primary2, pair.source2 = pair.r2.best_alignment()


class MateRescue(PairStage):
    """Recover a lost mate by banded SW inside the expected insert window.

    When exactly one mate of a pair aligned, the library's insert-size
    distribution pins where the other mate should be: at
    ``insert_size +- insert_slack`` from the anchor's 5' end, on the
    opposite strand.  The rescue needs the anchor's fragment back; the
    scalar path re-fetches it through the target store -- a charged get
    (and a software-cache participant) like any other fetch -- while the
    bulk path (``process_pairs`` under ``use_bulk_lookups``) reuses the
    record from the window's fragment pool when ExactPath/ExtendAlign
    already pulled it this window, and otherwise dedupes the window's
    anchor pointers into **one** :meth:`TargetStore.fetch_many` (one
    aggregated get per owning rank, like ``ExtendAlign.process_window``).
    Both paths run the banded Smith-Waterman extension kernel over the
    expected window (band = ``insert_slack`` plus the usual
    ``window_padding``); the bulk path sweeps the whole window of rescues
    through the shape-grouped batched striped kernel (``extend_batch``) in
    one call.  A rescue scoring at least ``config.min_alignment_score``
    becomes the lost mate's primary; anything weaker (an insert-size
    outlier, a mate off the contig) leaves the mate unmapped.  Gated by
    ``config.use_mate_rescue``.

    The search is bounded by the anchor's *fragment*: the distributed target
    store shards contigs into ``config.fragment_length`` pieces (2000 bases
    by default, an order of magnitude above typical short-read inserts), so
    the expected window almost always lies inside the anchor's own shard --
    a mate beyond the fragment boundary is simply a failed attempt, exactly
    like one beyond the contig boundary.
    """

    name = "mate_rescue"
    inputs = ("pairs", "target_store")
    outputs = ("pairs",)

    @staticmethod
    def _rescue_candidate(pair: PairState):
        """The ``(anchor, source, lost, lost_mate)`` of a rescuable pair.

        ``None`` when there is nothing to anchor a rescue on: both mates
        mapped, both lost, or the anchor has no source fragment pointer.
        """
        if (pair.primary1 is None) == (pair.primary2 is None):
            return None
        if pair.primary1 is not None:
            anchor, source, lost, lost_mate = (pair.primary1, pair.source1,
                                               pair.r2, 2)
        else:
            anchor, source, lost, lost_mate = (pair.primary2, pair.source2,
                                               pair.r1, 1)
        if source is None:
            return None
        return anchor, source, lost, lost_mate

    @staticmethod
    def _oriented_mate(anchor, lost: ReadState) -> tuple[str, str]:
        """The lost mate's strand and sequence, FR-oriented to the anchor."""
        mate_strand = "-" if anchor.strand == "+" else "+"
        oriented = None
        for strand, sequence in lost.orientations:
            if strand == mate_strand:
                oriented = sequence
        if oriented is None:  # short read / revcomp disabled: orient here
            oriented = (reverse_complement(lost.read.sequence)
                        if mate_strand == "-" else lost.read.sequence)
        return mate_strand, oriented

    @staticmethod
    def _rescue_hit(config: AlignerConfig, anchor, mate_strand: str,
                    oriented: str, fragment, target_seq: str) -> SeedHit:
        """Seed hit pinning the expected insert window on *fragment*."""
        # Expected mate start in parent-target coordinates: the template
        # spans insert_size bases from the anchor's 5' end, FR-oriented.
        if anchor.strand == "+":
            expected = anchor.target_start + config.insert_size - len(oriented)
        else:
            expected = anchor.target_end - config.insert_size
        local = expected - fragment.parent_offset
        # Clip the window at the fragment boundary (the contig edge when the
        # anchor sits near it); SeedHit offsets are non-negative.
        local = max(0, min(local, max(0, len(target_seq) - 1)))
        return SeedHit(target_id=fragment.parent_target_id,
                       target_offset=local, query_offset=0,
                       seed_length=config.seed_length, strand=mate_strand)

    @staticmethod
    def _apply_rescue(xs: StageContext, pair: PairState, alignment, fragment,
                      source, lost_mate: int) -> None:
        """Score gate, contig-coordinate shift and primary replacement."""
        if alignment.score < xs.config.min_alignment_score:
            return
        alignment.target_start += fragment.parent_offset
        alignment.target_end += fragment.parent_offset
        xs.counters.mate_rescues += 1
        pair.rescued_mate = lost_mate
        if lost_mate == 1:
            pair.primary1, pair.source1 = alignment, source
        else:
            pair.primary2, pair.source2 = alignment, source

    def process_pair(self, xs: StageContext, pair: PairState) -> None:
        config = xs.config
        if not config.use_mate_rescue:
            return
        candidate = self._rescue_candidate(pair)
        if candidate is None:
            return
        anchor, source, lost, lost_mate = candidate
        ctx, counters = xs.ctx, xs.counters
        counters.mate_rescue_attempts += 1
        pair.rescue_attempted = True
        fragment = xs.target_store.fetch(ctx, source, cache=xs.target_cache)

        mate_strand, oriented = self._oriented_mate(anchor, lost)
        if not oriented:
            return
        target_seq = fragment.sequence()
        hit = self._rescue_hit(config, anchor, mate_strand, oriented,
                               fragment, target_seq)
        alignment, cells = extend_seed_hit(
            lost.read.name, oriented, target_seq, hit,
            scoring=config.scoring,
            window_padding=config.insert_slack + config.window_padding,
            detailed=config.detailed_alignments)
        counters.sw_calls += 1
        counters.sw_cells += cells
        ctx.charge_op("sw_cell", cells)
        self._apply_rescue(xs, pair, alignment, fragment, source, lost_mate)

    def process_pairs(self, xs: StageContext, pairs: list[PairState]) -> None:
        config = xs.config
        if not config.use_mate_rescue:
            return
        if not config.use_bulk_lookups:
            for pair in pairs:
                self.process_pair(xs, pair)
            return
        ctx, counters = xs.ctx, xs.counters
        # (a) collect the window's rescuable pairs, in pair order, with the
        # same gating (and attempt accounting) as the scalar path.
        work: list[tuple] = []
        for pair in pairs:
            candidate = self._rescue_candidate(pair)
            if candidate is None:
                continue
            counters.mate_rescue_attempts += 1
            pair.rescue_attempted = True
            work.append((pair, *candidate))
        # (b) one deduplicated fetch for the anchor fragments the window's
        # per-read stages did not already pull: records in the window pool
        # are reused for free, the rest ride a single fetch_many (one
        # aggregated get per owning rank).
        pool = xs.window_fragments
        missing: list[GlobalPointer] = []
        queued: set = set()
        for _pair, _anchor, source, _lost, _lost_mate in work:
            address = (source.owner, source.key)
            if address in pool or address in queued:
                continue
            queued.add(address)
            missing.append(source)
        if missing:
            fetched = xs.target_store.fetch_many(ctx, missing,
                                                 cache=xs.target_cache)
            for pointer, fragment in zip(missing, fetched):
                pool[(pointer.owner, pointer.key)] = fragment
        # (c) sweep every rescue window through the shape-grouped batched
        # striped kernel in one call, then score/clip exactly as the scalar
        # path does.
        jobs = []
        tags: list[tuple] = []
        for pair, anchor, source, lost, lost_mate in work:
            fragment = pool[(source.owner, source.key)]
            mate_strand, oriented = self._oriented_mate(anchor, lost)
            if not oriented:
                continue
            target_seq = fragment.sequence()
            hit = self._rescue_hit(config, anchor, mate_strand, oriented,
                                   fragment, target_seq)
            jobs.append((lost.read.name, oriented, target_seq, hit))
            tags.append((pair, fragment, source, lost_mate))
        extended = extend_batch(
            jobs, scoring=config.scoring,
            window_padding=config.insert_slack + config.window_padding,
            detailed=config.detailed_alignments)
        for (pair, fragment, source, lost_mate), (alignment, cells) in \
                zip(tags, extended):
            counters.sw_calls += 1
            counters.sw_cells += cells
            ctx.charge_op("sw_cell", cells)
            self._apply_rescue(xs, pair, alignment, fragment, source,
                               lost_mate)


class SinkStage(QueryStage):
    """Terminal stage: maps each read's final state to a payload.

    Per-read payloads are what flows out of the SPMD job -- ``(read_index,
    payload)`` groups in rank order -- and what the serving stack
    demultiplexes per request, so every plan (built-in or bespoke) is
    automatically batchable and servable.  ``collect`` folds ordered payload
    groups into the plan's end product.
    """

    #: Registry key of the workload this sink implements.
    workload: str = "custom"
    #: Barrier-phase name of the query stages in the trace.
    phase_name: str = "run_stages"
    #: Reads per work unit: 1 for per-read sinks, 2 for paired-end sinks.
    #: The runner and the serving stack permute, chunk and demultiplex whole
    #: units, so mates never separate across ranks or requests.
    group_size: int = 1

    def emit(self, xs: StageContext, item: ReadState):
        """One read's payload (also the place per-read counters settle)."""
        raise NotImplementedError

    def collect(self, groups: Sequence[tuple[int, Any]],
                config: AlignerConfig):
        """Fold ``(read_index, payload)`` groups into the plan output."""
        raise NotImplementedError

    def request_order(self, n_reads: int, config: AlignerConfig) -> list[int]:
        """Payload order reproducing the one-shot output for a request.

        The serving stack demultiplexes a coalesced batch into per-request
        ``{read_index: payload}`` maps and reassembles each request in this
        order before calling :meth:`collect`.
        """
        return list(range(n_reads))

    def empty_payload(self, read: ReadRecord):
        """The payload of a read the SPMD job reported nothing for.

        Unreachable under the every-read-exactly-once contract of
        ``query_program``; the serving stack keeps it as a lenient fallback.
        """
        return None

    def derive_request_counters(self, payloads: Sequence[Any]) -> AlignmentCounters:
        """Per-request event counters derivable from demultiplexed payloads.

        Lookup/SW effort counters cannot be split exactly across the requests
        of a coalesced batch (a bulk window mixes their seeds); those stay on
        the batch-level outcome.
        """
        counters = AlignmentCounters()
        counters.reads_processed = len(payloads)
        return counters

    def process_read(self, xs: StageContext, item: ReadState) -> None:
        raise RuntimeError("sink stages are driven through emit()/collect()")


class EmitSam(SinkStage):
    """The aligner's sink: per-read alignment lists, folded to a flat list.

    The flat list follows canonical *input read order* (the Theorem-1
    permutation is processing-internal only), so chunked/streamed runs
    concatenate to the same bytes as a materialised run;
    :func:`repro.io.sam.sam_text` renders it.
    """

    name = "emit_sam"
    inputs = ("alignments",)
    optional_inputs = ("exact_hits",)
    outputs = ("sam",)
    workload = "align"
    phase_name = "align_reads"

    def emit(self, xs: StageContext, item: ReadState) -> list[Alignment]:
        counters = xs.counters
        if item.resolved is not None:
            counters.reads_aligned += 1
            counters.exact_path_hits += 1
            counters.alignments_reported += 1
            return [item.resolved]
        alignments = item.alignments or []
        if alignments:
            counters.reads_aligned += 1
        counters.alignments_reported += len(alignments)
        return alignments

    def collect(self, groups: Sequence[tuple[int, Any]],
                config: AlignerConfig) -> list[Alignment]:
        ordered = sorted(groups, key=lambda pair: pair[0])
        return [alignment for _read_index, payload in ordered
                for alignment in payload]

    def empty_payload(self, read: ReadRecord) -> list[Alignment]:
        return []

    def derive_request_counters(self, payloads: Sequence[Any]) -> AlignmentCounters:
        counters = AlignmentCounters()
        for alignments in payloads:
            counters.reads_processed += 1
            if alignments:
                counters.reads_aligned += 1
                counters.alignments_reported += len(alignments)
                if len(alignments) == 1 and alignments[0].is_exact:
                    counters.exact_path_hits += 1
        return counters


@dataclass
class SeedCountSummary:
    """The ``count`` workload's output: a query-seed frequency histogram.

    ``histogram`` maps *index occurrences per looked-up query seed* (0 =
    seed absent from the index) to the number of query-seed lookups with
    that occurrence count -- the distributed k-mer-frequency spectrum of the
    read set against the contig index.
    """

    histogram: dict[int, int] = field(default_factory=dict)
    n_reads: int = 0
    n_seed_lookups: int = 0

    @property
    def n_missing(self) -> int:
        """Query-seed lookups that found nothing in the index."""
        return self.histogram.get(0, 0)

    def to_tsv(self) -> str:
        """Deterministic TSV rendering (identical across backends)."""
        lines = ["#workload\tcount",
                 f"#reads\t{self.n_reads}",
                 f"#seed_lookups\t{self.n_seed_lookups}",
                 "occurrences\tn_query_seeds"]
        for occurrences in sorted(self.histogram):
            lines.append(f"{occurrences}\t{self.histogram[occurrences]}")
        return "\n".join(lines) + "\n"

    def to_json_dict(self) -> dict:
        return {
            "workload": "count",
            "n_reads": self.n_reads,
            "n_seed_lookups": self.n_seed_lookups,
            "n_missing": self.n_missing,
            "histogram": {str(k): v for k, v in sorted(self.histogram.items())},
        }


class EmitSeedCounts(SinkStage):
    """Sink of the ``count`` plan: per-read index-occurrence tuples.

    Stops the pipeline after the lookup stage -- no fragment fetches, no
    extension -- and folds a :class:`SeedCountSummary` histogram.
    """

    name = "emit_seed_counts"
    inputs = ("seed_hits",)
    outputs = ("seed_counts",)
    workload = "count"
    phase_name = "count_seeds"

    def emit(self, xs: StageContext, item: ReadState) -> tuple[int, ...]:
        counts = tuple(0 if entry is None else len(entry.values)
                       for _strand, _offset, entry in item.lookups or [])
        xs.counters.seed_lookup_hits += sum(1 for n in counts if n)
        if any(counts):
            xs.counters.reads_aligned += 1
        return counts

    def collect(self, groups: Sequence[tuple[int, Any]],
                config: AlignerConfig) -> SeedCountSummary:
        summary = SeedCountSummary()
        for _read_index, counts in groups:
            summary.n_reads += 1
            summary.n_seed_lookups += len(counts)
            for occurrences in counts:
                summary.histogram[occurrences] = \
                    summary.histogram.get(occurrences, 0) + 1
        return summary

    def empty_payload(self, read: ReadRecord) -> tuple[int, ...]:
        return ()

    def derive_request_counters(self, payloads: Sequence[Any]) -> AlignmentCounters:
        counters = AlignmentCounters()
        for counts in payloads:
            counters.reads_processed += 1
            counters.seed_lookups += len(counts)
            hits = sum(1 for n in counts if n)
            counters.seed_lookup_hits += hits
            if hits:
                counters.reads_aligned += 1
        return counters


@dataclass
class ScreenSummary:
    """The ``screen`` workload's output: one hit/miss row per read.

    Rows are ``(read_name, hit, target_id, position, strand)`` in input read
    order; ``position`` is the 0-based target coordinate of an exact hit and
    -1 for a miss.
    """

    rows: list[tuple[str, bool, int, int, str]] = field(default_factory=list)

    @property
    def n_hits(self) -> int:
        return sum(1 for row in self.rows if row[1])

    def to_tsv(self, target_names: Sequence[str] | None = None) -> str:
        """Deterministic TSV rendering (identical across backends)."""
        lines = ["#workload\tscreen",
                 f"#reads\t{len(self.rows)}",
                 f"#hits\t{self.n_hits}",
                 "read\tstatus\ttarget\tposition\tstrand"]
        for name, hit, target_id, position, strand in self.rows:
            if not hit:
                lines.append(f"{name}\tmiss\t*\t-1\t.")
                continue
            if target_names is not None and 0 <= target_id < len(target_names):
                target = target_names[target_id]
            else:
                target = f"target{target_id}"
            lines.append(f"{name}\thit\t{target}\t{position}\t{strand}")
        return "\n".join(lines) + "\n"

    def to_json_dict(self) -> dict:
        return {
            "workload": "screen",
            "n_reads": len(self.rows),
            "n_hits": self.n_hits,
        }


class EmitScreen(SinkStage):
    """Sink of the ``screen`` plan: exact-match hit/miss rows per read."""

    name = "emit_screen"
    inputs = ("exact_hits",)
    outputs = ("screen_rows",)
    workload = "screen"
    phase_name = "screen_reads"

    def emit(self, xs: StageContext,
             item: ReadState) -> tuple[str, bool, int, int, str]:
        resolved = item.resolved
        if resolved is None:
            return (item.read.name, False, -1, -1, ".")
        counters = xs.counters
        counters.reads_aligned += 1
        counters.exact_path_hits += 1
        counters.alignments_reported += 1
        return (item.read.name, True, resolved.target_id,
                resolved.target_start, resolved.strand)

    def collect(self, groups: Sequence[tuple[int, Any]],
                config: AlignerConfig) -> ScreenSummary:
        ordered = sorted(groups, key=lambda pair: pair[0])
        return ScreenSummary(rows=[payload for _read_index, payload in ordered])

    def empty_payload(self, read: ReadRecord) -> tuple[str, bool, int, int, str]:
        return (read.name, False, -1, -1, ".")

    def derive_request_counters(self, payloads: Sequence[Any]) -> AlignmentCounters:
        counters = AlignmentCounters()
        for row in payloads:
            counters.reads_processed += 1
            if row[1]:
                counters.reads_aligned += 1
                counters.exact_path_hits += 1
                counters.alignments_reported += 1
        return counters


class EmitSamPaired(SinkStage):
    """Sink of the ``paired`` plan: one :class:`PairedSamRecord` per pair.

    Emits exactly two SAM records per pair -- each mate's primary alignment
    or an unmapped placeholder -- with pair flags, RNEXT/PNEXT and a signed
    TLEN.  A pair is *proper* (flag 0x2) when both mates map to the same
    target on opposite strands with a template span between the shorter
    read's length and ``insert_size + 2 * insert_slack``.
    """

    name = "emit_sam_paired"
    inputs = ("pairs",)
    outputs = ("sam",)
    workload = "paired"
    phase_name = "align_reads"
    group_size = 2

    def emit(self, xs: StageContext, pair: PairState) -> PairedSamRecord:
        config, counters = xs.config, xs.counters
        a1, a2 = pair.primary1, pair.primary2
        for primary in (a1, a2):
            if primary is not None:
                counters.reads_aligned += 1
                counters.alignments_reported += 1
                if primary.is_exact:
                    counters.exact_path_hits += 1
        proper, tlen = False, 0
        if a1 is not None and a2 is not None and a1.target_id == a2.target_id:
            left = min(a1.target_start, a2.target_start)
            right = max(a1.target_end, a2.target_end)
            span = right - left
            # Signed for mate 1 (leftmost mate positive; ties favour mate 1).
            tlen = span if a1.target_start <= a2.target_start else -span
            shortest = min(len(pair.r1.read.sequence),
                           len(pair.r2.read.sequence))
            proper = (a1.strand != a2.strand
                      and shortest <= span
                      <= config.insert_size + 2 * config.insert_slack)
        return PairedSamRecord(name1=pair.r1.read.name,
                               name2=pair.r2.read.name,
                               aln1=a1, aln2=a2,
                               rescued=pair.rescued_mate,
                               rescue_attempted=pair.rescue_attempted,
                               proper=proper, tlen=tlen)

    def collect(self, groups: Sequence[tuple[int, Any]],
                config: AlignerConfig) -> list[PairedSamRecord]:
        ordered = sorted(groups, key=lambda pair: pair[0])
        return [payload for _pair_index, payload in ordered]

    def empty_payload(self, unit) -> PairedSamRecord:
        r1, r2 = unit
        return PairedSamRecord(name1=r1.name, name2=r2.name,
                               aln1=None, aln2=None)

    def derive_request_counters(self, payloads: Sequence[Any]) -> AlignmentCounters:
        counters = AlignmentCounters()
        for record in payloads:
            counters.pairs_processed += 1
            counters.reads_processed += 2
            for alignment in (record.aln1, record.aln2):
                if alignment is not None:
                    counters.reads_aligned += 1
                    counters.alignments_reported += 1
                    if alignment.is_exact:
                        counters.exact_path_hits += 1
            if record.rescue_attempted:
                counters.mate_rescue_attempts += 1
            if record.rescued:
                counters.mate_rescues += 1
        return counters


# -- the plan -------------------------------------------------------------------

class PlanValidationError(ValueError):
    """An :class:`AlignmentPlan` whose stages cannot be wired together."""


#: Named values available before any stage runs.
PLAN_SOURCES = ("targets", "reads")


@dataclass(frozen=True)
class AlignmentPlan:
    """A validated sequence of stages, executable by :class:`PlanRunner`.

    Construction validates the dataflow: every stage's declared inputs must
    be produced by an earlier stage or be a plan source (``targets``,
    ``reads``), index construction must precede any stage that consumes the
    index, and exactly one :class:`SinkStage` must terminate the plan.
    """

    stages: tuple[Stage, ...]
    name: str = "custom"

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))
        self.validate()

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        if not self.stages:
            raise PlanValidationError("a plan needs at least one stage")
        available = set(PLAN_SOURCES)
        for stage in self.stages:
            if not isinstance(stage, Stage):
                raise PlanValidationError(
                    f"plan {self.name!r}: {stage!r} is not a Stage")
            missing = [name for name in stage.inputs if name not in available]
            if missing:
                raise PlanValidationError(
                    f"plan {self.name!r}: stage {stage.signature()} needs "
                    f"{missing} which no earlier stage produces "
                    f"(available: {sorted(available)})")
            available.update(stage.outputs)
        sinks = [stage for stage in self.stages if isinstance(stage, SinkStage)]
        if len(sinks) != 1 or not isinstance(self.stages[-1], SinkStage):
            raise PlanValidationError(
                f"plan {self.name!r}: exactly one SinkStage must terminate "
                f"the plan (found {len(sinks)})")
        query_stages = [stage for stage in self.stages
                        if isinstance(stage, QueryStage)]
        if not query_stages or not isinstance(query_stages[0], ReadQueries):
            raise PlanValidationError(
                f"plan {self.name!r}: the query side must start with "
                "ReadQueries (the runner owns chunking and permutation)")
        pair_stages = [stage for stage in self.stages
                       if isinstance(stage, PairStage)]
        if pair_stages and sinks[0].group_size != 2:
            raise PlanValidationError(
                f"plan {self.name!r}: pair stages need a paired sink "
                f"(group_size == 2), got {type(sinks[0]).__name__} with "
                f"group_size {sinks[0].group_size}")
        if sinks[0].group_size not in (1, 2):
            raise PlanValidationError(
                f"plan {self.name!r}: unsupported sink group_size "
                f"{sinks[0].group_size} (1 or 2)")
        seen_pair_stage = False
        for stage in self.stages:
            if isinstance(stage, PairStage):
                seen_pair_stage = True
            elif seen_pair_stage and isinstance(stage, QueryStage) \
                    and not isinstance(stage, SinkStage):
                raise PlanValidationError(
                    f"plan {self.name!r}: per-read stage "
                    f"{stage.signature()} cannot follow a pair stage "
                    "(pairs are joined after the per-read pipeline)")

    # -- structure ------------------------------------------------------------

    @property
    def build_stage(self) -> BuildIndex | None:
        """The index-construction stage, if the plan builds its own index."""
        for stage in self.stages:
            if isinstance(stage, BuildIndex):
                return stage
        return None

    @property
    def query_stages(self) -> tuple[QueryStage, ...]:
        """Everything after index construction, ReadQueries first."""
        return tuple(stage for stage in self.stages
                     if isinstance(stage, QueryStage))

    @property
    def transform_stages(self) -> tuple[QueryStage, ...]:
        """The per-read stages between ReadQueries and the sink."""
        return tuple(stage for stage in self.query_stages
                     if not isinstance(stage, (ReadQueries, SinkStage,
                                               PairStage)))

    @property
    def pair_stages(self) -> tuple[PairStage, ...]:
        """The pair-level stages between the per-read stages and the sink."""
        return tuple(stage for stage in self.query_stages
                     if isinstance(stage, PairStage))

    @property
    def sink(self) -> SinkStage:
        return self.stages[-1]  # validated: last stage is the sink

    @property
    def workload(self) -> str:
        return self.sink.workload

    def describe(self) -> str:
        """Human-readable pipeline listing (used by ``--describe-plan``)."""
        lines = [f"plan {self.name!r} (workload: {self.workload})"]
        for stage in self.stages:
            lines.append(f"  {stage.signature()}")
        return "\n".join(lines)

    # -- presets ---------------------------------------------------------------

    @classmethod
    def default(cls) -> "AlignmentPlan":
        """The full merAligner pipeline (what ``MerAligner.run`` executes)."""
        return cls(name="align", stages=(
            BuildIndex(),
            ReadQueries(),
            ExactPath(),
            SeedLookup(),
            CandidateCollect(),
            ExtendAlign(),
            EmitSam(),
        ))

    @classmethod
    def seed_count(cls) -> "AlignmentPlan":
        """Distributed query-seed frequency histogram: stop after lookup."""
        return cls(name="count", stages=(
            BuildIndex(),
            ReadQueries(),
            SeedLookup(),
            EmitSeedCounts(),
        ))

    @classmethod
    def exact_screen(cls) -> "AlignmentPlan":
        """Exact-match-only read screening: hit/miss per read.

        The probe is unconditional, so the index build must mark single-copy
        flags even when ``use_exact_match_optimization`` is off -- otherwise
        the flags keep their optimistic default and the screen's output would
        silently depend on an align-phase knob.
        """
        return cls(name="screen", stages=(
            BuildIndex(mark_single_copy=True),
            ReadQueries(),
            ExactPath(force=True),
            EmitScreen(),
        ))

    @classmethod
    def paired(cls) -> "AlignmentPlan":
        """Paired-end alignment: the full per-read pipeline on both mates,
        then pair joining, mate rescue and the paired SAM sink.

        The unit of permutation, chunking and service demultiplexing is the
        *pair* (the sink declares ``group_size == 2``), so mates always land
        on the same rank and mate rescue can anchor on its partner.
        """
        return cls(name="paired", stages=(
            BuildIndex(),
            ReadQueries(),
            ExactPath(),
            SeedLookup(),
            CandidateCollect(),
            ExtendAlign(),
            PairJoin(),
            MateRescue(),
            EmitSamPaired(),
        ))

    def needs_single_copy_marks(self) -> bool:
        """True when any stage probes exact matches unconditionally."""
        return any(isinstance(stage, ExactPath) and stage.force
                   for stage in self.stages)


#: The plans the CLI and the serving stack know by workload name.
WORKLOAD_PLANS = {
    "align": AlignmentPlan.default,
    "count": AlignmentPlan.seed_count,
    "screen": AlignmentPlan.exact_screen,
    "paired": AlignmentPlan.paired,
}


def plan_for_workload(workload: str) -> AlignmentPlan:
    """The registered plan for *workload* (``align``, ``count``, ``screen``,
    ``paired``)."""
    try:
        factory = WORKLOAD_PLANS[workload]
    except KeyError:
        raise KeyError(f"unknown workload {workload!r}; "
                       f"available: {', '.join(sorted(WORKLOAD_PLANS))}") from None
    return factory()


#: Cache of sink group sizes keyed by (workload, registered factory) --
#: keyed on the factory too so re-registering a workload in the mutable
#: :data:`WORKLOAD_PLANS` registry invalidates the cached size.
_GROUP_SIZE_CACHE: dict[tuple, int] = {}


def workload_group_size(workload: str) -> int:
    """The sink ``group_size`` of a registered workload, cached.

    The request scheduler validates unit divisibility on every submission;
    caching here keeps plan construction off that hot path.
    """
    try:
        factory = WORKLOAD_PLANS[workload]
    except KeyError:
        raise KeyError(f"unknown workload {workload!r}; "
                       f"available: {', '.join(sorted(WORKLOAD_PLANS))}") from None
    key = (workload, factory)
    if key not in _GROUP_SIZE_CACHE:
        _GROUP_SIZE_CACHE[key] = factory().sink.group_size
    return _GROUP_SIZE_CACHE[key]


# -- execution ------------------------------------------------------------------

@dataclass
class PlanResult:
    """Everything one plan execution produced.

    ``output`` is the sink's folded product -- the flat alignment list for
    ``align``, a :class:`SeedCountSummary` for ``count``, a
    :class:`ScreenSummary` for ``screen``, whatever a bespoke sink collects.
    ``report`` is the full :class:`AlignerReport` (phase timings, per-stage
    stats, communication counters) of the run.
    """

    plan: AlignmentPlan
    output: Any
    report: AlignerReport

    @property
    def workload(self) -> str:
        return self.plan.workload


class PlanRunner:
    """Executes an :class:`AlignmentPlan` on a simulated PGAS machine.

    The runner owns the parts of execution that are not any stage's
    business: read-set normalization, the Theorem 1 random permutation,
    block chunking over ranks, the window width of the single unit-based
    engine (``lookup_batch_size`` units when bulk, one unit when
    fine-grained), per-stage :class:`PhaseStats` collection, and assembling
    the final report.  Stages only transform state and charge costs.
    """

    def __init__(self, plan: AlignmentPlan | None = None,
                 config: AlignerConfig | None = None) -> None:
        self.plan = plan or AlignmentPlan.default()
        self.config = config or AlignerConfig()

    # -- one-shot execution ----------------------------------------------------

    def run(self, targets, reads, n_ranks: int = 4,
            machine: MachineModel = EDISON_LIKE,
            backend: str | None = None) -> PlanResult:
        """Execute the plan end-to-end on a fresh simulated machine."""
        runtime = PgasRuntime(n_ranks=n_ranks, machine=machine)
        return self.run_on_runtime(runtime, targets, reads, backend=backend)

    def run_on_runtime(self, runtime: PgasRuntime, targets, reads,
                       backend: str | None = None) -> PlanResult:
        """Execute the plan on an existing runtime (shared machine model)."""
        from repro.backend import default_backend_name
        if self.plan.build_stage is None:
            raise PlanValidationError(
                f"plan {self.plan.name!r} has no BuildIndex stage; run its "
                "query side against a resident session instead")
        backend = backend or default_backend_name()
        config = self.config
        target_seqs = normalize_targets(targets)
        read_records = normalize_reads(reads)
        group = self.plan.sink.group_size
        if group > 1 and len(read_records) % group != 0:
            raise ValueError(
                f"plan {self.plan.name!r} works on units of {group} reads, "
                f"got {len(read_records)} (pass an interleaved paired read "
                "set, or use normalize_paired_reads)")
        original_index: list[int] | None = None
        if config.permute_reads:
            # Position i of the permuted list holds original unit
            # original_index[i]; groups are remapped below so sinks see
            # original unit indices (the align sink flattens in permuted-rank
            # order regardless; order-sensitive sinks like screen need them).
            # The permutation unit is the sink's group (reads for per-read
            # sinks, whole pairs for the paired sink -- mates never split).
            n_units = len(read_records) // group
            original_index = permute_reads(list(range(n_units)),
                                           seed=config.permutation_seed)
            if group == 1:
                read_records = permute_reads(read_records,
                                             seed=config.permutation_seed)
            else:
                units = [read_records[i * group:(i + 1) * group]
                         for i in range(n_units)]
                units = permute_reads(units, seed=config.permutation_seed)
                read_records = [read for unit in units for read in unit]

        target_store = TargetStore(runtime)
        seed_index = SeedIndex(runtime, config)
        seed_cache = (SoftwareCache(runtime, config.seed_cache_bytes_per_node,
                                    name="seed_index")
                      if config.use_seed_index_cache else None)
        target_cache = (SoftwareCache(runtime, config.target_cache_bytes_per_node,
                                      name="target")
                        if config.use_target_cache else None)

        def spmd(ctx: RankContext):
            yield from self.index_program(ctx, target_seqs, target_store,
                                          seed_index)
            return (yield from self.query_program(
                ctx, read_records, seed_index, target_store, seed_cache,
                target_cache))

        result = runtime.run_spmd(spmd, backend=backend,
                                  label=f"plan:{self.plan.name}")

        groups, counters, stage_stats = merge_rank_returns(
            result.results, self.plan)
        if original_index is not None:
            groups = [(original_index[index], payload)
                      for index, payload in groups]
        output = self.plan.sink.collect(groups, config)

        cache_stats = {}
        if seed_cache is not None:
            cache_stats["seed_index"] = seed_cache.total_stats()
        if target_cache is not None:
            cache_stats["target"] = target_cache.total_stats()

        report = AlignerReport(
            n_ranks=runtime.n_ranks,
            config_summary=config_summary(config, result.backend,
                                          plan=self.plan.name,
                                          workload=self.plan.workload),
            alignments=output if self.plan.workload == "align" else [],
            counters=counters,
            phases=result.phases,
            per_rank_stats=result.per_rank_stats,
            seed_index_keys=seed_index.n_keys,
            seed_index_values=seed_index.n_values,
            single_copy_fragment_fraction=target_store.single_copy_fraction(),
            cache_stats=cache_stats,
            stage_stats=stage_stats,
            workload=self.plan.workload,
        )
        return PlanResult(plan=self.plan, output=output, report=report)

    # -- the per-rank SPMD programs --------------------------------------------

    def index_program(self, ctx: RankContext, target_seqs: list[str],
                      target_store: TargetStore, seed_index: SeedIndex):
        """The plan's index-construction phases (one SPMD generator)."""
        build = self.plan.build_stage
        if build is None:
            raise PlanValidationError(
                f"plan {self.plan.name!r} has no BuildIndex stage")
        xs = StageContext(ctx, self.config, seed_index, target_store,
                          None, None, AlignmentCounters())
        yield from build.program(xs, target_seqs)

    def query_program(self, ctx: RankContext, read_records: list[ReadRecord],
                      seed_index: SeedIndex, target_store: TargetStore,
                      seed_cache: SoftwareCache | None,
                      target_cache: SoftwareCache | None):
        """The plan's query phases: chunk, then stage the reads through.

        Returns ``(groups, counters, stage_stats)`` where ``groups`` is
        ``[(read_index, payload), ...]`` -- ``read_index`` the read's
        position in *read_records*, every read of this rank's chunk present
        exactly once, payload produced by the plan's sink.  Concatenating
        groups in rank order reproduces the one-shot output order; the
        serving stack uses the indices to demultiplex coalesced requests.
        """
        config = self.config
        counters = AlignmentCounters()
        xs = StageContext(ctx, config, seed_index, target_store, seed_cache,
                          target_cache, counters)
        stage_stats: dict[str, PhaseStats] = {
            stage.name: PhaseStats(name=stage.name)
            for stage in self.plan.query_stages}
        read_queries = self.plan.query_stages[0]
        transforms = self.plan.transform_stages
        pair_stages = self.plan.pair_stages
        sink = self.plan.sink
        group = sink.group_size

        # Phase 5: parallel read of the (optionally permuted) query chunk.
        # Chunking is unit-based: for per-read sinks units are reads; for the
        # paired sink a unit is a whole (R1, R2) pair, so mates share a rank.
        n_units = len(read_records) // group
        my_indices = chunk_for_rank(list(range(n_units)), ctx.me, ctx.n_ranks)
        my_reads = [read_records[unit * group + offset]
                    for unit in my_indices for offset in range(group)]
        before = ctx.clock.snapshot()
        read_queries.charge(xs, my_reads)
        stage_stats[read_queries.name].add_breakdown(
            ctx.clock.snapshot() - before, items=len(my_reads))
        yield read_queries.name

        # The staged phase: ONE engine, windowed over sink-sized units.
        # Bulk mode batches ``lookup_batch_size`` units per window and drives
        # the stages' process_window forms; fine-grained mode is the same
        # loop with windows of one unit driving process_read per stage.
        groups: list[tuple[int, Any]] = []

        def timed(stage: QueryStage, method, *args, items: int = 0) -> None:
            start = ctx.clock.snapshot()
            method(xs, *args)
            stage_stats[stage.name].add_breakdown(ctx.clock.snapshot() - start,
                                                  items=items)

        def emit_timed(states, indices) -> None:
            begin = ctx.clock.snapshot()
            payloads = [sink.emit(xs, state) for state in states]
            stage_stats[sink.name].add_breakdown(
                ctx.clock.snapshot() - begin, items=len(states))
            groups.extend(zip(indices, payloads))

        def run_units(start: int, count: int) -> None:
            """One window of units through per-read, pair and sink stages."""
            unit_indices = my_indices[start:start + count]
            unit_states = [[ReadState(read, config) for read in
                            my_reads[offset * group:(offset + 1) * group]]
                           for offset in range(start, start + len(unit_indices))]
            items = [item for states in unit_states for item in states]
            counters.reads_processed += len(items)
            xs.begin_window()
            if config.use_bulk_lookups:
                for stage in transforms:
                    timed(stage, stage.process_window, items,
                          items=len(items))
            else:
                for item in items:
                    for stage in transforms:
                        if not item.pending:
                            break
                        timed(stage, stage.process_read, item, items=1)
            if group > 1:
                units = [PairState(index, *states) for index, states in
                         zip(unit_indices, unit_states)]
                for stage in pair_stages:
                    timed(stage, stage.process_pairs, units, items=len(units))
            else:
                units = items
            emit_timed(units, unit_indices)

        window = config.lookup_batch_size if config.use_bulk_lookups else 1
        for start in range(0, len(my_indices), window):
            run_units(start, window)
        yield sink.phase_name
        return groups, counters, stage_stats


def merge_rank_returns(rank_returns: Iterable[tuple], plan: AlignmentPlan
                       ) -> tuple[list[tuple[int, Any]], AlignmentCounters,
                                  list[PhaseStats]]:
    """Merge per-rank ``query_program`` returns in rank order.

    Returns the concatenated ``(read_index, payload)`` groups, the merged
    event counters, and the cross-rank-summed per-stage stats in plan order.
    """
    groups: list[tuple[int, Any]] = []
    counters = AlignmentCounters()
    merged: dict[str, PhaseStats] = {}
    for rank_groups, rank_counters, rank_stage_stats in rank_returns:
        groups.extend(rank_groups)
        counters = counters.merge(rank_counters)
        for name, stats in rank_stage_stats.items():
            merged[name] = merged[name].merge(stats) if name in merged else stats
    ordered = [merged[stage.name] for stage in plan.query_stages
               if stage.name in merged]
    return groups, counters, ordered
