"""Distributed storage and fragmentation of target sequences.

Target (contig) sequences are read by the ranks in parallel and stored in the
shared address space so that any rank can fetch any target (Algorithm 1, line
4).  Section IV-A additionally fragments long targets into subsequences with
*disjoint seed sets* (consecutive fragments overlap by ``k - 1`` bases) so
that a single repeated seed does not disqualify a whole contig from the
exact-match optimization; each fragment carries its own
``single_copy_seeds`` flag and remembers its parent contig and offset so
alignments are reported in contig coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dna.compression import PackedSequence
from repro.pgas.gptr import GlobalPointer
from repro.pgas.runtime import BulkTransferPlan, PgasRuntime, RankContext


@dataclass
class FragmentRecord:
    """One fragment of a target stored in some rank's shared segment.

    Attributes:
        fragment_id: globally unique fragment identifier.
        parent_target_id: index of the contig the fragment came from.
        parent_offset: offset of the fragment's first base in the contig.
        packed: 2-bit packed fragment sequence.
        single_copy_seeds: True while every seed of the fragment is believed
            to occur exactly once across all targets (section IV-A); flipped
            to False during seed-index construction when a duplicate seed is
            discovered.
    """

    fragment_id: int
    parent_target_id: int
    parent_offset: int
    packed: PackedSequence
    single_copy_seeds: bool = True

    @property
    def length(self) -> int:
        return self.packed.length

    @property
    def nbytes(self) -> int:
        """Wire size of the fragment (compressed sequence plus metadata)."""
        return self.packed.nbytes + 32

    def sequence(self) -> str:
        return self.packed.to_string()


def fragment_target(target_id: int, sequence: str, fragment_length: int,
                    seed_length: int) -> list[tuple[int, str]]:
    """Cut one target into overlapping fragments with disjoint seed sets.

    Consecutive fragments overlap by ``seed_length - 1`` bases so that every
    seed of the original target belongs to exactly one fragment and no seed is
    lost or duplicated.  Returns ``[(parent_offset, fragment_sequence), ...]``.

    A target no longer than *fragment_length* is returned unfragmented.
    """
    if fragment_length <= seed_length:
        raise ValueError("fragment_length must exceed seed_length")
    if not sequence:
        return []
    if len(sequence) <= fragment_length:
        return [(0, sequence)]
    step = fragment_length - (seed_length - 1)
    fragments: list[tuple[int, str]] = []
    start = 0
    while start < len(sequence):
        stop = min(len(sequence), start + fragment_length)
        fragments.append((start, sequence[start:stop]))
        if stop == len(sequence):
            break
        start += step
    return fragments


def _clear_single_copy(segment: dict, key) -> bool:
    """Heap-apply body of the single-copy flag flip: runs where the fragment
    lives, returns True when the flag actually changed."""
    record: FragmentRecord = segment[key]
    if record.single_copy_seeds:
        record.single_copy_seeds = False
        return True
    return False


@dataclass
class TargetDirectoryEntry:
    """Lightweight description of a fragment kept in the global directory."""

    pointer: GlobalPointer
    parent_target_id: int
    parent_offset: int
    length: int


class TargetStore:
    """Per-rank shared storage of target fragments plus a global directory.

    The directory (fragment id -> :class:`TargetDirectoryEntry`) is replicated
    on the driver for bookkeeping; the aligner itself never scans it -- seed
    index entries carry the fragment's :class:`GlobalPointer` directly, as in
    the paper where hash-table values are pointers to target sequences.
    """

    SEGMENT = "fragments"

    def __init__(self, runtime: PgasRuntime) -> None:
        self.runtime = runtime
        runtime.heap.alloc_all(self.SEGMENT, lambda rank: dict())
        self.directory: dict[int, TargetDirectoryEntry] = {}
        self._next_fragment_id: list[int] = [0]

    # -- storing (called by the owning rank during the read_targets phase) -----

    def store_fragment(self, ctx: RankContext, fragment_id: int, target_id: int,
                       parent_offset: int, sequence: str) -> FragmentRecord:
        """Pack and store one fragment in the calling rank's shared segment."""
        packed = PackedSequence.from_string(sequence)
        record = FragmentRecord(fragment_id=fragment_id,
                                parent_target_id=target_id,
                                parent_offset=parent_offset,
                                packed=packed)
        ctx.heap.store(ctx.me, self.SEGMENT, fragment_id, record)
        ctx.charge_op("base_copy", len(sequence))
        pointer = GlobalPointer(owner=ctx.me, segment=self.SEGMENT,
                                key=fragment_id, nbytes=record.nbytes)
        self.directory[fragment_id] = TargetDirectoryEntry(
            pointer=pointer, parent_target_id=target_id,
            parent_offset=parent_offset, length=record.length)
        return record

    def allocate_fragment_ids(self, count: int, rank: int, n_ranks: int,
                              n_targets_hint: int = 1 << 20) -> list[int]:
        """Deterministic, collision-free fragment id block for one rank.

        Ids are ``rank * stride + i`` with a stride large enough that ranks
        never collide; determinism keeps the cooperative and threaded
        executors in agreement.
        """
        stride = max(n_targets_hint, 1 << 20)
        base = rank * stride
        return [base + i for i in range(count)]

    # -- fetching (alignment phase) ---------------------------------------------

    def fetch(self, ctx: RankContext, pointer: GlobalPointer,
              cache=None) -> FragmentRecord:
        """Fetch a fragment through its global pointer, optionally via the
        per-node target cache.

        The full compressed fragment is charged on a miss; a cache hit is an
        on-node access.
        """
        if pointer.owner == ctx.me:
            ctx.charge_get(pointer.owner, 0, category="target:fetch")
            return ctx.heap.load(pointer.owner, self.SEGMENT, pointer.key)
        if cache is not None:
            hit, cached = cache.get(ctx, ("target", pointer.key))
            if hit:
                return cached
        record: FragmentRecord = ctx.heap.load(pointer.owner, self.SEGMENT,
                                               pointer.key)
        ctx.charge_get(pointer.owner, record.nbytes, category="target:fetch")
        if cache is not None:
            cache.put(ctx, ("target", pointer.key), record, record.nbytes)
        return record

    def fetch_many(self, ctx: RankContext, pointers: list[GlobalPointer],
                   cache=None) -> list[FragmentRecord]:
        """Batched fragment fetch; records returned in pointer order.

        Equivalent to calling :meth:`fetch` per pointer -- locally owned
        fragments are read in place and the per-node target cache is consulted
        and filled in the same order, so cache hit/miss/eviction counts match
        the fine-grained path -- but remote misses are charged as **one**
        aggregated get per owning rank, and a fragment missed more than once
        within a batch rides the aggregate transfer only once.  The whole
        batch is prefetched with a single heap message (skipping fragments
        the cache can serve), which keeps the bulk engine fast on the
        multiprocess backend without perturbing the accounting loop.
        """
        prefetched = self._prefetch(ctx, pointers, cache)
        records: list[FragmentRecord] = []
        plan = BulkTransferPlan()
        for pointer in pointers:
            if pointer.owner == ctx.me:
                ctx.charge_get(pointer.owner, 0, category="target:fetch")
                records.append(self._read(ctx, prefetched, pointer))
                continue
            if cache is not None:
                hit, cached = cache.get(ctx, ("target", pointer.key))
                if hit:
                    records.append(cached)
                    continue
            record: FragmentRecord = self._read(ctx, prefetched, pointer)
            plan.add(pointer.owner, record.nbytes,
                     dedupe_key=(pointer.owner, pointer.key))
            if cache is not None:
                cache.put(ctx, ("target", pointer.key), record, record.nbytes)
            records.append(record)
        plan.charge_gets(ctx, "target:fetch")
        return records

    def _prefetch(self, ctx: RankContext, pointers: list[GlobalPointer],
                  cache) -> dict:
        """One heap message reading every fragment the cache cannot serve."""
        wanted: list[tuple[int, str, object]] = []
        seen: set = set()
        for pointer in pointers:
            address = (pointer.owner, pointer.key)
            if address in seen:
                continue
            seen.add(address)
            if (pointer.owner != ctx.me and cache is not None
                    and cache.peek(ctx, ("target", pointer.key))):
                continue
            wanted.append((pointer.owner, self.SEGMENT, pointer.key))
        values = ctx.heap.load_many(wanted)
        return {(owner, key): value
                for (owner, _segment, key), value in zip(wanted, values)}

    def _read(self, ctx: RankContext, prefetched: dict,
              pointer: GlobalPointer) -> FragmentRecord:
        record = prefetched.get((pointer.owner, pointer.key))
        if record is None:
            # Rare: peeked as cached but evicted within the batch.
            record = ctx.heap.load(pointer.owner, self.SEGMENT, pointer.key)
        return record

    def mark_not_single_copy(self, ctx: RankContext, pointer: GlobalPointer) -> None:
        """Clear a fragment's single-copy-seeds flag (one small remote put)."""
        changed = ctx.heap.apply(pointer.owner, self.SEGMENT,
                                 _clear_single_copy, pointer.key)
        if changed:
            ctx.charge_put(pointer.owner, 1, category="target:flag")

    # -- driver-side inspection ----------------------------------------------------

    @property
    def n_fragments(self) -> int:
        return len(self.directory)

    def fragments_on_rank(self, rank: int) -> list[FragmentRecord]:
        return list(self.runtime.heap.segment(rank, self.SEGMENT).values())

    def all_fragments(self) -> list[FragmentRecord]:
        records: list[FragmentRecord] = []
        for rank in range(self.runtime.n_ranks):
            records.extend(self.fragments_on_rank(rank))
        return records

    def single_copy_fraction(self) -> float:
        """Fraction of fragments whose seeds are all single-copy."""
        fragments = self.all_fragments()
        if not fragments:
            return 0.0
        return sum(1 for f in fragments if f.single_copy_seeds) / len(fragments)
