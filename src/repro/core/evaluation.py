"""Evaluation of alignments against the synthetic ground truth.

The paper reports the fraction of reads aligned (86.3 % human, 97.4 % E. coli)
and argues the algorithm finds every alignment sharing a length-k exact seed.
Because our synthetic reads record exactly where they were sampled from,
reproduction experiments can measure stronger quantities:

* **aligned fraction** -- reads with at least one reported alignment;
* **recall** -- reads whose reported alignments include the true origin
  (correct contig, position within a tolerance);
* **precision** -- reported alignments that correspond to the true origin of
  their read (informative mostly for repetitive references, where secondary
  alignments are expected and legitimate);
* **strand accuracy** -- origin-hitting alignments that also recover the
  strand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.alignment.result import Alignment
from repro.dna.synthetic import ReadRecord


@dataclass(frozen=True)
class EvaluationResult:
    """Summary of an alignment set against the read ground truth.

    Attributes:
        n_reads: number of reads evaluated.
        n_locatable: reads whose true origin lies inside a single contig
            (reads sampled across inter-contig gaps cannot be recovered and
            are excluded from recall).
        n_aligned: reads with at least one reported alignment.
        n_recalled: locatable reads with an alignment hitting the true origin.
        n_alignments: total alignments reported.
        n_correct_alignments: alignments hitting their read's true origin.
        n_correct_strand: origin-hitting alignments with the correct strand.
    """

    n_reads: int
    n_locatable: int
    n_aligned: int
    n_recalled: int
    n_alignments: int
    n_correct_alignments: int
    n_correct_strand: int

    @property
    def aligned_fraction(self) -> float:
        return self.n_aligned / self.n_reads if self.n_reads else 0.0

    @property
    def recall(self) -> float:
        return self.n_recalled / self.n_locatable if self.n_locatable else 0.0

    @property
    def precision(self) -> float:
        return (self.n_correct_alignments / self.n_alignments
                if self.n_alignments else 0.0)

    @property
    def strand_accuracy(self) -> float:
        return (self.n_correct_strand / self.n_correct_alignments
                if self.n_correct_alignments else 0.0)

    def as_dict(self) -> dict[str, float]:
        return {
            "aligned_fraction": self.aligned_fraction,
            "recall": self.recall,
            "precision": self.precision,
            "strand_accuracy": self.strand_accuracy,
            "n_reads": float(self.n_reads),
            "n_alignments": float(self.n_alignments),
        }


def _origin_hit(alignment: Alignment, read: ReadRecord, tolerance: int) -> bool:
    return (alignment.target_id == read.contig_id
            and abs(alignment.target_start - read.position) <= tolerance)


def evaluate_alignments(reads: Sequence[ReadRecord],
                        alignments: Iterable[Alignment],
                        tolerance: int = 3) -> EvaluationResult:
    """Score *alignments* against the ground truth carried by *reads*.

    Args:
        reads: the synthetic reads (with ``contig_id``/``position``/``strand``).
        alignments: alignments produced by any aligner in this package.
        tolerance: maximum start-coordinate error (in bases) for an alignment
            to count as hitting its read's origin; small local clips around
            sequencing errors make an exact-position requirement too strict.

    Raises:
        KeyError: if an alignment references a read name not present in *reads*.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    by_name: dict[str, ReadRecord] = {read.name: read for read in reads}
    aligned_names: set[str] = set()
    recalled_names: set[str] = set()
    n_alignments = 0
    n_correct = 0
    n_correct_strand = 0
    for alignment in alignments:
        read = by_name.get(alignment.query_name)
        if read is None:
            raise KeyError(f"alignment references unknown read {alignment.query_name!r}")
        n_alignments += 1
        aligned_names.add(read.name)
        if read.contig_id < 0:
            continue
        if _origin_hit(alignment, read, tolerance):
            n_correct += 1
            recalled_names.add(read.name)
            if alignment.strand == read.strand:
                n_correct_strand += 1
    locatable = sum(1 for read in reads if read.contig_id >= 0)
    return EvaluationResult(
        n_reads=len(reads),
        n_locatable=locatable,
        n_aligned=len(aligned_names),
        n_recalled=len(recalled_names),
        n_alignments=n_alignments,
        n_correct_alignments=n_correct,
        n_correct_strand=n_correct_strand,
    )


def compare_aligners(reads: Sequence[ReadRecord],
                     results: dict[str, Iterable[Alignment]],
                     tolerance: int = 3) -> dict[str, EvaluationResult]:
    """Evaluate several aligners' outputs against the same read set.

    Returns a mapping from aligner name to its :class:`EvaluationResult`,
    preserving the input order.
    """
    return {name: evaluate_alignments(reads, alignments, tolerance=tolerance)
            for name, alignments in results.items()}
