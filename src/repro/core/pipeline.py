"""The end-to-end parallel aligner (Algorithm 1 with all optimizations).

:class:`MerAligner` orchestrates the SPMD phases of the paper:

1. ``read_targets`` -- every rank reads its block of the target (contig) set
   in parallel, fragments long targets (section IV-A) and stores the packed
   fragments in its shared segment.
2. ``extract_and_store_seeds`` -- every rank extracts the seeds of its own
   fragments and routes each entry to the owning rank, either through the
   aggregating-stores buffers or with fine-grained remote stores.
3. ``drain_stacks`` -- (aggregating stores only) every rank drains its
   local-shared stack into its local buckets; no locks, no communication.
4. ``mark_single_copy`` -- every rank scans its partition of the index and
   clears the single-copy flag of fragments that own duplicated seeds.
5. ``read_queries`` -- every rank reads its chunk of the (optionally
   randomly permuted) read set in parallel.
6. ``align_reads`` -- seed-and-extend with the exact-match fast path,
   per-node software caches and the max-alignments-per-seed threshold.
   With ``use_bulk_lookups`` the phase runs through the batched
   bulk-communication engine instead: reads are processed in windows of
   ``lookup_batch_size``, every window's seed lookups and (deduplicated)
   fragment fetches are aggregated into one get per destination rank, and
   same-shaped extension windows share one sweep of the batched striped
   kernel.  Both modes report identical alignments.

The result is an :class:`~repro.core.stats.AlignerReport` carrying the
alignments, per-phase modelled timings, communication statistics and event
counters -- everything the paper's figures and tables are built from.
"""

from __future__ import annotations

from pathlib import Path

from repro.alignment.exact import exact_match_at
from repro.alignment.extend import SeedHit, extend_batch, extend_seed_hit
from repro.alignment.result import Alignment, CigarOp
from repro.core.config import AlignerConfig
from repro.core.load_balance import chunk_for_rank, permute_reads
from repro.core.seed_index import SeedIndex
from repro.core.stats import AlignerReport, AlignmentCounters
from repro.core.target_store import TargetStore, fragment_target
from repro.dna.sequence import reverse_complement
from repro.dna.synthetic import ReadRecord
from repro.hashtable.cache import SoftwareCache
from repro.io.fasta import FastaRecord, read_fasta
from repro.io.fastq import FastqRecord, read_fastq
from repro.io.seqdb import SeqDbReader
from repro.pgas.cost_model import EDISON_LIKE, MachineModel
from repro.pgas.gptr import GlobalPointer
from repro.pgas.runtime import PgasRuntime, RankContext


def _normalize_targets(targets) -> list[str]:
    """Accept a FASTA path, FastaRecords, or plain sequences."""
    return [sequence for _name, sequence in _normalize_targets_named(targets)]


def _normalize_targets_named(targets) -> list[tuple[str, str]]:
    """Like :func:`_normalize_targets` but keeps (or synthesizes) names.

    The alignment service needs target names to emit SAM headers identical to
    the offline CLI; plain sequences get the same ``contig{i:05d}`` names the
    data generator writes.
    """
    if isinstance(targets, (str, Path)):
        return [(record.name, record.sequence) for record in read_fasta(targets)]
    named: list[tuple[str, str]] = []
    for index, item in enumerate(targets):
        if isinstance(item, FastaRecord):
            named.append((item.name, item.sequence))
        elif isinstance(item, str):
            named.append((f"contig{index:05d}", item))
        else:
            raise TypeError(f"unsupported target type: {type(item)!r}")
    return named


def _normalize_reads(reads) -> list[ReadRecord]:
    """Accept a SeqDB/FASTQ path, FastqRecords, or ReadRecords."""
    if isinstance(reads, (str, Path)):
        path = Path(reads)
        if path.suffix in (".seqdb", ".sqdb", ".db"):
            with SeqDbReader(path) as reader:
                return [rec.to_read() for rec in reader.read_range(0, len(reader))]
        return [rec.to_read() for rec in read_fastq(path)]
    normalized: list[ReadRecord] = []
    for item in reads:
        if isinstance(item, ReadRecord):
            normalized.append(item)
        elif isinstance(item, FastqRecord):
            normalized.append(item.to_read())
        else:
            raise TypeError(f"unsupported read type: {type(item)!r}")
    return normalized


def config_summary(config: AlignerConfig, backend: str) -> dict:
    """The configuration digest embedded in every :class:`AlignerReport`."""
    return {
        "seed_length": config.seed_length,
        "aggregating_stores": config.use_aggregating_stores,
        "seed_index_cache": config.use_seed_index_cache,
        "target_cache": config.use_target_cache,
        "exact_match_optimization": config.use_exact_match_optimization,
        "permute_reads": config.permute_reads,
        "max_alignments_per_seed": config.max_alignments_per_seed,
        "bulk_lookups": config.use_bulk_lookups,
        "lookup_batch_size": config.lookup_batch_size,
        "backend": backend,
    }


class MerAligner:
    """The fully parallel seed-and-extend aligner."""

    def __init__(self, config: AlignerConfig | None = None) -> None:
        self.config = config or AlignerConfig()

    # -- public API -------------------------------------------------------------

    def run(self, targets, reads, n_ranks: int = 4,
            machine: MachineModel = EDISON_LIKE,
            backend: str | None = None) -> AlignerReport:
        """Align *reads* against *targets* on a fresh simulated machine.

        Args:
            targets: FASTA path, list of :class:`FastaRecord`, or sequences.
            reads: SeqDB/FASTQ path, list of :class:`FastqRecord`, or
                :class:`ReadRecord` objects.
            n_ranks: number of simulated ranks (cores).
            machine: machine model used for cost accounting.
            backend: execution backend name (``cooperative``, ``threaded``,
                ``process``); ``None`` uses the ``REPRO_BACKEND`` environment
                variable, falling back to ``cooperative``.  Every backend
                reports byte-identical alignments.

        Returns:
            The :class:`AlignerReport` of the run.
        """
        runtime = PgasRuntime(n_ranks=n_ranks, machine=machine)
        return self.run_on_runtime(runtime, targets, reads, backend=backend)

    def run_on_runtime(self, runtime: PgasRuntime, targets, reads,
                       backend: str | None = None) -> AlignerReport:
        """Align on an existing runtime (lets callers share a machine model)."""
        from repro.backend import default_backend_name
        backend = backend or default_backend_name()
        config = self.config
        target_seqs = _normalize_targets(targets)
        read_records = _normalize_reads(reads)
        if config.permute_reads:
            read_records = permute_reads(read_records, seed=config.permutation_seed)

        target_store = TargetStore(runtime)
        seed_index = SeedIndex(runtime, config)
        seed_cache = (SoftwareCache(runtime, config.seed_cache_bytes_per_node,
                                    name="seed_index")
                      if config.use_seed_index_cache else None)
        target_cache = (SoftwareCache(runtime, config.target_cache_bytes_per_node,
                                      name="target")
                        if config.use_target_cache else None)

        def spmd(ctx: RankContext):
            return (yield from self._rank_program(
                ctx, target_seqs, read_records, target_store, seed_index,
                seed_cache, target_cache))

        result = runtime.run_spmd(spmd, backend=backend)

        counters = AlignmentCounters()
        alignments: list[Alignment] = []
        for rank_groups, rank_counters in result.results:
            for _read_index, group in rank_groups:
                alignments.extend(group)
            counters = counters.merge(rank_counters)

        cache_stats = {}
        if seed_cache is not None:
            cache_stats["seed_index"] = seed_cache.total_stats()
        if target_cache is not None:
            cache_stats["target"] = target_cache.total_stats()

        return AlignerReport(
            n_ranks=runtime.n_ranks,
            config_summary=config_summary(config, result.backend),
            alignments=alignments,
            counters=counters,
            phases=result.phases,
            per_rank_stats=result.per_rank_stats,
            seed_index_keys=seed_index.n_keys,
            seed_index_values=seed_index.n_values,
            single_copy_fragment_fraction=target_store.single_copy_fraction(),
            cache_stats=cache_stats,
        )

    def prepare(self, targets, n_ranks: int = 4,
                machine: MachineModel = EDISON_LIKE,
                backend: str | None = None, target_names: list[str] | None = None):
        """Build the distributed index once and return a resident session.

        The expensive SPMD index-construction phases (target fragmentation,
        seed extraction and routing, single-copy marking) run exactly once;
        the returned :class:`~repro.service.session.AlignmentSession` keeps
        the runtime, seed index, target store and per-node caches alive so
        ``session.align(reads)`` can be called many times, each call running
        only the aligning phases.  This is the serving path: one index, many
        independent requests, on any execution backend.

        Args:
            targets: FASTA path (optionally gzipped), :class:`FastaRecord`
                list, or plain sequences.
            n_ranks: number of simulated ranks (cores).
            machine: machine model used for cost accounting.
            backend: execution backend name; ``None`` uses ``REPRO_BACKEND``
                or ``cooperative``.
            target_names: SAM reference names; derived from the targets when
                omitted.
        """
        from repro.service.session import AlignmentSession
        runtime = PgasRuntime(n_ranks=n_ranks, machine=machine)
        return AlignmentSession.build(self, runtime, targets, backend=backend,
                                      target_names=target_names)

    # -- the per-rank SPMD program -------------------------------------------------

    def _rank_program(self, ctx: RankContext, target_seqs: list[str],
                      read_records: list[ReadRecord], target_store: TargetStore,
                      seed_index: SeedIndex,
                      seed_cache: SoftwareCache | None,
                      target_cache: SoftwareCache | None):
        """One rank's complete program: index construction, then alignment."""
        yield from self._index_program(ctx, target_seqs, target_store, seed_index)
        return (yield from self._query_program(ctx, read_records, seed_index,
                                               target_store, seed_cache,
                                               target_cache))

    def _index_program(self, ctx: RankContext, target_seqs: list[str],
                       target_store: TargetStore, seed_index: SeedIndex):
        """Phases 1-4: build the distributed seed index and target store.

        Runs once per session on the serving path (:meth:`prepare`) and once
        per :meth:`run` on the one-shot path; the phases and cost accounting
        are identical in both.
        """
        config = self.config

        # Phase 1: parallel read + fragmentation + storage of targets.
        my_target_ids = list(range(len(target_seqs)))[ctx.my_slice(len(target_seqs))]
        my_fragments: list[tuple[GlobalPointer, object]] = []
        fragment_counter = 0
        for target_id in my_target_ids:
            sequence = target_seqs[target_id]
            ctx.charge_io_bytes(len(sequence), category="io:targets")
            if config.fragment_targets:
                pieces = fragment_target(target_id, sequence,
                                         config.fragment_length, config.seed_length)
            else:
                pieces = [(0, sequence)] if sequence else []
            for parent_offset, piece in pieces:
                fragment_id = ctx.me * (1 << 40) + fragment_counter
                fragment_counter += 1
                record = target_store.store_fragment(ctx, fragment_id, target_id,
                                                     parent_offset, piece)
                pointer = GlobalPointer(owner=ctx.me, segment=TargetStore.SEGMENT,
                                        key=fragment_id, nbytes=record.nbytes)
                my_fragments.append((pointer, record))
        yield "read_targets"

        # Phase 2: extract seeds from this rank's own fragments (retained from
        # phase 1 -- rereading the local segment would be uncharged anyway)
        # and route them to their owners.
        for pointer, record in my_fragments:
            seed_index.add_fragment_seeds(ctx, record, pointer)
        seed_index.flush(ctx)
        yield "extract_and_store_seeds"

        # Phase 3: drain local-shared stacks (aggregating stores only).
        seed_index.drain(ctx)
        yield "drain_stacks"

        # Phase 4: single-copy-seed marking for the exact-match optimization.
        if config.use_exact_match_optimization:
            seed_index.mark_single_copy_flags(ctx, target_store)
        yield "mark_single_copy"

    def _query_program(self, ctx: RankContext, read_records: list[ReadRecord],
                       seed_index: SeedIndex, target_store: TargetStore,
                       seed_cache: SoftwareCache | None,
                       target_cache: SoftwareCache | None):
        """Phases 5-6: read the query chunk and align it.

        Returns ``([(read_index, alignments), ...], counters)`` where
        ``read_index`` is the read's position in *read_records* and every read
        of this rank's chunk appears exactly once (possibly with an empty
        alignment list).  Concatenating the groups in rank order reproduces
        the flat alignment list of the one-shot path; the alignment service
        uses the indices to demultiplex coalesced requests.
        """
        config = self.config

        # Phase 5: parallel read of the (optionally permuted) query chunk.
        my_indices = chunk_for_rank(list(range(len(read_records))),
                                    ctx.me, ctx.n_ranks)
        my_reads = [read_records[i] for i in my_indices]
        read_bytes = sum(len(r.sequence) // 4 + len(r.quality) + len(r.name)
                         for r in my_reads)
        ctx.charge_io_bytes(read_bytes, category="io:queries")
        yield "read_queries"

        # Phase 6: the aligning phase -- fine-grained (one message per seed
        # lookup / fragment fetch) or windowed bulk batching over W reads.
        counters = AlignmentCounters()
        groups: list[tuple[int, list[Alignment]]] = []
        if config.use_bulk_lookups:
            window = config.lookup_batch_size
            for start in range(0, len(my_reads), window):
                per_read = self._align_batch(
                    ctx, my_reads[start:start + window], seed_index,
                    target_store, seed_cache, target_cache, counters)
                groups.extend(zip(my_indices[start:start + window], per_read))
        else:
            for read_index, read in zip(my_indices, my_reads):
                groups.append((read_index,
                               self._align_read(ctx, read, seed_index,
                                                target_store, seed_cache,
                                                target_cache, counters)))
        yield "align_reads"
        return groups, counters

    # -- aligning one read ------------------------------------------------------------

    def _orientations(self, sequence: str) -> list[tuple[str, str]]:
        orientations = [("+", sequence)]
        if self.config.try_reverse_complement:
            orientations.append(("-", reverse_complement(sequence)))
        return orientations

    def _align_read(self, ctx: RankContext, read: ReadRecord,
                    seed_index: SeedIndex, target_store: TargetStore,
                    seed_cache: SoftwareCache | None,
                    target_cache: SoftwareCache | None,
                    counters: AlignmentCounters) -> list[Alignment]:
        config = self.config
        k = config.seed_length
        counters.reads_processed += 1
        if len(read.sequence) < k:
            return []

        orientations = self._orientations(read.sequence)

        # Exact-match fast path (section IV-A): one lookup, one memcmp.
        if config.use_exact_match_optimization:
            exact = self._try_exact_path(ctx, read, orientations, seed_index,
                                         target_store, seed_cache, target_cache,
                                         counters)
            if exact is not None:
                counters.reads_aligned += 1
                counters.exact_path_hits += 1
                counters.alignments_reported += 1
                return [exact]

        # Full seed-and-extend path.
        candidates = self._collect_candidates(ctx, orientations, seed_index,
                                              seed_cache, counters)
        alignments: list[Alignment] = []
        for (strand, _fragment_key), (placement, query_offset) in candidates.items():
            fragment = target_store.fetch(ctx, placement.fragment, cache=target_cache)
            counters.candidates_examined += 1
            oriented = orientations[0][1] if strand == "+" else orientations[1][1]
            hit = SeedHit(target_id=fragment.parent_target_id,
                          target_offset=placement.offset,
                          query_offset=query_offset,
                          seed_length=k, strand=strand)
            alignment, cells = extend_seed_hit(
                read.name, oriented, fragment.sequence(), hit,
                scoring=config.scoring,
                window_padding=config.window_padding,
                detailed=config.detailed_alignments)
            counters.sw_calls += 1
            counters.sw_cells += cells
            ctx.charge_op("sw_cell", cells)
            if alignment.score >= config.min_alignment_score:
                alignment.target_start += fragment.parent_offset
                alignment.target_end += fragment.parent_offset
                alignments.append(alignment)
        if alignments:
            counters.reads_aligned += 1
        counters.alignments_reported += len(alignments)
        return alignments

    def _try_exact_path(self, ctx: RankContext, read: ReadRecord,
                        orientations: list[tuple[str, str]],
                        seed_index: SeedIndex, target_store: TargetStore,
                        seed_cache: SoftwareCache | None,
                        target_cache: SoftwareCache | None,
                        counters: AlignmentCounters) -> Alignment | None:
        config = self.config
        k = config.seed_length
        for strand, oriented in orientations:
            first_seed = oriented[:k]
            entry = seed_index.lookup(ctx, first_seed, cache=seed_cache)
            counters.seed_lookups += 1
            if entry is None or not entry.values:
                continue
            counters.seed_lookup_hits += 1
            placement = entry.values[0]
            fragment = target_store.fetch(ctx, placement.fragment, cache=target_cache)
            if not fragment.single_copy_seeds:
                continue
            start = placement.offset  # the first query seed starts the query
            ctx.charge_op("memcmp_byte", len(oriented))
            if exact_match_at(oriented, fragment.sequence(), start):
                return self._exact_alignment(read.name, strand, oriented,
                                             fragment, start)
        return None

    def _exact_alignment(self, query_name: str, strand: str, oriented: str,
                         fragment, start: int) -> Alignment:
        """The full-score alignment reported by the exact-match fast path."""
        length = len(oriented)
        return Alignment(
            query_name=query_name,
            target_id=fragment.parent_target_id,
            score=self.config.scoring.max_score(length),
            query_start=0,
            query_end=length,
            target_start=fragment.parent_offset + start,
            target_end=fragment.parent_offset + start + length,
            strand=strand,
            cigar=[(length, CigarOp.MATCH)],
            is_exact=True,
            identity=1.0,
        )

    def _collect_candidates(self, ctx: RankContext,
                            orientations: list[tuple[str, str]],
                            seed_index: SeedIndex,
                            seed_cache: SoftwareCache | None,
                            counters: AlignmentCounters):
        """Look up query seeds and collect unique (strand, fragment) candidates."""
        config = self.config
        k = config.seed_length
        candidates: dict[tuple[str, tuple[int, object]], tuple] = {}
        for strand, oriented in orientations:
            for query_offset in range(0, len(oriented) - k + 1, config.seed_stride):
                kmer = oriented[query_offset:query_offset + k]
                entry = seed_index.lookup(ctx, kmer, cache=seed_cache)
                counters.seed_lookups += 1
                if entry is None or not entry.values:
                    continue
                counters.seed_lookup_hits += 1
                values = entry.values
                limit = config.max_alignments_per_seed
                if limit and len(values) > limit:
                    counters.candidates_skipped_threshold += len(values) - limit
                    values = values[:limit]
                for placement in values:
                    fragment_key = (placement.fragment.owner, placement.fragment.key)
                    key = (strand, fragment_key)
                    if key not in candidates:
                        candidates[key] = (placement, query_offset)
        return candidates

    # -- aligning a window of reads through bulk operations ---------------------

    def _align_batch(self, ctx: RankContext, reads: list[ReadRecord],
                     seed_index: SeedIndex, target_store: TargetStore,
                     seed_cache: SoftwareCache | None,
                     target_cache: SoftwareCache | None,
                     counters: AlignmentCounters) -> list[list[Alignment]]:
        """Align a window of W reads with bulk communication at every stage.

        The stages mirror :meth:`_align_read` exactly -- same candidate dedupe
        keys, same ``max_alignments_per_seed`` truncation order, same scoring
        -- so the batched and fine-grained paths produce identical alignments;
        only the message pattern differs (one aggregated get per destination
        rank per stage instead of one message per seed/fragment).

        Returns one alignment list per input read, in read order (a read too
        short to seed gets an empty list), so callers -- the one-shot flat
        path and the demultiplexing alignment service -- can both consume it.
        """
        config = self.config
        k = config.seed_length
        active: list[tuple[ReadRecord, list[tuple[str, str]]]] = []
        active_slots: list[int] = []
        for slot, read in enumerate(reads):
            counters.reads_processed += 1
            if len(read.sequence) >= k:
                active.append((read, self._orientations(read.sequence)))
                active_slots.append(slot)
        per_read: list[list[Alignment]] = [[] for _ in reads]
        if not active:
            return per_read

        resolved: dict[int, Alignment] = {}
        if config.use_exact_match_optimization:
            resolved = self._exact_batch(ctx, active, seed_index, target_store,
                                         seed_cache, target_cache, counters)

        # Stage 1: every query seed of every unresolved read, one bulk lookup.
        full_keys: list[str] = []
        full_tags: list[tuple[int, str, int]] = []
        for read_index, (read, orientations) in enumerate(active):
            if read_index in resolved:
                continue
            for strand, oriented in orientations:
                for query_offset in range(0, len(oriented) - k + 1,
                                          config.seed_stride):
                    full_keys.append(oriented[query_offset:query_offset + k])
                    full_tags.append((read_index, strand, query_offset))
        entries = seed_index.lookup_many(ctx, full_keys, cache=seed_cache)
        counters.seed_lookups += len(full_keys)

        # Stage 2: per-read candidate selection (same dedupe and truncation
        # as _collect_candidates, applied to the bulk responses in order).
        candidates_by_read: dict[int, dict[tuple[str, tuple[int, object]],
                                           tuple]] = {}
        limit = config.max_alignments_per_seed
        for (read_index, strand, query_offset), entry in zip(full_tags, entries):
            if entry is None or not entry.values:
                continue
            counters.seed_lookup_hits += 1
            values = entry.values
            if limit and len(values) > limit:
                counters.candidates_skipped_threshold += len(values) - limit
                values = values[:limit]
            candidates = candidates_by_read.setdefault(read_index, {})
            for placement in values:
                fragment_key = (placement.fragment.owner, placement.fragment.key)
                key = (strand, fragment_key)
                if key not in candidates:
                    candidates[key] = (placement, query_offset)

        # Stage 3: deduplicated bulk fetch of every candidate fragment.
        fetch_pointers = []
        job_tags: list[tuple[int, str, object, int]] = []
        for read_index in range(len(active)):
            for (strand, _fragment_key), (placement, query_offset) in \
                    candidates_by_read.get(read_index, {}).items():
                fetch_pointers.append(placement.fragment)
                job_tags.append((read_index, strand, placement, query_offset))
        fragments = target_store.fetch_many(ctx, fetch_pointers,
                                            cache=target_cache)
        counters.candidates_examined += len(fetch_pointers)

        # Stage 4: batched extension (same-shaped windows share one sweep).
        jobs = []
        for (read_index, strand, placement, query_offset), fragment in \
                zip(job_tags, fragments):
            read, orientations = active[read_index]
            oriented = orientations[0][1] if strand == "+" else orientations[1][1]
            hit = SeedHit(target_id=fragment.parent_target_id,
                          target_offset=placement.offset,
                          query_offset=query_offset,
                          seed_length=k, strand=strand)
            jobs.append((read.name, oriented, fragment.sequence(), hit))
        extended = extend_batch(jobs, scoring=config.scoring,
                                window_padding=config.window_padding,
                                detailed=config.detailed_alignments)

        per_read_alignments: dict[int, list[Alignment]] = {}
        for (read_index, _strand, _placement, _query_offset), fragment, \
                (alignment, cells) in zip(job_tags, fragments, extended):
            counters.sw_calls += 1
            counters.sw_cells += cells
            ctx.charge_op("sw_cell", cells)
            if alignment.score >= config.min_alignment_score:
                alignment.target_start += fragment.parent_offset
                alignment.target_end += fragment.parent_offset
                per_read_alignments.setdefault(read_index, []).append(alignment)

        # Reassemble in read order so output matches the fine-grained path.
        for read_index in range(len(active)):
            slot = active_slots[read_index]
            exact = resolved.get(read_index)
            if exact is not None:
                counters.reads_aligned += 1
                counters.exact_path_hits += 1
                counters.alignments_reported += 1
                per_read[slot] = [exact]
                continue
            alignments = per_read_alignments.get(read_index, [])
            if alignments:
                counters.reads_aligned += 1
            counters.alignments_reported += len(alignments)
            per_read[slot] = alignments
        return per_read

    def _exact_batch(self, ctx: RankContext,
                     active: list[tuple[ReadRecord, list[tuple[str, str]]]],
                     seed_index: SeedIndex, target_store: TargetStore,
                     seed_cache: SoftwareCache | None,
                     target_cache: SoftwareCache | None,
                     counters: AlignmentCounters) -> dict[int, Alignment]:
        """Bulk exact-match fast path over a window of reads.

        Unlike the fine-grained path -- which probes the '+' orientation and
        only falls back to '-' when it fails -- the batched engine looks up
        the first seed of *both* orientations up front (conditional lookups
        would defeat aggregation) and resolves reads afterwards in the same
        '+'-before-'-' precedence, so the reported alignments are identical.
        """
        config = self.config
        k = config.seed_length
        exact_keys: list[str] = []
        exact_tags: list[tuple[int, int]] = []
        for read_index, (_read, orientations) in enumerate(active):
            for strand_index, (_strand, oriented) in enumerate(orientations):
                exact_keys.append(oriented[:k])
                exact_tags.append((read_index, strand_index))
        entries = seed_index.lookup_many(ctx, exact_keys, cache=seed_cache)
        counters.seed_lookups += len(exact_keys)

        fetch_pointers = []
        fetch_tags: list[tuple[int, int, object]] = []
        for (read_index, strand_index), entry in zip(exact_tags, entries):
            if entry is None or not entry.values:
                continue
            counters.seed_lookup_hits += 1
            placement = entry.values[0]
            fetch_pointers.append(placement.fragment)
            fetch_tags.append((read_index, strand_index, placement))
        fragments = target_store.fetch_many(ctx, fetch_pointers,
                                            cache=target_cache)
        fetched: dict[tuple[int, int], tuple] = {}
        for (read_index, strand_index, placement), fragment in \
                zip(fetch_tags, fragments):
            fetched[(read_index, strand_index)] = (placement, fragment)

        resolved: dict[int, Alignment] = {}
        for read_index, (read, orientations) in enumerate(active):
            for strand_index, (strand, oriented) in enumerate(orientations):
                candidate = fetched.get((read_index, strand_index))
                if candidate is None:
                    continue
                placement, fragment = candidate
                if not fragment.single_copy_seeds:
                    continue
                start = placement.offset
                ctx.charge_op("memcmp_byte", len(oriented))
                if exact_match_at(oriented, fragment.sequence(), start):
                    resolved[read_index] = self._exact_alignment(
                        read.name, strand, oriented, fragment, start)
                    break
        return resolved
