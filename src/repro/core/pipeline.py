"""The end-to-end parallel aligner (Algorithm 1 with all optimizations).

:class:`MerAligner` is a thin preset over the composable stage-pipeline API
(:mod:`repro.core.plan`): it executes :meth:`AlignmentPlan.default` -- the
paper's SPMD phases as explicit stage objects --

1. ``BuildIndex`` -- parallel target reading and fragmentation (section
   IV-A), seed extraction routed through aggregating stores (section III-A),
   local-shared stack draining and single-copy-seed marking; the four barrier
   phases ``read_targets`` / ``extract_and_store_seeds`` / ``drain_stacks``
   / ``mark_single_copy``.
2. ``ReadQueries`` -- every rank reads its chunk of the (optionally randomly
   permuted) read set in parallel.
3. ``ExactPath`` -> ``SeedLookup`` -> ``CandidateCollect`` ->
   ``ExtendAlign`` -> ``EmitSam`` -- the aligning phase: the exact-match
   fast path, software-cached seed lookups, candidate selection with the
   max-alignments-per-seed threshold, and banded Smith-Waterman extension.
   With ``use_bulk_lookups`` the same stages run through the batched
   bulk-communication engine (windows of ``lookup_batch_size`` reads, one
   aggregated get per destination rank per stage); both engines report
   identical alignments.

The result is an :class:`~repro.core.stats.AlignerReport` carrying the
alignments, per-phase and per-stage modelled timings, communication
statistics and event counters -- everything the paper's figures and tables
are built from.

Custom pipelines (seed counting, exact screening, bespoke sinks) go through
:mod:`repro.api` / :class:`repro.core.plan.PlanRunner` directly; this module
remains the convenience preset for the classic align workload.
"""

from __future__ import annotations

# Re-exported for backwards compatibility: these helpers historically lived
# here and are imported by the service and CLI layers.
from repro.core.config import AlignerConfig, config_summary  # noqa: F401
from repro.core.plan import (AlignmentPlan, PlanResult, PlanRunner,
                             normalize_reads, normalize_targets,
                             normalize_targets_named)
from repro.core.stats import AlignerReport
from repro.pgas.cost_model import EDISON_LIKE, MachineModel
from repro.pgas.runtime import PgasRuntime

_normalize_targets = normalize_targets
_normalize_targets_named = normalize_targets_named
_normalize_reads = normalize_reads


class MerAligner:
    """The fully parallel seed-and-extend aligner (a preset align plan)."""

    def __init__(self, config: AlignerConfig | None = None) -> None:
        self.config = config or AlignerConfig()

    # -- plan access ------------------------------------------------------------

    def plan(self) -> AlignmentPlan:
        """The stage plan this aligner executes (the default align plan)."""
        return AlignmentPlan.default()

    def runner(self, plan: AlignmentPlan | None = None) -> PlanRunner:
        """A :class:`PlanRunner` over *plan* (default: the align plan) with
        this aligner's configuration."""
        return PlanRunner(plan or self.plan(), self.config)

    # -- public API -------------------------------------------------------------

    def run(self, targets, reads, n_ranks: int = 4,
            machine: MachineModel = EDISON_LIKE,
            backend: str | None = None) -> AlignerReport:
        """Align *reads* against *targets* on a fresh simulated machine.

        Args:
            targets: FASTA path, list of :class:`FastaRecord`, or sequences.
            reads: SeqDB/FASTQ path, list of :class:`FastqRecord`, or
                :class:`ReadRecord` objects.
            n_ranks: number of simulated ranks (cores).
            machine: machine model used for cost accounting.
            backend: execution backend name (``cooperative``, ``threaded``,
                ``process``); ``None`` uses the ``REPRO_BACKEND`` environment
                variable, falling back to ``cooperative``.  Every backend
                reports byte-identical alignments.

        Returns:
            The :class:`AlignerReport` of the run.
        """
        return self.runner().run(targets, reads, n_ranks=n_ranks,
                                 machine=machine, backend=backend).report

    def run_on_runtime(self, runtime: PgasRuntime, targets, reads,
                       backend: str | None = None) -> AlignerReport:
        """Align on an existing runtime (lets callers share a machine model)."""
        return self.runner().run_on_runtime(runtime, targets, reads,
                                            backend=backend).report

    def run_plan(self, plan: AlignmentPlan, targets, reads, n_ranks: int = 4,
                 machine: MachineModel = EDISON_LIKE,
                 backend: str | None = None) -> PlanResult:
        """Execute an arbitrary :class:`AlignmentPlan` with this config."""
        return self.runner(plan).run(targets, reads, n_ranks=n_ranks,
                                     machine=machine, backend=backend)

    def prepare(self, targets, n_ranks: int = 4,
                machine: MachineModel = EDISON_LIKE,
                backend: str | None = None, target_names: list[str] | None = None):
        """Build the distributed index once and return a resident session.

        The expensive SPMD index-construction phases (target fragmentation,
        seed extraction and routing, single-copy marking) run exactly once;
        the returned :class:`~repro.service.session.AlignmentSession` keeps
        the runtime, seed index, target store and per-node caches alive so
        ``session.align(reads)`` -- or any registered plan workload through
        ``session.run_plan(...)`` -- can be called many times, each call
        running only the query-side stages.  This is the serving path: one
        index, many independent requests, on any execution backend.

        Args:
            targets: FASTA path (optionally gzipped), :class:`FastaRecord`
                list, or plain sequences.
            n_ranks: number of simulated ranks (cores).
            machine: machine model used for cost accounting.
            backend: execution backend name; ``None`` uses ``REPRO_BACKEND``
                or ``cooperative``.
            target_names: SAM reference names; derived from the targets when
                omitted.
        """
        from repro.service.session import AlignmentSession
        runtime = PgasRuntime(n_ranks=n_ranks, machine=machine)
        return AlignmentSession.build(self, runtime, targets, backend=backend,
                                      target_names=target_names)
