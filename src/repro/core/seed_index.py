"""The distributed seed index (Algorithm 1 line 6 + sections III-A and IV-A).

The seed index maps every seed (k-mer) extracted from the target fragments to
the list of ``(fragment pointer, offset)`` placements of that seed, and keeps
an occurrence count per seed.  It is built collectively: every rank extracts
the seeds of its own fragments and routes each entry to the rank that owns the
seed (djb2 hash), either

* with the **aggregating stores** optimization -- per-destination buffers of
  size S flushed by one-sided aggregate transfers into remote local-shared
  stacks, drained locally after a barrier (lock-free); or
* **directly** -- one fine-grained remote store (plus a lock) per seed, the
  paper's unoptimized baseline.

After construction, every rank scans its local partition and clears the
``single_copy_seeds`` flag of every fragment that contributed a seed seen
more than once anywhere (section IV-A), enabling the exact-match fast path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AlignerConfig
from repro.core.target_store import FragmentRecord, TargetStore
from repro.dna.kmer import kmer_positions
from repro.hashtable.aggregating import AggregatingStoreBuffer
from repro.hashtable.cache import SoftwareCache
from repro.hashtable.distributed import DistributedHashTable
from repro.hashtable.local_table import BucketEntry
from repro.pgas.gptr import GlobalPointer
from repro.pgas.runtime import PgasRuntime, RankContext


@dataclass(frozen=True)
class SeedPlacement:
    """One placement of a seed: which fragment and at what offset."""

    fragment: GlobalPointer
    offset: int


def _scan_duplicates(store) -> tuple[int, list[list[SeedPlacement]]]:
    """Heap-apply body of the single-copy scan: runs where the partition
    lives and returns (number of entries scanned, values of duplicated seeds)."""
    n_entries = 0
    duplicate_values: list[list[SeedPlacement]] = []
    for entry in store.entries():
        n_entries += 1
        if entry.count > 1:
            duplicate_values.append(list(entry.values))
    return n_entries, duplicate_values


class SeedIndex:
    """Distributed seed index over a :class:`PgasRuntime`."""

    def __init__(self, runtime: PgasRuntime, config: AlignerConfig,
                 buckets_per_rank: int = 4096) -> None:
        self.runtime = runtime
        self.config = config
        self.table = DistributedHashTable(runtime, segment="seed_index",
                                          buckets_per_rank=buckets_per_rank)
        if config.use_aggregating_stores:
            AggregatingStoreBuffer.allocate_stacks(runtime)
        self._aggregators: dict[int, AggregatingStoreBuffer] = {}

    # -- construction (called from inside SPMD phases) --------------------------

    def aggregator_for(self, ctx: RankContext) -> AggregatingStoreBuffer:
        """The per-rank aggregating-store machinery (created lazily)."""
        if ctx.me not in self._aggregators:
            self._aggregators[ctx.me] = AggregatingStoreBuffer(
                ctx, self.table, buffer_size=self.config.aggregation_buffer_size)
        return self._aggregators[ctx.me]

    def add_fragment_seeds(self, ctx: RankContext, fragment: FragmentRecord,
                           pointer: GlobalPointer) -> int:
        """Extract and route all seeds of one fragment (construction phase).

        Returns the number of seeds extracted.
        """
        k = self.config.seed_length
        sequence = fragment.sequence()
        n_seeds = 0
        use_agg = self.config.use_aggregating_stores
        aggregator = self.aggregator_for(ctx) if use_agg else None
        for kmer, offset in kmer_positions(sequence, k):
            ctx.charge_op("seed_extract")
            placement = SeedPlacement(fragment=pointer, offset=offset)
            if use_agg:
                aggregator.add(kmer, placement)
            else:
                self.table.insert_direct(ctx, kmer, placement)
            n_seeds += 1
        return n_seeds

    def flush(self, ctx: RankContext) -> None:
        """Flush any partially filled aggregation buffers (end of extraction)."""
        if self.config.use_aggregating_stores:
            self.aggregator_for(ctx).flush_all()

    def drain(self, ctx: RankContext) -> int:
        """Drain this rank's local-shared stack into its local buckets."""
        if not self.config.use_aggregating_stores:
            return 0
        return self.aggregator_for(ctx).drain_local_stack()

    def mark_single_copy_flags(self, ctx: RankContext, store: TargetStore) -> int:
        """Clear single-copy flags of fragments owning locally counted duplicates.

        Purely local scan of this rank's partition plus one small remote put
        per affected fragment.  Returns the number of duplicate seeds found.
        """
        n_entries, duplicate_values = ctx.heap.apply(
            ctx.me, self.table.segment, _scan_duplicates)
        if n_entries:
            ctx.charge_op("lookup", n_entries)
        duplicates = 0
        for values in duplicate_values:
            duplicates += 1
            for placement in values:
                store.mark_not_single_copy(ctx, placement.fragment)
        return duplicates

    # -- lookup (aligning phase) --------------------------------------------------

    def lookup(self, ctx: RankContext, kmer: str,
               cache: SoftwareCache | None = None) -> BucketEntry | None:
        """One-sided seed lookup, optionally through the per-node seed cache."""
        return self.table.lookup(ctx, kmer, cache=cache, category="dht:lookup")

    def lookup_many(self, ctx: RankContext, kmers: list[str],
                    cache: SoftwareCache | None = None) -> list[BucketEntry | None]:
        """Batched seed lookup: one aggregated get per owning rank.

        Entry *i* corresponds to ``kmers[i]``; cache semantics are identical
        to issuing :meth:`lookup` per k-mer in order.
        """
        return self.table.lookup_many(ctx, kmers, cache=cache,
                                      category="dht:lookup")

    # -- inspection ----------------------------------------------------------------

    @property
    def n_keys(self) -> int:
        return self.table.n_keys

    @property
    def n_values(self) -> int:
        return self.table.n_values

    def keys_per_rank(self) -> list[int]:
        return self.table.keys_per_rank()

    def count_of(self, kmer: str) -> int:
        """Occurrence count of a seed, bypassing cost accounting (tests only)."""
        owner = self.table.owner_of(kmer)
        entry = self.table.local_store(owner).lookup(kmer)
        return 0 if entry is None else entry.count
