"""Configuration of the merAligner pipeline.

Every optimization the paper evaluates can be switched on and off
independently, which is how the Figs 8-10 and Table I ablations are produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.alignment.scoring import DEFAULT_SCORING, ScoringScheme


@dataclass(frozen=True)
class AlignerConfig:
    """All tuning knobs of the parallel aligner.

    Attributes:
        seed_length: seed (k-mer) length; the paper uses 51 for human/wheat
            and 19 for the single-node E. coli study.
        use_aggregating_stores: build the seed index with the aggregating
            stores optimization (section III-A) instead of fine-grained
            remote insertions.
        aggregation_buffer_size: S, the per-destination buffer size; the paper
            uses S = 1000.
        use_seed_index_cache: enable the per-node software cache of remote
            seed index entries (section III-B).
        use_target_cache: enable the per-node software cache of remote target
            sequences.
        seed_cache_bytes_per_node: capacity of the seed index cache (the paper
            dedicates 16 GB/node; scaled down here with the data).
        target_cache_bytes_per_node: capacity of the target cache (6 GB/node
            in the paper).
        use_exact_match_optimization: enable the Lemma 1 single-lookup fast
            path (section IV-A).
        use_bulk_lookups: run the aligning phase through the batched
            bulk-communication engine: reads are processed in windows of
            ``lookup_batch_size``, all seed lookups of a window are issued as
            one aggregated get per owning rank, candidate fragments are
            deduplicated and bulk-fetched, and same-shaped extension windows
            are swept together by the batched striped kernel.  Alignments are
            identical to the fine-grained path, and with the exact-match fast
            path off so is all cache traffic; with it on, the batched engine
            probes both orientations up front (conditional lookups would
            defeat aggregation), so lookup/byte counters in the report drift
            slightly from the fine-grained run even though the reported
            alignments stay identical.
        lookup_batch_size: W, the number of work units per bulk window when
            ``use_bulk_lookups`` is enabled -- single reads, or whole
            (R1, R2) pairs in the paired workload (mates always share a
            window).
        fragment_targets: fragment long targets into subsequences with
            disjoint seed sets to increase single-copy-seed coverage.
        fragment_length: fragment length in bases (must exceed seed_length).
        permute_reads: randomly permute the query file before partitioning it
            (the Theorem 1 load-balancing scheme).
        permutation_seed: RNG seed of the permutation (for reproducibility).
        max_alignments_per_seed: threshold on candidate targets per seed; 0
            means unlimited (section IV-C).
        try_reverse_complement: also search the reverse-complemented read.
        seed_stride: distance between consecutive query seed extractions
            during the full (non-exact) search; 1 reproduces the paper's
            every-seed behaviour.
        window_padding: extra target bases on each side of the expected
            footprint given to Smith-Waterman.
        min_alignment_score: alignments scoring below this are discarded.
        use_mate_rescue: in the paired workload, attempt a banded
            Smith-Waterman rescue of a mate that failed to align when its
            partner did (searched inside the expected insert-size window
            around the partner's anchor alignment).
        insert_size: expected outer distance between the 5' ends of a read
            pair (the library's mean insert size).  Centers the mate-rescue
            search window and bounds the proper-pair TLEN check.
        insert_slack: tolerated deviation from ``insert_size``: the rescue
            band extends this many bases on each side of the expected mate
            position, and a pair is flagged 'proper' when its |TLEN| lies in
            ``[read length, insert_size + 2 * insert_slack]``.
        detailed_alignments: compute CIGARs/identity with the traceback kernel
            (slower); the default reports scores and coordinates only.
        scoring: affine-gap scoring scheme.
    """

    seed_length: int = 51
    use_aggregating_stores: bool = True
    aggregation_buffer_size: int = 1000
    use_seed_index_cache: bool = True
    use_target_cache: bool = True
    seed_cache_bytes_per_node: int = 4 * 1024 * 1024
    target_cache_bytes_per_node: int = 2 * 1024 * 1024
    use_exact_match_optimization: bool = True
    use_bulk_lookups: bool = False
    lookup_batch_size: int = 64
    fragment_targets: bool = True
    fragment_length: int = 2000
    permute_reads: bool = True
    permutation_seed: int = 0xBEEF
    max_alignments_per_seed: int = 8
    try_reverse_complement: bool = True
    seed_stride: int = 1
    window_padding: int = 16
    min_alignment_score: int = 20
    use_mate_rescue: bool = True
    insert_size: int = 240
    insert_slack: int = 60
    detailed_alignments: bool = False
    scoring: ScoringScheme = field(default_factory=lambda: DEFAULT_SCORING)

    def __post_init__(self) -> None:
        if self.seed_length <= 0:
            raise ValueError("seed_length must be positive")
        if self.aggregation_buffer_size <= 0:
            raise ValueError("aggregation_buffer_size must be positive")
        if self.lookup_batch_size <= 0:
            raise ValueError("lookup_batch_size must be positive")
        if self.fragment_targets and self.fragment_length <= self.seed_length:
            raise ValueError("fragment_length must exceed seed_length")
        if self.seed_stride <= 0:
            raise ValueError("seed_stride must be positive")
        if self.max_alignments_per_seed < 0:
            raise ValueError("max_alignments_per_seed must be non-negative")
        if self.seed_cache_bytes_per_node < 0 or self.target_cache_bytes_per_node < 0:
            raise ValueError("cache capacities must be non-negative")
        if self.window_padding < 0:
            raise ValueError("window_padding must be non-negative")
        if self.insert_size <= 0:
            raise ValueError("insert_size must be positive")
        if self.insert_slack < 0:
            raise ValueError("insert_slack must be non-negative")

    # -- convenience constructors used by benchmarks ---------------------------

    def without_optimizations(self) -> "AlignerConfig":
        """The paper's baseline: no aggregating stores, no caches, no exact path."""
        return replace(self,
                       use_aggregating_stores=False,
                       use_seed_index_cache=False,
                       use_target_cache=False,
                       use_exact_match_optimization=False,
                       permute_reads=False)

    def with_(self, **kwargs) -> "AlignerConfig":
        """Return a copy with the given fields replaced (keyword style)."""
        return replace(self, **kwargs)

    @classmethod
    def for_small_genome(cls, seed_length: int = 19, **kwargs) -> "AlignerConfig":
        """Config matching the single-node E. coli study (Fig 11): k = 19."""
        return cls(seed_length=seed_length, fragment_length=max(500, seed_length * 10),
                   **kwargs)


def config_summary(config: AlignerConfig, backend: str,
                   plan: str = "align", workload: str = "align") -> dict:
    """The configuration digest embedded in every :class:`AlignerReport`.

    *plan* and *workload* identify what produced the report -- the
    :class:`~repro.core.plan.AlignmentPlan` name and its sink's workload --
    so downstream tooling can tell an ``align`` report from a ``count`` or
    ``screen`` one without guessing from the counters.
    """
    return {
        "seed_length": config.seed_length,
        "aggregating_stores": config.use_aggregating_stores,
        "seed_index_cache": config.use_seed_index_cache,
        "target_cache": config.use_target_cache,
        "exact_match_optimization": config.use_exact_match_optimization,
        "permute_reads": config.permute_reads,
        "max_alignments_per_seed": config.max_alignments_per_seed,
        "bulk_lookups": config.use_bulk_lookups,
        "lookup_batch_size": config.lookup_batch_size,
        "backend": backend,
        "plan": plan,
        "workload": workload,
    }
