"""The distributed hash table (seed index substrate).

Keys are assigned to owning ranks by hashing (djb2 by default, section
VI-C.1), each rank holding a :class:`~repro.hashtable.local_table.LocalBucketStore`
in its shared segment.  Two insertion paths are provided:

* :meth:`DistributedHashTable.insert_direct` -- the straightforward algorithm
  the paper uses as its baseline: every seed triggers a fine-grained remote
  access plus a lock-protecting atomic on the destination bucket.
* the aggregating-stores path in :mod:`repro.hashtable.aggregating`, which
  batches S entries per destination into one aggregate transfer and needs no
  locks at all.

All partition access goes through the shared heap's ``apply`` verb (a probe
or insert executed where the partition lives), so the same code runs on the
cooperative, threaded and multiprocess execution backends; inserts carry
``(source_rank, sequence)`` tags that pin a canonical value order in each
bucket entry, making the built table -- and therefore the reported
alignments -- identical on every backend regardless of arrival interleaving.

Lookups are one-sided gets from the owner's partition, optionally served by a
per-node :class:`~repro.hashtable.cache.SoftwareCache`; the batched
:meth:`DistributedHashTable.lookup_many` extends the same aggregation idea to
the query side, issuing one aggregated get per owning rank for a whole batch
of keys (and, under the multiprocess backend, a single prefetch message for
the whole batch).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.dna.kmer import djb2_hash
from repro.hashtable.cache import SoftwareCache
from repro.hashtable.local_table import BucketEntry, LocalBucketStore
from repro.pgas.runtime import (BulkTransferPlan, PgasRuntime, RankContext,
                                estimate_nbytes)

_MISSING = object()


def _store_lookup(store: LocalBucketStore, key: Hashable) -> BucketEntry | None:
    """Heap-apply probe of one key in a partition."""
    return store.lookup(key)


def _store_lookup_many(store: LocalBucketStore,
                       keys: list[Hashable]) -> list[BucketEntry | None]:
    """Heap-apply probe of a batch of keys in one partition."""
    return [store.lookup(key) for key in keys]


def _store_insert(store: LocalBucketStore, key: Hashable, value: Any,
                  tag: Any) -> None:
    """Heap-apply tagged insert into a partition (returns nothing on purpose:
    the entry object stays with its owner)."""
    store.insert(key, value, tag=tag)


def _store_insert_batch(store: LocalBucketStore,
                        items: list[tuple[Hashable, Any, Any]]) -> None:
    """Heap-apply batch of tagged inserts (one message for a whole drain)."""
    for key, value, tag in items:
        store.insert(key, value, tag=tag)


class DistributedHashTable:
    """A hash table partitioned across the ranks of a :class:`PgasRuntime`."""

    def __init__(self, runtime: PgasRuntime, *, segment: str = "dht",
                 buckets_per_rank: int = 4096,
                 hash_fn: Callable[[Any], int] | None = None) -> None:
        self.runtime = runtime
        self.segment = segment
        self.hash_fn = hash_fn or (lambda key: djb2_hash(str(key)))
        runtime.heap.alloc_all(
            segment, lambda rank: LocalBucketStore(buckets_per_rank))
        # Per-source-rank insert sequence numbers feeding the canonical value
        # order; forked workers inherit (and advance) their own rank's counter.
        self._insert_seq: dict[int, int] = {}

    # -- ownership -------------------------------------------------------------

    def owner_of(self, key: Hashable) -> int:
        """Rank that owns *key* (djb2 hash modulo the number of ranks)."""
        return self.hash_fn(key) % self.runtime.n_ranks

    def local_store(self, rank: int) -> LocalBucketStore:
        """The local partition owned by *rank* (driver-side inspection)."""
        return self.runtime.heap.segment(rank, self.segment)

    def insert_tag(self, rank: int) -> tuple[int, int]:
        """Next arrival-order tag for an insert originating on *rank*."""
        sequence = self._insert_seq.get(rank, 0)
        self._insert_seq[rank] = sequence + 1
        return (rank, sequence)

    # -- insertion -------------------------------------------------------------

    def insert_direct(self, ctx: RankContext, key: Hashable, value: Any) -> None:
        """Unoptimized insertion: one fine-grained remote store per entry.

        The paper's baseline pays, per entry, a remote access to the owning
        bucket plus a lock acquisition to keep the bucket consistent; we model
        the lock as a remote atomic (and the heap's apply verb really does
        serialise the insert, so the path is safe under concurrent backends).
        """
        owner = self.owner_of(key)
        ctx.charge_op("seed_hash")
        nbytes = estimate_nbytes(key) + estimate_nbytes(value)
        # Lock / unlock of the destination bucket (modelled as one atomic).
        same_node = ctx.same_node(owner)
        lock_time = ctx.machine.atomic_time(same_rank=(owner == ctx.me),
                                            same_node=same_node)
        ctx.clock.charge_comm(lock_time)
        ctx.stats.comm_time += lock_time
        ctx.stats.atomics += 1
        ctx.stats.record("dht:lock", lock_time)
        ctx.charge_put(owner, nbytes, category="dht:insert_direct")
        ctx.charge_op("bucket_insert")
        ctx.heap.apply(owner, self.segment, _store_insert, key, value,
                       self.insert_tag(ctx.me))

    def insert_local(self, ctx: RankContext, key: Hashable, value: Any,
                     tag: Any = None) -> None:
        """Insert an entry the caller already owns (no communication).

        Used when draining the local-shared stack of the aggregating-stores
        path: by construction ``owner_of(key) == ctx.me``.  *tag* carries the
        producer's arrival-order token so drained entries land in canonical
        order.
        """
        owner = self.owner_of(key)
        if owner != ctx.me:
            raise ValueError(
                f"insert_local called on rank {ctx.me} for key owned by rank {owner}")
        ctx.charge_op("bucket_insert")
        ctx.heap.apply(ctx.me, self.segment, _store_insert, key, value, tag)

    # -- lookup ----------------------------------------------------------------

    def lookup(self, ctx: RankContext, key: Hashable,
               cache: SoftwareCache | None = None,
               category: str = "dht:lookup") -> BucketEntry | None:
        """One-sided lookup of *key*, optionally through a per-node cache.

        Returns the :class:`BucketEntry` (values + occurrence count) or None.
        The entry fetched over the wire is charged at its estimated size; a
        cache hit is charged as an on-node access instead.
        """
        owner = self.owner_of(key)
        ctx.charge_op("seed_hash")
        ctx.charge_op("lookup")
        if owner == ctx.me:
            ctx.charge_get(owner, 0, category=category)
            return ctx.heap.apply(owner, self.segment, _store_lookup, key)
        if cache is not None:
            hit, cached = cache.get(ctx, ("dht", key))
            if hit:
                return cached
        entry = ctx.heap.apply(owner, self.segment, _store_lookup, key)
        nbytes = estimate_nbytes(entry) if entry is not None else 8
        ctx.charge_get(owner, nbytes, category=category)
        if cache is not None:
            cache.put(ctx, ("dht", key), entry, nbytes)
        return entry

    def lookup_many(self, ctx: RankContext, keys: list[Hashable],
                    cache: SoftwareCache | None = None,
                    category: str = "dht:lookup") -> list["BucketEntry | None"]:
        """Batched one-sided lookup of *keys*; entries returned in key order.

        Logically equivalent to calling :meth:`lookup` once per key -- local
        keys are probed in place, the per-node cache is consulted and filled
        in exactly the same order (so hit/miss/eviction counts match the
        fine-grained path) -- but all remote misses of the batch are fetched
        with **one** aggregated get per owning rank instead of one message
        per key.  A key that misses twice in one batch joins the aggregate
        transfer only once.

        The whole batch is prefetched with a single heap message (probing the
        keys the cache cannot possibly serve), which is what keeps the bulk
        engine fast on the multiprocess backend; the per-key accounting loop
        below is unchanged, so the cost model and cache statistics cannot
        drift from the fine-grained path.
        """
        prefetched = self._prefetch(ctx, keys, cache)
        entries: list[BucketEntry | None] = []
        plan = BulkTransferPlan()
        for key in keys:
            owner = self.owner_of(key)
            ctx.charge_op("seed_hash")
            ctx.charge_op("lookup")
            if owner == ctx.me:
                ctx.charge_get(owner, 0, category=category)
                entries.append(self._probe(ctx, prefetched, owner, key))
                continue
            if cache is not None:
                hit, cached = cache.get(ctx, ("dht", key))
                if hit:
                    entries.append(cached)
                    continue
            entry = self._probe(ctx, prefetched, owner, key)
            nbytes = estimate_nbytes(entry) if entry is not None else 8
            plan.add(owner, nbytes, dedupe_key=(owner, key))
            if cache is not None:
                cache.put(ctx, ("dht", key), entry, nbytes)
            entries.append(entry)
        plan.charge_gets(ctx, category)
        return entries

    def _prefetch(self, ctx: RankContext, keys: list[Hashable],
                  cache: SoftwareCache | None) -> dict:
        """One heap message probing every key the cache cannot serve."""
        wanted: dict[int, list[Hashable]] = {}
        seen: set = set()
        for key in keys:
            if key in seen:
                continue
            seen.add(key)
            owner = self.owner_of(key)
            if (owner != ctx.me and cache is not None
                    and cache.peek(ctx, ("dht", key))):
                continue
            wanted.setdefault(owner, []).append(key)
        requests = [(owner, self.segment, _store_lookup_many, (owner_keys,))
                    for owner, owner_keys in sorted(wanted.items())]
        responses = ctx.heap.apply_many(requests)
        prefetched: dict = {}
        for (owner, owner_keys), owner_entries in zip(sorted(wanted.items()),
                                                      responses):
            for key, entry in zip(owner_keys, owner_entries):
                prefetched[(owner, key)] = entry
        return prefetched

    def _probe(self, ctx: RankContext, prefetched: dict, owner: int,
               key: Hashable) -> BucketEntry | None:
        entry = prefetched.get((owner, key), _MISSING)
        if entry is _MISSING:
            # Rare: the key was peeked as cached but evicted inside the batch.
            entry = ctx.heap.apply(owner, self.segment, _store_lookup, key)
        return entry

    def count(self, ctx: RankContext, key: Hashable,
              cache: SoftwareCache | None = None) -> int:
        """Occurrence count of *key* across the whole table."""
        entry = self.lookup(ctx, key, cache=cache, category="dht:count")
        return 0 if entry is None else entry.count

    # -- whole-table views (driver/test helpers, not cost-metered) -------------

    def _stores(self) -> list[LocalBucketStore]:
        return self.runtime.heap.segments_named(self.segment)

    @property
    def n_keys(self) -> int:
        """Total number of distinct keys across all partitions."""
        return sum(store.n_keys for store in self._stores())

    @property
    def n_values(self) -> int:
        """Total number of stored values across all partitions."""
        return sum(store.n_values for store in self._stores())

    def keys_per_rank(self) -> list[int]:
        """Distinct-key counts per rank, used to verify djb2 load balance."""
        return [store.n_keys for store in self._stores()]

    def as_dict(self) -> dict[Hashable, list[Any]]:
        """Flatten the whole table into a plain dict (testing helper)."""
        result: dict[Hashable, list[Any]] = {}
        for store in self._stores():
            for entry in store.entries():
                result.setdefault(entry.key, []).extend(entry.values)
        return result
