"""The "aggregating stores" construction optimization (paper section III-A).

Instead of one fine-grained remote access (plus a lock) per seed, every rank
keeps a small local buffer per destination rank.  When the buffer for rank *j*
reaches S entries, the rank (a) reserves S slots in *j*'s pre-allocated
*local-shared stack* with a single global ``atomic_fetchadd`` on *j*'s
``stack_ptr``, and (b) copies the S entries with one aggregate one-sided
transfer.  After a barrier, every rank drains its own stack into its local
buckets -- purely local work, hence the table is lock-free.

The optimization trades an ``S * (n - 1)`` per-rank memory increase for an
S-fold reduction in both messages and atomics, which is the effect Figure 8
measures (4-5x faster construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.hashtable.distributed import (DistributedHashTable,
                                         _store_insert_batch)
from repro.pgas.runtime import PgasRuntime, RankContext, estimate_nbytes
from repro.pgas.shared import SharedArray


def _stack_write(stack: "LocalSharedStack", position: int,
                 items: list) -> None:
    """Heap-apply body of one aggregate transfer landing in a remote stack."""
    stack.ensure_capacity(position + len(items))
    stack.entries[position:position + len(items)] = items


def _stack_read(stack: "LocalSharedStack", count: int) -> list:
    """Heap-apply body of the drain phase reading this rank's own stack."""
    return stack.entries[:count]


@dataclass
class LocalSharedStack:
    """The pre-allocated landing area for aggregate transfers to one rank."""

    entries: list[Any]
    capacity: int

    @classmethod
    def with_capacity(cls, capacity: int) -> "LocalSharedStack":
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        return cls(entries=[None] * capacity, capacity=capacity)

    def ensure_capacity(self, needed: int) -> None:
        """Grow the landing area if a reservation exceeds the pre-allocation.

        The original implementation sizes the stack from the known seed count;
        we grow on demand so tests can use tiny initial capacities.
        """
        if needed > len(self.entries):
            self.entries.extend([None] * (needed - len(self.entries)))
            self.capacity = len(self.entries)


class AggregatingStoreBuffer:
    """Per-rank machinery of the aggregating-stores insertion path."""

    STACK_SEGMENT = "agg_stack"
    PTR_SEGMENT = "agg_stack_ptr"

    def __init__(self, ctx: RankContext, table: DistributedHashTable,
                 buffer_size: int = 1000) -> None:
        if buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        self.ctx = ctx
        self.table = table
        self.buffer_size = buffer_size
        # Buffered as (key, value, tag): the tag is the producer's arrival
        # order, carried along so the owner's drain can insert entries in a
        # canonical order on every execution backend.
        self._buffers: dict[int, list[tuple[Hashable, Any, Any]]] = {}
        self.flushes = 0
        self.entries_added = 0

    # -- collective setup -------------------------------------------------------

    @classmethod
    def allocate_stacks(cls, runtime: PgasRuntime,
                        capacity_per_rank: int = 1024) -> None:
        """Allocate the local-shared stack and its ``stack_ptr`` on every rank.

        Must be called once (collectively, by the driver) before any rank
        starts adding entries.
        """
        runtime.heap.alloc_all(
            cls.STACK_SEGMENT,
            lambda rank: LocalSharedStack.with_capacity(capacity_per_rank))
        runtime.heap.alloc_all(cls.PTR_SEGMENT, lambda rank: SharedArray(1))

    @classmethod
    def stacks_allocated(cls, runtime: PgasRuntime) -> bool:
        return runtime.heap.has_segment(0, cls.STACK_SEGMENT)

    # -- producing side ----------------------------------------------------------

    def add(self, key: Hashable, value: Any) -> None:
        """Route one entry toward its owner, flushing the buffer when full."""
        ctx = self.ctx
        owner = self.table.owner_of(key)
        ctx.charge_op("seed_hash")
        buffer = self._buffers.setdefault(owner, [])
        buffer.append((key, value, self.table.insert_tag(ctx.me)))
        self.entries_added += 1
        if len(buffer) >= self.buffer_size:
            self._flush_owner(owner)

    def _flush_owner(self, owner: int) -> None:
        ctx = self.ctx
        buffer = self._buffers.get(owner, [])
        if not buffer:
            return
        count = len(buffer)
        # (a)+(b): atomically reserve `count` slots in the owner's stack.
        position = ctx.fetch_add(owner, self.PTR_SEGMENT, 0, count,
                                 category="agg:fetch_add")
        # (c): one aggregate one-sided transfer for the whole buffer, charged
        # through the same bulk primitive the query-side batching uses.  The
        # wire size counts the (key, value) payload only -- the arrival-order
        # tags are bookkeeping, not data the original implementation moves.
        nbytes = estimate_nbytes([(key, value) for key, value, _tag in buffer])
        ctx.charge_bulk_put(owner, nbytes, count, category="agg:aggregate_put")
        ctx.heap.apply(owner, self.STACK_SEGMENT, _stack_write, position, buffer)
        self._buffers[owner] = []
        self.flushes += 1

    def flush_all(self) -> None:
        """Flush every non-empty destination buffer (end of the extraction loop)."""
        for owner in sorted(self._buffers):
            self._flush_owner(owner)

    # -- consuming side ----------------------------------------------------------

    def drain_local_stack(self) -> int:
        """Insert every entry parked in this rank's own stack into its buckets.

        Purely local: no communication, no locks.  Returns the number of
        entries inserted.
        """
        ctx = self.ctx
        ptr: SharedArray = ctx.heap.segment(ctx.me, self.PTR_SEGMENT)
        n_entries = int(ptr[0])
        items = ctx.heap.apply(ctx.me, self.STACK_SEGMENT, _stack_read,
                               n_entries)
        batch: list[tuple[Hashable, Any, Any]] = []
        for item in items:
            if item is None:
                continue
            key, value, tag = item
            owner = self.table.owner_of(key)
            if owner != ctx.me:
                raise ValueError(
                    f"drain on rank {ctx.me} found an entry owned by rank {owner}")
            ctx.charge_op("bucket_insert")
            batch.append((key, value, tag))
        if batch:
            # One message inserts the whole drained stack into the local
            # buckets (purely local under the cooperative driver; a single
            # channel round-trip under the multiprocess backend).
            ctx.heap.apply(ctx.me, self.table.segment, _store_insert_batch,
                           batch)
        return len(batch)

    # -- inspection ---------------------------------------------------------------

    def pending_entries(self) -> int:
        """Entries buffered locally and not yet flushed."""
        return sum(len(buffer) for buffer in self._buffers.values())

    @property
    def buffers_in_use(self) -> int:
        """Number of destination ranks with a non-empty local buffer."""
        return sum(1 for buffer in self._buffers.values() if buffer)
