"""Per-node software caches (paper section III-B).

A node dedicates part of its shared memory to caching (a) remote entries of
the distributed seed index and (b) remote target sequences.  Any rank on the
node can hit the cache, turning an expensive off-node get into a cheap
on-node access.  Capacity is managed in bytes with LRU eviction, matching the
paper's "dedicate a fraction of the node's memory, trade memory for reuse".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.pgas.runtime import PgasRuntime, RankContext


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one node-level cache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    bytes_cached: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when never used)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            insertions=self.insertions + other.insertions,
            evictions=self.evictions + other.evictions,
            bytes_cached=self.bytes_cached + other.bytes_cached,
        )


class _NodeCache:
    """LRU byte-bounded cache shared by the ranks of one node."""

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity_bytes = capacity_bytes
        self.entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self.used_bytes = 0
        self.stats = CacheStats()

    def get(self, key: Hashable) -> tuple[bool, Any]:
        if key in self.entries:
            value, _ = self.entries[key]
            self.entries.move_to_end(key)
            self.stats.hits += 1
            return True, value
        self.stats.misses += 1
        return False, None

    def put(self, key: Hashable, value: Any, nbytes: int) -> None:
        if self.capacity_bytes <= 0 or nbytes > self.capacity_bytes:
            return
        if key in self.entries:
            _, old_bytes = self.entries.pop(key)
            self.used_bytes -= old_bytes
        while self.used_bytes + nbytes > self.capacity_bytes and self.entries:
            _, (_, evicted_bytes) = self.entries.popitem(last=False)
            self.used_bytes -= evicted_bytes
            self.stats.evictions += 1
        self.entries[key] = (value, nbytes)
        self.used_bytes += nbytes
        self.stats.insertions += 1
        self.stats.bytes_cached = self.used_bytes


class SoftwareCache:
    """A family of per-node caches addressed through a rank context.

    One :class:`SoftwareCache` instance represents one *kind* of cache (the
    paper has two: the seed-index cache and the target cache); internally it
    keeps an independent LRU store per node.
    """

    def __init__(self, runtime: PgasRuntime, capacity_bytes_per_node: int,
                 name: str = "cache") -> None:
        if capacity_bytes_per_node < 0:
            raise ValueError("capacity must be non-negative")
        self.runtime = runtime
        self.name = name
        self.capacity_bytes_per_node = capacity_bytes_per_node
        n_nodes = runtime.machine.n_nodes(runtime.n_ranks)
        self._node_caches = [_NodeCache(capacity_bytes_per_node) for _ in range(n_nodes)]

    def _cache_for(self, ctx: RankContext) -> _NodeCache:
        return self._node_caches[ctx.node]

    def get(self, ctx: RankContext, key: Hashable) -> tuple[bool, Any]:
        """Look *key* up in the caller's node cache.

        A hit charges an on-node access (much cheaper than off-node); a miss
        charges nothing (the caller will pay for the remote fetch and then
        :meth:`put` the result).
        Returns ``(hit, value)``.
        """
        cache = self._cache_for(ctx)
        hit, value = cache.get(key)
        if hit:
            # Served from the node's shared memory.
            seconds = ctx.machine.transfer_time(
                8, same_rank=False, same_node=True, n_nodes=ctx.n_nodes)
            ctx.clock.charge_comm(seconds)
            ctx.stats.comm_time += seconds
            ctx.stats.on_node_ops += 1
            ctx.stats.record(f"cache:{self.name}:hit", seconds)
        return hit, value

    def put(self, ctx: RankContext, key: Hashable, value: Any, nbytes: int) -> None:
        """Insert a freshly fetched object into the caller's node cache."""
        ctx.charge_op("base_copy", max(1, nbytes))
        self._cache_for(ctx).put(key, value, nbytes)

    # -- inspection -------------------------------------------------------------

    def node_stats(self, node: int) -> CacheStats:
        """Statistics of one node's cache."""
        return self._node_caches[node].stats

    def total_stats(self) -> CacheStats:
        """Aggregated statistics across all nodes."""
        total = CacheStats()
        for cache in self._node_caches:
            total = total.merge(cache.stats)
        return total

    def clear(self) -> None:
        """Drop all cached entries on every node (statistics are kept)."""
        for cache in self._node_caches:
            cache.entries.clear()
            cache.used_bytes = 0
