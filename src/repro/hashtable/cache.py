"""Per-node software caches (paper section III-B).

A node dedicates part of its shared memory to caching (a) remote entries of
the distributed seed index and (b) remote target sequences.  Any rank on the
node can hit the cache, turning an expensive off-node get into a cheap
on-node access.  Capacity is managed in bytes with LRU eviction, matching the
paper's "dedicate a fraction of the node's memory, trade memory for reuse".
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Hashable

from repro.pgas.runtime import PgasRuntime, RankContext


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one node-level cache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    bytes_cached: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when never used)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            insertions=self.insertions + other.insertions,
            evictions=self.evictions + other.evictions,
            bytes_cached=self.bytes_cached + other.bytes_cached,
        )

    def delta(self, baseline: "CacheStats") -> "CacheStats":
        """Counters accumulated since *baseline* (element-wise difference)."""
        return CacheStats(
            hits=self.hits - baseline.hits,
            misses=self.misses - baseline.misses,
            insertions=self.insertions - baseline.insertions,
            evictions=self.evictions - baseline.evictions,
            bytes_cached=self.bytes_cached - baseline.bytes_cached,
        )


class _NodeCache:
    """LRU byte-bounded cache shared by the ranks of one node."""

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity_bytes = capacity_bytes
        self.entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self.used_bytes = 0
        self.stats = CacheStats()
        # Ranks of one node share this cache; under the threaded backend they
        # are real threads, so the LRU structure needs a lock.
        self._lock = threading.Lock()

    def peek(self, key: Hashable) -> bool:
        """True if *key* is cached; no statistics, no LRU movement."""
        return key in self.entries

    def get(self, key: Hashable) -> tuple[bool, Any]:
        with self._lock:
            if key in self.entries:
                value, _ = self.entries[key]
                self.entries.move_to_end(key)
                self.stats.hits += 1
                return True, value
            self.stats.misses += 1
            return False, None

    def put(self, key: Hashable, value: Any, nbytes: int) -> None:
        if self.capacity_bytes <= 0 or nbytes > self.capacity_bytes:
            return
        with self._lock:
            if key in self.entries:
                _, old_bytes = self.entries.pop(key)
                self.used_bytes -= old_bytes
            while self.used_bytes + nbytes > self.capacity_bytes and self.entries:
                _, (_, evicted_bytes) = self.entries.popitem(last=False)
                self.used_bytes -= evicted_bytes
                self.stats.evictions += 1
            self.entries[key] = (value, nbytes)
            self.used_bytes += nbytes
            self.stats.insertions += 1
            self.stats.bytes_cached = self.used_bytes


class SoftwareCache:
    """A family of per-node caches addressed through a rank context.

    One :class:`SoftwareCache` instance represents one *kind* of cache (the
    paper has two: the seed-index cache and the target cache); internally it
    keeps an independent LRU store per node.
    """

    def __init__(self, runtime: PgasRuntime, capacity_bytes_per_node: int,
                 name: str = "cache") -> None:
        if capacity_bytes_per_node < 0:
            raise ValueError("capacity must be non-negative")
        self.runtime = runtime
        self.name = name
        self.capacity_bytes_per_node = capacity_bytes_per_node
        n_nodes = runtime.machine.n_nodes(runtime.n_ranks)
        self._node_caches = [_NodeCache(capacity_bytes_per_node) for _ in range(n_nodes)]
        # Under the multiprocess backend every worker fills its own (forked)
        # copy of the cache; registering as a gatherable ships the statistics
        # back to the driver so reports look the same on every backend.
        runtime.register_gatherable(f"cache:{name}", self)

    def _cache_for(self, ctx: RankContext) -> _NodeCache:
        return self._node_caches[ctx.node]

    def peek(self, ctx: RankContext, key: Hashable) -> bool:
        """Presence probe with no statistics and no LRU effect.

        Used by batched call sites to decide what to prefetch without
        perturbing the hit/miss accounting of the subsequent real lookups.
        """
        return self._cache_for(ctx).peek(key)

    # -- gatherable protocol (multiprocess backend) --------------------------

    def gather_state(self) -> list[CacheStats]:
        """Snapshot of the per-node statistics (picklable)."""
        return [replace(cache.stats) for cache in self._node_caches]

    def absorb_states(self, pairs: list[tuple[list[CacheStats],
                                              list[CacheStats]]]) -> None:
        """Merge workers' ``(before, after)`` statistic snapshots into this
        (driver-side) cache; cached entries themselves stay with the workers."""
        for before, after in pairs:
            for node, (prev, curr) in enumerate(zip(before, after)):
                cache = self._node_caches[node]
                cache.stats = cache.stats.merge(curr.delta(prev))

    def get(self, ctx: RankContext, key: Hashable) -> tuple[bool, Any]:
        """Look *key* up in the caller's node cache.

        A hit charges an on-node access (much cheaper than off-node); a miss
        charges nothing (the caller will pay for the remote fetch and then
        :meth:`put` the result).
        Returns ``(hit, value)``.
        """
        cache = self._cache_for(ctx)
        hit, value = cache.get(key)
        if hit:
            # Served from the node's shared memory.
            seconds = ctx.machine.transfer_time(
                8, same_rank=False, same_node=True, n_nodes=ctx.n_nodes)
            ctx.clock.charge_comm(seconds)
            ctx.stats.comm_time += seconds
            ctx.stats.on_node_ops += 1
            ctx.stats.record(f"cache:{self.name}:hit", seconds)
        return hit, value

    def put(self, ctx: RankContext, key: Hashable, value: Any, nbytes: int) -> None:
        """Insert a freshly fetched object into the caller's node cache."""
        ctx.charge_op("base_copy", max(1, nbytes))
        self._cache_for(ctx).put(key, value, nbytes)

    # -- inspection -------------------------------------------------------------

    def node_stats(self, node: int) -> CacheStats:
        """Statistics of one node's cache."""
        return self._node_caches[node].stats

    def total_stats(self) -> CacheStats:
        """Aggregated statistics across all nodes."""
        total = CacheStats()
        for cache in self._node_caches:
            total = total.merge(cache.stats)
        return total

    def clear(self) -> None:
        """Drop all cached entries on every node (statistics are kept)."""
        for cache in self._node_caches:
            cache.entries.clear()
            cache.used_bytes = 0
