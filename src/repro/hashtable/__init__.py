"""Distributed hash table, aggregating stores, and software caches.

This package implements the data-structure contributions of the paper's
section III:

* :mod:`repro.hashtable.local_table` -- the per-rank bucket store that backs
  one partition of the distributed table.
* :mod:`repro.hashtable.distributed` -- the distributed hash table proper
  (seed index substrate): key ownership via djb2, one-sided lookups, and the
  *unoptimized* fine-grained insertion path used as the Fig 8 baseline.
* :mod:`repro.hashtable.aggregating` -- the "aggregating stores" construction
  optimization: per-destination buffers of size S flushed with aggregate
  one-sided transfers into remote local-shared stacks reserved by
  ``atomic_fetchadd``, then drained locally without locks.
* :mod:`repro.hashtable.cache` -- per-node software caches for remote seed
  index entries and remote target sequences (section III-B).
"""

from repro.hashtable.local_table import LocalBucketStore, BucketEntry
from repro.hashtable.distributed import DistributedHashTable
from repro.hashtable.aggregating import AggregatingStoreBuffer, LocalSharedStack
from repro.hashtable.cache import SoftwareCache, CacheStats

__all__ = [
    "LocalBucketStore",
    "BucketEntry",
    "DistributedHashTable",
    "AggregatingStoreBuffer",
    "LocalSharedStack",
    "SoftwareCache",
    "CacheStats",
]
