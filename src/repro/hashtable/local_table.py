"""The per-rank local bucket store backing one partition of the seed index.

Each rank of the distributed hash table owns an array of buckets.  A bucket
holds the entries whose key hashes into it (separate chaining).  Besides the
values, every key carries an occurrence *count*, which is what the exact-match
optimization (section IV-A) reads to decide whether a target's seeds are all
single-copy.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator


@dataclass
class BucketEntry:
    """One key of the local store: its values and occurrence count.

    ``tags`` mirrors ``values``: the arrival-order tag each value was
    inserted with (``None`` for untagged inserts).  Tags keep the value list
    in a canonical global order even when inserts arrive concurrently from
    several ranks, which is what lets every execution backend report
    byte-identical alignments (the aligner truncates and indexes value lists,
    so their order matters).
    """

    key: Hashable
    values: list[Any] = field(default_factory=list)
    count: int = 0
    tags: list[Any] = field(default_factory=list)


class LocalBucketStore:
    """A chained-bucket hash table owned by a single rank.

    The number of buckets is fixed at construction, as in the original UPC
    implementation where the bucket array is a one-time shared allocation.
    """

    def __init__(self, n_buckets: int = 1024) -> None:
        if n_buckets <= 0:
            raise ValueError("n_buckets must be positive")
        self._n_buckets = n_buckets
        self._buckets: list[dict[Hashable, BucketEntry]] = [dict() for _ in range(n_buckets)]
        self._n_keys = 0
        self._n_values = 0

    @property
    def n_buckets(self) -> int:
        return self._n_buckets

    @property
    def n_keys(self) -> int:
        """Number of distinct keys stored."""
        return self._n_keys

    @property
    def n_values(self) -> int:
        """Total number of values stored across all keys."""
        return self._n_values

    def bucket_index(self, key: Hashable) -> int:
        """Bucket that *key* lives in."""
        return hash(key) % self._n_buckets

    def insert(self, key: Hashable, value: Any,
               tag: Any = None) -> BucketEntry:
        """Add *value* to *key*'s entry, creating the entry if needed.

        With a *tag* (any totally ordered token, e.g. ``(source_rank, seq)``)
        the value is kept in tag order within the entry, so the final value
        list is independent of the physical arrival order -- cooperative
        execution produces already-sorted tags and keeps its historical
        append order, while concurrent backends converge to the same list.
        Untagged inserts append (legacy behaviour).
        """
        bucket = self._buckets[self.bucket_index(key)]
        entry = bucket.get(key)
        if entry is None:
            entry = BucketEntry(key=key)
            bucket[key] = entry
            self._n_keys += 1
        tags = entry.tags
        if tag is None or not tags or tags[-1] is None or not tag < tags[-1]:
            entry.values.append(value)
            tags.append(tag)
        elif None in tags:
            # Mixed legacy (untagged) and tagged inserts on one key: tags are
            # not totally ordered, so fall back to arrival order rather than
            # crash comparing None against a tag.
            entry.values.append(value)
            tags.append(tag)
        else:
            position = bisect.bisect_right(tags, tag)
            entry.values.insert(position, value)
            tags.insert(position, tag)
        entry.count += 1
        self._n_values += 1
        return entry

    def lookup(self, key: Hashable) -> BucketEntry | None:
        """Return the entry for *key*, or None if absent."""
        return self._buckets[self.bucket_index(key)].get(key)

    def count(self, key: Hashable) -> int:
        """Occurrence count of *key* (0 when absent)."""
        entry = self.lookup(key)
        return 0 if entry is None else entry.count

    def __contains__(self, key: Hashable) -> bool:
        return self.lookup(key) is not None

    def __len__(self) -> int:
        return self._n_keys

    def entries(self) -> Iterator[BucketEntry]:
        """Iterate every entry in bucket order (local, communication-free)."""
        for bucket in self._buckets:
            yield from bucket.values()

    def keys(self) -> Iterator[Hashable]:
        for entry in self.entries():
            yield entry.key

    def load_factor(self) -> float:
        """Average number of distinct keys per bucket."""
        return self._n_keys / self._n_buckets

    def max_bucket_size(self) -> int:
        """Largest number of distinct keys in any one bucket."""
        return max((len(bucket) for bucket in self._buckets), default=0)
