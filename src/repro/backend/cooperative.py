"""The cooperative execution backend: the deterministic in-process driver.

Ranks run one after another within each phase inside the calling process.
This is safe because merAligner's SPMD functions only use one-sided
operations between barriers, and it is the reference backend: the threaded
and process backends are required to reproduce its alignments byte for byte.
"""

from __future__ import annotations

import inspect
import time
from typing import Any, Callable

from repro.backend.base import ExecutionBackend


class CooperativeBackend(ExecutionBackend):
    """Runs every rank cooperatively in the calling process."""

    name = "cooperative"

    def execute(self, runtime, fn: Callable[..., Any], args: tuple,
                phase_name: str | None = None,
                label: str | None = None) -> list[Any]:
        # The cooperative driver raises application errors in place, so the
        # invocation label is not needed for diagnostics here.
        if inspect.isgeneratorfunction(fn):
            return runtime._run_generators(fn, args)
        name = phase_name or getattr(fn, "__name__", "phase")
        wall_start = time.perf_counter()
        before = [ctx.clock.snapshot() for ctx in runtime.contexts]
        results = [fn(ctx, *args) for ctx in runtime.contexts]
        runtime._record_phase(name, before,
                              wall_seconds=time.perf_counter() - wall_start)
        runtime._barrier()
        return results
