"""The execution-backend interface and the shared SPMD driving machinery.

An :class:`ExecutionBackend` decides *how* the ranks of a
:class:`~repro.pgas.runtime.PgasRuntime` execute an SPMD function -- one
after another in the calling process (``cooperative``), on real OS threads
(``threaded``) or on real OS processes with the heap served over shared
memory and message channels (``process``).  Every backend presents the same
contract to :meth:`~repro.pgas.runtime.PgasRuntime.run_spmd`:

* the SPMD function runs once per rank against its persistent
  :class:`~repro.pgas.runtime.RankContext`;
* a generator function barriers at every ``yield`` (optionally labelling the
  phase that just completed), a plain function is one phase;
* after the run, the runtime's :class:`~repro.pgas.trace.PhaseTrace` list,
  per-rank virtual clocks and :class:`~repro.pgas.cost_model.CommStats` look
  exactly as if the deterministic cooperative driver had executed the ranks
  (barrier wait time synchronised to the slowest rank, one barrier charge per
  phase), so reports are comparable across backends;
* each recorded phase additionally carries the *measured* wall-clock duration
  (``PhaseTrace.wall_seconds``), which is where real backends show real
  speedups.

The helpers in this module -- :func:`drive_rank`,
:func:`assemble_phase_specs`, :func:`replay_barriers`,
:func:`raise_rank_failures` -- implement the parts every real-parallel
backend shares: stepping a rank's generator between real barriers while
snapshotting its virtual clock, reconstructing cooperative-equivalent phase
traces from those snapshots, and turning per-rank failures into one
descriptive exception instead of silently returning garbage.
"""

from __future__ import annotations

import inspect
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.pgas.trace import PhaseTrace, TimeBreakdown


class BackendUnavailableError(RuntimeError):
    """Raised when a backend cannot run on this platform (e.g. no fork)."""


class BackendSession:
    """Resident per-runtime backend state between SPMD invocations.

    A long-lived serving session (see :mod:`repro.service`) issues many
    ``run_spmd`` invocations against one runtime.  Opening a backend session
    lets a backend keep its expensive per-invocation machinery alive across
    them -- the threaded backend keeps one OS thread per rank parked between
    invocations, the process backend keeps its shared-memory promotions
    mapped -- instead of building and tearing it down per request.  The base
    class is a no-op (the cooperative driver is resident by construction).
    """

    def close(self) -> None:
        """Release the resident state (idempotent)."""


class ExecutionBackend(ABC):
    """Strategy object running one SPMD invocation on a runtime."""

    #: Registry name of the backend (set by subclasses).
    name: str = "abstract"

    @abstractmethod
    def execute(self, runtime, fn: Callable[..., Any], args: tuple,
                phase_name: str | None = None,
                label: str | None = None) -> list[Any]:
        """Run ``fn(ctx, *args)`` on every rank of *runtime*.

        Returns per-rank results in rank order.  Implementations must append
        the run's :class:`PhaseTrace` records to ``runtime.phases`` and leave
        the rank contexts' clocks and stats updated with cooperative-
        equivalent barrier accounting.  *label* names the invocation (e.g.
        the plan being run) and must be woven into failure diagnostics so a
        dead rank identifies the pipeline invocation that killed it.
        """

    def open_session(self, runtime) -> BackendSession:
        """Make ranks resident on *runtime* until the session is closed.

        Subsequent :meth:`execute` calls on the same runtime reuse the
        resident machinery.  Backends without per-invocation setup return the
        no-op :class:`BackendSession`.
        """
        return BackendSession()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass
class RankRun:
    """Everything one rank's execution produced, for post-run assembly.

    ``marks`` holds one entry per ``yield`` (barrier): the phase label, the
    rank's cumulative virtual-clock snapshot, and the host wall-clock mark.
    Snapshots are cumulative (they include state from earlier ``run_spmd``
    invocations on the same runtime) so phase deltas are formed against
    ``start_snapshot``.
    """

    result: Any = None
    marks: list[tuple[str | None, TimeBreakdown, float]] = field(default_factory=list)
    start_snapshot: TimeBreakdown = field(default_factory=TimeBreakdown)
    start_wall: float = 0.0
    final_snapshot: TimeBreakdown = field(default_factory=TimeBreakdown)
    final_wall: float = 0.0
    is_generator: bool = True


@dataclass
class RankFailure:
    """One rank's failure, as collected by a real-parallel backend."""

    rank: int
    error: BaseException | None
    traceback: str | None = None
    is_barrier: bool = False


def drive_rank(ctx, fn: Callable[..., Any], args: tuple,
               barrier: Callable[[], None]) -> RankRun:
    """Run one rank's SPMD function, calling *barrier* at every ``yield``.

    This is the real-parallel equivalent of the cooperative generator driver:
    the virtual clock is snapshotted immediately before each barrier so the
    caller can reconstruct per-phase time breakdowns afterwards.
    """
    run = RankRun(start_snapshot=ctx.clock.snapshot(),
                  start_wall=time.perf_counter())
    if inspect.isgeneratorfunction(fn):
        generator = fn(ctx, *args)
        while True:
            try:
                label = next(generator)
            except StopIteration as stop:
                run.result = stop.value
                break
            run.marks.append((label if isinstance(label, str) else None,
                              ctx.clock.snapshot(), time.perf_counter()))
            barrier()
    else:
        run.is_generator = False
        run.result = fn(ctx, *args)
    run.final_snapshot = ctx.clock.snapshot()
    run.final_wall = time.perf_counter()
    return run


def assemble_phase_specs(runs: list[RankRun], fallback_name: str
                         ) -> list[tuple[str, list[TimeBreakdown], float]]:
    """Turn per-rank :class:`RankRun` records into cooperative-style phases.

    Returns ``[(name, per_rank_deltas, wall_seconds), ...]``, one entry per
    barrier round plus -- exactly as the cooperative driver does -- a trailing
    phase when any rank performed work after its final ``yield`` (always, for
    plain functions, which are a single phase).
    """
    rounds = len(runs[0].marks)
    if any(len(run.marks) != rounds for run in runs):
        counts = [len(run.marks) for run in runs]
        raise RuntimeError(
            f"ranks reached different barrier counts {counts}: every rank "
            "must yield the same number of times under a real-parallel backend")
    specs: list[tuple[str, list[TimeBreakdown], float]] = []
    prev_snaps = [run.start_snapshot for run in runs]
    prev_walls = [run.start_wall for run in runs]
    for index in range(rounds):
        deltas = [run.marks[index][1] - prev
                  for run, prev in zip(runs, prev_snaps)]
        label = next((run.marks[index][0] for run in runs
                      if run.marks[index][0] is not None), None)
        wall = max(run.marks[index][2] - prev
                   for run, prev in zip(runs, prev_walls))
        specs.append((label or f"phase{index}", deltas, wall))
        prev_snaps = [run.marks[index][1] for run in runs]
        prev_walls = [run.marks[index][2] for run in runs]
    trailing = [run.final_snapshot - prev for run, prev in zip(runs, prev_snaps)]
    plain = not all(run.is_generator for run in runs)
    if plain or any(delta.total > 0 for delta in trailing):
        wall = max(run.final_wall - prev for run, prev in zip(runs, prev_walls))
        name = fallback_name if plain and rounds == 0 else f"phase{rounds}"
        specs.append((name, trailing, wall))
    return specs


def replay_barriers(runtime, runs: list[RankRun],
                    specs: list[tuple[str, list[TimeBreakdown], float]]) -> None:
    """Record *specs* as phases and apply cooperative barrier accounting.

    The rank contexts must already carry the in-phase work (threads run on
    them live; the process backend merges worker deltas first).  This adds
    what the cooperative driver's ``_barrier`` would have added after every
    phase: wait-to-the-slowest-rank time on the virtual clock, one barrier
    charge in comm time, one barrier count.
    """
    n_barriers = len(specs)
    barrier_cost = runtime.machine.barrier_time(runtime.n_ranks)
    now = [run.start_snapshot.total for run in runs]
    clock_adjustments = [0.0] * runtime.n_ranks
    for name, deltas, wall in specs:
        runtime.phases.append(PhaseTrace(name=name, per_rank=deltas,
                                         wall_seconds=wall))
        for rank in range(runtime.n_ranks):
            now[rank] += deltas[rank].total
        latest = max(now)
        for rank in range(runtime.n_ranks):
            clock_adjustments[rank] += (latest - now[rank]) + barrier_cost
            now[rank] = latest + barrier_cost
    for ctx, adjustment in zip(runtime.contexts, clock_adjustments):
        if adjustment > 0:
            ctx.clock.charge_comm(adjustment)
        ctx.stats.comm_time += barrier_cost * n_barriers
        ctx.stats.barriers += n_barriers


def raise_rank_failures(failures: list[RankFailure], backend_name: str,
                        label: str | None = None) -> None:
    """Raise the most informative exception for a set of rank failures.

    A genuine application error wins; if *every* failing rank only saw a
    ``BrokenBarrierError`` (the symptom, not the cause -- e.g. a barrier-count
    mismatch or a barrier timeout) a descriptive error is raised instead of
    letting the caller receive a garbage all-``None`` result list.  *label*
    (the invocation label passed to ``run_spmd``) is woven into the message
    so a serving stack running many plans can tell which invocation died.
    """
    if not failures:
        return
    where = f"the {backend_name} backend"
    if label:
        where += f" (invocation {label!r})"
    real = [failure for failure in failures if not failure.is_barrier]
    if real:
        failure = real[0]
        error = failure.error or RuntimeError(
            f"rank {failure.rank} failed under {where}")
        if failure.traceback and hasattr(error, "add_note"):
            error.add_note(f"(rank {failure.rank} traceback under {where})\n"
                           f"{failure.traceback}")
        raise error
    broken = sorted(failure.rank for failure in failures)
    raise RuntimeError(
        f"ranks {broken} all failed with BrokenBarrierError under "
        f"{where} and no originating error was captured. "
        "This usually means a barrier-count mismatch (some rank finished "
        "early or yielded a different number of times) or a rank deadlocked "
        "past the barrier timeout.")


def barrier_waiter(barrier, timeout: float | None) -> Callable[[], None]:
    """A ``wait`` callable for a threading/multiprocessing barrier.

    The timeout turns a deadlocked barrier (count mismatch, hung rank) into a
    ``BrokenBarrierError`` so the run fails fast instead of hanging forever.
    """
    def wait() -> None:
        barrier.wait(timeout=timeout)
    return wait


__all__ = [
    "BackendSession",
    "BackendUnavailableError",
    "ExecutionBackend",
    "RankFailure",
    "RankRun",
    "assemble_phase_specs",
    "barrier_waiter",
    "drive_rank",
    "raise_rank_failures",
    "replay_barriers",
]
