"""Pluggable execution backends for the SPMD runtime.

A backend decides how the ranks of a :class:`~repro.pgas.runtime.PgasRuntime`
execute an SPMD function; the runtime, the aligner pipeline and the CLI all
select one by name through this registry:

``cooperative``
    The deterministic in-process driver (the default and the reference for
    byte-identical alignments).
``threaded``
    One real OS thread per rank with a real barrier (absorbs the legacy
    :class:`~repro.pgas.executor.ThreadedExecutor`).
``process``
    One forked OS process per rank; numeric heap segments live in
    ``multiprocessing.shared_memory`` and object segments are served through
    per-rank message channels, so numpy-heavy phases run in true parallel.

``resolve_backend`` accepts a registered name or a ready
:class:`~repro.backend.base.ExecutionBackend` instance; the environment
variable ``REPRO_BACKEND`` supplies the default for the aligner pipeline and
CLI (see :func:`default_backend_name`), which is how CI runs the whole suite
under the process backend.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.backend.base import (BackendSession, BackendUnavailableError,
                                ExecutionBackend)
from repro.backend.cooperative import CooperativeBackend
from repro.backend.process import ProcessBackend
from repro.backend.threaded import ThreadedBackend

_REGISTRY: dict[str, Callable[[], ExecutionBackend]] = {}
_INSTANCES: dict[str, ExecutionBackend] = {}


def register_backend(name: str, factory: Callable[[], ExecutionBackend]) -> None:
    """Register a backend *factory* under *name* (last registration wins)."""
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> list[str]:
    """Names of every registered backend, sorted."""
    return sorted(_REGISTRY)


def get_backend(name: str) -> ExecutionBackend:
    """The (cached) backend instance registered under *name*."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown execution backend {name!r}; "
                       f"available: {', '.join(available_backends())}") from None
    if name not in _INSTANCES:
        _INSTANCES[name] = factory()
    return _INSTANCES[name]


def resolve_backend(spec: "str | ExecutionBackend") -> ExecutionBackend:
    """Resolve a backend name or pass an instance through."""
    if isinstance(spec, ExecutionBackend):
        return spec
    if isinstance(spec, str):
        return get_backend(spec)
    raise TypeError(f"backend must be a name or an ExecutionBackend, "
                    f"got {type(spec).__name__}")


def default_backend_name() -> str:
    """Backend the aligner pipeline and CLI use when none is given.

    Reads ``REPRO_BACKEND`` from the environment (so a whole test run can be
    pointed at another backend) and falls back to ``cooperative``.
    """
    return os.environ.get("REPRO_BACKEND", "").strip() or "cooperative"


register_backend("cooperative", CooperativeBackend)
register_backend("threaded", ThreadedBackend)
register_backend("process", ProcessBackend)

__all__ = [
    "BackendSession",
    "BackendUnavailableError",
    "CooperativeBackend",
    "ExecutionBackend",
    "ProcessBackend",
    "ThreadedBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend",
]
