"""The threaded execution backend: one real OS thread per rank.

This backend absorbs (and fixes) the original
:class:`repro.pgas.executor.ThreadedExecutor`:

* generator SPMD functions are supported -- every ``yield`` synchronises on a
  real :class:`threading.Barrier` and the per-phase virtual-clock breakdowns
  are reconstructed afterwards, so reports match the cooperative driver;
* a run where every failing rank only saw a ``BrokenBarrierError`` (a
  barrier-count mismatch, a rank hung past the barrier timeout) raises a
  descriptive error instead of silently returning an all-``None`` result
  list, which is what the old executor did.

The GIL prevents CPU-bound Python speedups, but numpy-heavy kernels release
the GIL, and the backend demonstrates that the one-sided algorithms are safe
under genuine concurrency.  For real multi-core speedups use the ``process``
backend.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.backend.base import (ExecutionBackend, RankFailure, RankRun,
                                assemble_phase_specs, barrier_waiter,
                                drive_rank, raise_rank_failures,
                                replay_barriers)


class ThreadedBackend(ExecutionBackend):
    """Runs an SPMD function on one real thread per rank."""

    name = "threaded"

    def __init__(self, timeout: float | None = 120.0,
                 barrier_timeout: float | None = 60.0) -> None:
        self.timeout = timeout
        self.barrier_timeout = barrier_timeout

    def execute(self, runtime, fn: Callable[..., Any], args: tuple,
                phase_name: str | None = None) -> list[Any]:
        runs = self._run_threads(runtime, fn, args, record=True)
        fallback = phase_name or getattr(fn, "__name__", "phase")
        specs = assemble_phase_specs(runs, fallback)
        # Threads ran directly on the parent contexts, so the in-phase work is
        # already on the clocks; only the barrier accounting is replayed.
        replay_barriers(runtime, runs, specs)
        return [run.result for run in runs]

    def run_plain(self, runtime, fn: Callable[..., Any], args: tuple) -> list[Any]:
        """Legacy :class:`ThreadedExecutor` semantics: no phase recording.

        Runs the function on real threads with a real barrier and returns the
        per-rank results; phase traces and barrier cost accounting are not
        applied.  Kept for callers that treat the executor as a pure
        concurrency harness.
        """
        runs = self._run_threads(runtime, fn, args, record=False)
        return [run.result for run in runs]

    # -- internals -----------------------------------------------------------

    def _run_threads(self, runtime, fn: Callable[..., Any], args: tuple,
                     record: bool) -> list[RankRun]:
        n = runtime.n_ranks
        barrier = threading.Barrier(n)
        wait = barrier_waiter(barrier, self.barrier_timeout)
        runs: list[RankRun | None] = [None] * n
        failures: list[RankFailure] = []
        failures_lock = threading.Lock()

        def worker(rank: int) -> None:
            ctx = runtime.contexts[rank]
            ctx._barrier_impl = wait
            try:
                runs[rank] = drive_rank(ctx, fn, args, wait)
            except BaseException as exc:  # noqa: BLE001 - propagated to caller
                with failures_lock:
                    failures.append(RankFailure(
                        rank=rank, error=exc,
                        is_barrier=isinstance(exc, threading.BrokenBarrierError)))
                # Break the barrier so no other rank deadlocks waiting for us.
                barrier.abort()
            finally:
                ctx._barrier_impl = None

        threads = [threading.Thread(target=worker, args=(rank,), daemon=True)
                   for rank in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=self.timeout)
        for thread in threads:
            if thread.is_alive():
                barrier.abort()
                raise TimeoutError(
                    f"SPMD rank did not finish within the {self.name} backend "
                    f"timeout ({self.timeout}s)")
        raise_rank_failures(failures, self.name)
        return [run for run in runs]  # type: ignore[misc]
