"""The threaded execution backend: one real OS thread per rank.

This backend absorbs (and fixes) the original
:class:`repro.pgas.executor.ThreadedExecutor`:

* generator SPMD functions are supported -- every ``yield`` synchronises on a
  real :class:`threading.Barrier` and the per-phase virtual-clock breakdowns
  are reconstructed afterwards, so reports match the cooperative driver;
* a run where every failing rank only saw a ``BrokenBarrierError`` (a
  barrier-count mismatch, a rank hung past the barrier timeout) raises a
  descriptive error instead of silently returning an all-``None`` result
  list, which is what the old executor did.

The GIL prevents CPU-bound Python speedups, but numpy-heavy kernels release
the GIL, and the backend demonstrates that the one-sided algorithms are safe
under genuine concurrency.  For real multi-core speedups use the ``process``
backend.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable

from repro.backend.base import (BackendSession, ExecutionBackend, RankFailure,
                                RankRun, assemble_phase_specs, barrier_waiter,
                                drive_rank, raise_rank_failures,
                                replay_barriers)


class _ResidentThreadPool(BackendSession):
    """One parked OS thread per rank, reused across SPMD invocations.

    A serving session issues many ``run_spmd`` invocations; instead of
    spawning and joining ``n_ranks`` threads per invocation, the pool keeps
    the rank threads resident -- each parked on its inbox queue between
    invocations -- which is the threaded analogue of keeping SPMD ranks alive
    between jobs.  A fresh :class:`threading.Barrier` per invocation keeps a
    broken barrier (failed request) from poisoning the next one.
    """

    def __init__(self, runtime, timeout: float | None,
                 barrier_timeout: float | None) -> None:
        self._runtime = runtime
        self._timeout = timeout
        self._barrier_timeout = barrier_timeout
        self._inboxes = [queue.SimpleQueue() for _ in range(runtime.n_ranks)]
        self._outbox: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False
        self._threads = [threading.Thread(target=self._worker, args=(rank,),
                                          name=f"repro-rank-{rank}", daemon=True)
                         for rank in range(runtime.n_ranks)]
        for thread in self._threads:
            thread.start()
        runtime._threaded_session = self

    def _worker(self, rank: int) -> None:
        inbox = self._inboxes[rank]
        while True:
            item = inbox.get()
            if item is None:
                return
            fn, args, barrier = item
            ctx = self._runtime.contexts[rank]
            wait = barrier_waiter(barrier, self._barrier_timeout)
            ctx._barrier_impl = wait
            try:
                run = drive_rank(ctx, fn, args, wait)
                self._outbox.put(("ok", rank, run))
            except BaseException as exc:  # noqa: BLE001 - reported to driver
                self._outbox.put(("err", rank, RankFailure(
                    rank=rank, error=exc,
                    is_barrier=isinstance(exc, threading.BrokenBarrierError))))
                # Break the barrier so no other rank deadlocks waiting for us;
                # the pool itself survives for the next invocation.
                try:
                    barrier.abort()
                except Exception:
                    pass
            finally:
                ctx._barrier_impl = None

    def run(self, fn: Callable[..., Any], args: tuple,
            label: str | None = None) -> list[RankRun]:
        """Run one SPMD invocation on the resident rank threads."""
        if self._closed:
            raise RuntimeError("resident thread pool is closed")
        n = self._runtime.n_ranks
        barrier = threading.Barrier(n)
        for inbox in self._inboxes:
            inbox.put((fn, args, barrier))
        runs: list[RankRun | None] = [None] * n
        failures: list[RankFailure] = []
        deadline = (time.monotonic() + self._timeout
                    if self._timeout is not None else None)
        for _ in range(n):
            try:
                remaining = (None if deadline is None
                             else max(0.0, deadline - time.monotonic()))
                status, rank, payload = self._outbox.get(timeout=remaining)
            except queue.Empty:
                # A rank is stuck mid-invocation: its eventual outbox entry
                # would desynchronise the next invocation's collection, so
                # poison the pool -- the backend falls back to fresh threads
                # and the parked workers exit once the stuck rank returns.
                self._closed = True
                for inbox in self._inboxes:
                    inbox.put(None)
                barrier.abort()
                raise TimeoutError(
                    "SPMD rank did not finish within the threaded backend "
                    f"timeout ({self._timeout}s)"
                    + (f" while running {label!r}" if label else "")
                    + "; resident pool retired") from None
            if status == "ok":
                runs[rank] = payload
            else:
                failures.append(payload)
        raise_rank_failures(failures, "threaded", label=label)
        return [run for run in runs]  # type: ignore[misc]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for inbox in self._inboxes:
            inbox.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)
        if getattr(self._runtime, "_threaded_session", None) is self:
            self._runtime._threaded_session = None


class ThreadedBackend(ExecutionBackend):
    """Runs an SPMD function on one real thread per rank."""

    name = "threaded"

    def __init__(self, timeout: float | None = 120.0,
                 barrier_timeout: float | None = 60.0) -> None:
        self.timeout = timeout
        self.barrier_timeout = barrier_timeout

    def open_session(self, runtime) -> _ResidentThreadPool:
        """Park one resident thread per rank until the session closes."""
        return _ResidentThreadPool(runtime, self.timeout, self.barrier_timeout)

    def execute(self, runtime, fn: Callable[..., Any], args: tuple,
                phase_name: str | None = None,
                label: str | None = None) -> list[Any]:
        pool = getattr(runtime, "_threaded_session", None)
        if pool is not None and not pool._closed:
            runs = pool.run(fn, args, label=label)
        else:
            runs = self._run_threads(runtime, fn, args, record=True,
                                     label=label)
        fallback = phase_name or getattr(fn, "__name__", "phase")
        specs = assemble_phase_specs(runs, fallback)
        # Threads ran directly on the parent contexts, so the in-phase work is
        # already on the clocks; only the barrier accounting is replayed.
        replay_barriers(runtime, runs, specs)
        return [run.result for run in runs]

    def run_plain(self, runtime, fn: Callable[..., Any], args: tuple) -> list[Any]:
        """Legacy :class:`ThreadedExecutor` semantics: no phase recording.

        Runs the function on real threads with a real barrier and returns the
        per-rank results; phase traces and barrier cost accounting are not
        applied.  Kept for callers that treat the executor as a pure
        concurrency harness.
        """
        runs = self._run_threads(runtime, fn, args, record=False)
        return [run.result for run in runs]

    # -- internals -----------------------------------------------------------

    def _run_threads(self, runtime, fn: Callable[..., Any], args: tuple,
                     record: bool, label: str | None = None) -> list[RankRun]:
        n = runtime.n_ranks
        barrier = threading.Barrier(n)
        wait = barrier_waiter(barrier, self.barrier_timeout)
        runs: list[RankRun | None] = [None] * n
        failures: list[RankFailure] = []
        failures_lock = threading.Lock()

        def worker(rank: int) -> None:
            ctx = runtime.contexts[rank]
            ctx._barrier_impl = wait
            try:
                runs[rank] = drive_rank(ctx, fn, args, wait)
            except BaseException as exc:  # noqa: BLE001 - propagated to caller
                with failures_lock:
                    failures.append(RankFailure(
                        rank=rank, error=exc,
                        is_barrier=isinstance(exc, threading.BrokenBarrierError)))
                # Break the barrier so no other rank deadlocks waiting for us.
                barrier.abort()
            finally:
                ctx._barrier_impl = None

        threads = [threading.Thread(target=worker, args=(rank,), daemon=True)
                   for rank in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=self.timeout)
        for thread in threads:
            if thread.is_alive():
                barrier.abort()
                raise TimeoutError(
                    f"SPMD rank did not finish within the {self.name} backend "
                    f"timeout ({self.timeout}s)"
                    + (f" while running {label!r}" if label else ""))
        raise_rank_failures(failures, self.name, label=label)
        return [run for run in runs]  # type: ignore[misc]
