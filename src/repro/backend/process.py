"""The multiprocess execution backend: one OS process per rank.

This is the backend that turns the modelled strong-scaling results into real
wall-clock speedups: every rank is a forked OS process, so the numpy-heavy
Smith-Waterman sweeps and bulk fetches of different ranks genuinely run in
parallel on different cores (no GIL).

Shared-heap architecture
------------------------

* **Numeric segments** (:class:`~repro.pgas.shared.SharedArray`) are promoted
  into ``multiprocessing.shared_memory`` blocks before the workers fork, so
  every process addresses the *same* physical pages; reads and writes are
  direct loads/stores, and ``fetch_add`` round-trips through the heap server
  for atomicity (it is modelled as a network atomic anyway).
* **Object segments** (key/value stores, hash-table partitions, local-shared
  stacks) stay authoritative in the driver process and are *served through
  per-rank message channels*: each worker owns a duplex pipe to a heap-server
  thread in the driver, over which it issues the same access verbs
  (``load``/``store``/``apply``/...) the in-process
  :class:`~repro.pgas.shared.SharedHeap` exposes.  Batched call sites
  (``lookup_many``, ``fetch_many``, ``get_many``) collapse a whole window of
  accesses into a single message, mirroring the paper's aggregation story.
* Results, per-phase clock snapshots, communication statistics and registered
  *gatherables* (e.g. software-cache statistics) ship back over the channel
  when a rank finishes; the driver then replays cooperative barrier
  accounting so reports are comparable across backends.

Because the workers are forked, SPMD closures, read sets and index objects
are inherited copy-on-write for free; only heap traffic crosses process
boundaries.  The backend requires the ``fork`` start method (Linux/macOS
CPython builds that support it) and fails with
:class:`~repro.backend.base.BackendUnavailableError` elsewhere.

Caveats (documented, by design): per-*node* software caches degrade to
per-*rank* caches (each worker fills its own copy; statistics are gathered
back, cached entries are not), and driver-side convenience mirrors such as
``TargetStore.directory`` are not populated by worker writes -- everything
the report reads goes through the authoritative heap and is exact.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback
from multiprocessing import shared_memory
from typing import Any, Callable, Hashable

from repro.backend.base import (BackendSession, BackendUnavailableError,
                                ExecutionBackend, RankFailure, RankRun,
                                assemble_phase_specs, barrier_waiter,
                                drive_rank, raise_rank_failures,
                                replay_barriers)
from repro.pgas.shared import SharedArray, SharedHeap


# ---------------------------------------------------------------------------
# Worker-side heap client
# ---------------------------------------------------------------------------

class _KVProxy:
    """Dictionary-style view of a remote key/value segment."""

    __slots__ = ("_heap", "_rank", "_name")

    def __init__(self, heap: "_WorkerHeap", rank: int, name: str) -> None:
        self._heap = heap
        self._rank = rank
        self._name = name

    def __getitem__(self, key: Hashable) -> Any:
        return self._heap.load(self._rank, self._name, key)

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self._heap.store(self._rank, self._name, key, value)

    def __contains__(self, key: Hashable) -> bool:
        return self._heap.contains(self._rank, self._name, key)

    def get(self, key: Hashable, default: Any = None) -> Any:
        return self._heap.load(self._rank, self._name, key, default=default,
                               missing_ok=True)


class _WorkerHeap:
    """The worker process's view of the shared heap.

    :class:`SharedArray` segments are served from the inherited (or attached)
    shared-memory views; everything else is forwarded over the rank's message
    channel to the heap server in the driver process.
    """

    def __init__(self, conn, inherited: SharedHeap) -> None:
        self._conn = conn
        self._n_ranks = inherited.n_ranks
        self._arrays: dict[tuple[int, str], SharedArray] = {}
        for rank, name, obj in inherited.iter_segments():
            if isinstance(obj, SharedArray):
                self._arrays[(rank, name)] = obj
        self._attached_shm: list[shared_memory.SharedMemory] = []
        self.lock = threading.Lock()  # API parity with SharedHeap

    @property
    def n_ranks(self) -> int:
        return self._n_ranks

    # -- channel ------------------------------------------------------------

    def _rpc(self, *message: Any) -> Any:
        self._conn.send(message)
        status, payload = self._conn.recv()
        if status == "err":
            raise payload
        return payload

    # -- verb surface (mirrors SharedHeap) ----------------------------------

    def load(self, owner: int, segment: str, key: Hashable,
             default: Any = None, missing_ok: bool = False) -> Any:
        array = self._arrays.get((owner, segment))
        if array is not None:
            return array[key]
        return self._rpc("load", owner, segment, key, default, missing_ok)

    def load_many(self, requests: list[tuple[int, str, Hashable]],
                  default: Any = None, missing_ok: bool = False) -> list[Any]:
        if any((owner, segment) in self._arrays for owner, segment, _ in requests):
            return [self.load(owner, segment, key, default=default,
                              missing_ok=missing_ok)
                    for owner, segment, key in requests]
        return self._rpc("load_many", requests, default, missing_ok)

    def store(self, owner: int, segment: str, key: Hashable, value: Any) -> None:
        array = self._arrays.get((owner, segment))
        if array is not None:
            array[key] = value
            return
        self._rpc("store", owner, segment, key, value)

    def store_many(self, requests: list[tuple[int, str, Hashable, Any]]) -> None:
        if any((owner, segment) in self._arrays for owner, segment, _, _ in requests):
            for owner, segment, key, value in requests:
                self.store(owner, segment, key, value)
            return
        self._rpc("store_many", requests)

    def contains(self, owner: int, segment: str, key: Hashable) -> bool:
        return self._rpc("contains", owner, segment, key)

    def apply(self, owner: int, segment: str, fn: Callable[..., Any],
              *args: Any) -> Any:
        return self._rpc("apply", owner, segment, fn, args)

    def apply_many(self, requests: list[tuple[int, str, Callable[..., Any], tuple]]
                   ) -> list[Any]:
        return self._rpc("apply_many", requests)

    def fetch_add(self, owner: int, segment: str, index: int, amount: int = 1) -> int:
        # Always via the server: atomicity across processes.
        return self._rpc("fetch_add", owner, segment, index, amount)

    def wire_nbytes(self, owner: int, segment: str, key: Hashable,
                    value: Any) -> int:
        from repro.pgas.runtime import estimate_nbytes
        array = self._arrays.get((owner, segment))
        if array is not None:
            return array.index_nbytes(key)
        return estimate_nbytes(value)

    # -- segment addressing ---------------------------------------------------

    def segment(self, rank: int, segment: str) -> Any:
        array = self._arrays.get((rank, segment))
        if array is not None:
            return array
        kind = self._rpc("kind", rank, segment)
        if kind == "array":
            return self._attach_array(rank, segment)
        if kind == "kv":
            return _KVProxy(self, rank, segment)
        raise TypeError(
            f"segment {segment!r} on rank {rank} holds a shared object that is "
            "not directly addressable from a worker process; access it through "
            "heap.apply(...)")

    def _attach_array(self, rank: int, segment: str) -> SharedArray:
        name, size, dtype = self._rpc("array_desc", rank, segment)
        if name is None:
            array = SharedArray(size, dtype=dtype)
        else:
            shm = shared_memory.SharedMemory(name=name)
            self._attached_shm.append(shm)
            array = SharedArray.from_buffer(size, dtype, shm.buf)
        self._arrays[(rank, segment)] = array
        return array

    # -- allocation -----------------------------------------------------------

    def alloc(self, rank: int, segment: str, obj: Any) -> Any:
        if isinstance(obj, SharedArray):
            self._rpc("alloc_array", rank, segment, len(obj), obj.dtype_name,
                      obj.data.copy())
            return self._attach_array(rank, segment)
        kind = self._rpc("alloc", rank, segment, obj)
        if kind == "kv":
            return _KVProxy(self, rank, segment)
        return obj

    def alloc_all(self, segment: str, factory) -> list[Any]:
        return [self.alloc(rank, segment, factory(rank))
                for rank in range(self._n_ranks)]

    def has_segment(self, rank: int, segment: str) -> bool:
        if any(key == (rank, segment) for key in self._arrays):
            return True
        return self._rpc("has_segment", rank, segment)

    def segments_named(self, segment: str) -> list[Any]:
        return [self.segment(rank, segment) for rank in range(self._n_ranks)]

    # -- GlobalPointer helpers (API parity) -----------------------------------

    def read(self, ptr) -> Any:
        return self.load(ptr.owner, ptr.segment, ptr.key)

    def write(self, ptr, value: Any) -> None:
        self.store(ptr.owner, ptr.segment, ptr.key, value)


# ---------------------------------------------------------------------------
# Driver-side heap server
# ---------------------------------------------------------------------------

class _HeapServer:
    """Serves the authoritative heap to worker processes, one thread per rank."""

    def __init__(self, heap: SharedHeap,
                 shm_registry: dict[tuple[int, str], shared_memory.SharedMemory],
                 promoted: list[tuple[SharedArray, shared_memory.SharedMemory]]) -> None:
        self.heap = heap
        self.shm_registry = shm_registry
        self.promoted = promoted
        self._alloc_lock = threading.Lock()

    def dispatch(self, message: tuple) -> Any:
        op = message[0]
        heap = self.heap
        if op == "load":
            _, owner, segment, key, default, missing_ok = message
            return heap.load(owner, segment, key, default=default,
                             missing_ok=missing_ok)
        if op == "load_many":
            _, requests, default, missing_ok = message
            return heap.load_many(requests, default=default, missing_ok=missing_ok)
        if op == "store":
            _, owner, segment, key, value = message
            return heap.store(owner, segment, key, value)
        if op == "store_many":
            return heap.store_many(message[1])
        if op == "contains":
            _, owner, segment, key = message
            return heap.contains(owner, segment, key)
        if op == "apply":
            _, owner, segment, fn, args = message
            return heap.apply(owner, segment, fn, *args)
        if op == "apply_many":
            return heap.apply_many(message[1])
        if op == "fetch_add":
            _, owner, segment, index, amount = message
            return heap.fetch_add(owner, segment, index, amount)
        if op == "kind":
            _, rank, segment = message
            return _segment_kind(heap.segment(rank, segment))
        if op == "array_desc":
            _, rank, segment = message
            array = heap.segment(rank, segment)
            if not isinstance(array, SharedArray):
                raise TypeError(f"segment {segment!r} on rank {rank} is not a "
                                "SharedArray")
            shm = self.shm_registry.get((rank, segment))
            return (shm.name if shm is not None else None, len(array),
                    array.dtype_name)
        if op == "alloc":
            _, rank, segment, obj = message
            with self._alloc_lock:
                heap.alloc(rank, segment, obj)
            return _segment_kind(obj)
        if op == "alloc_array":
            _, rank, segment, size, dtype, initial = message
            array = SharedArray(size, dtype=dtype)
            if initial is not None and size:
                array.data[:] = initial
            with self._alloc_lock:
                if array.nbytes > 0:
                    shm = shared_memory.SharedMemory(create=True,
                                                     size=array.nbytes)
                    array.rebind(shm.buf)
                    self.shm_registry[(rank, segment)] = shm
                    self.promoted.append((array, shm))
                heap.alloc(rank, segment, array)
            return None
        if op == "has_segment":
            _, rank, segment = message
            return heap.has_segment(rank, segment)
        raise ValueError(f"unknown heap-server operation {op!r}")

    def serve(self, rank: int, conn, outcomes: list, failures: list[RankFailure],
              failures_lock: threading.Lock) -> None:
        """Serve one rank's channel until it reports done (or dies)."""
        while True:
            try:
                message = conn.recv()
            except EOFError:
                if outcomes[rank] is None:
                    with failures_lock:
                        failures.append(RankFailure(
                            rank=rank,
                            error=RuntimeError(
                                f"rank {rank} worker process exited without "
                                "reporting a result")))
                return
            op = message[0]
            if op == "done":
                outcomes[rank] = message[1]
                return
            if op == "rank_error":
                _, error, tb, is_barrier = message
                with failures_lock:
                    failures.append(RankFailure(rank=rank, error=error,
                                                traceback=tb,
                                                is_barrier=is_barrier))
                return
            try:
                reply = ("ok", self.dispatch(message))
            except BaseException as exc:  # noqa: BLE001 - shipped to worker
                reply = ("err", exc)
            try:
                conn.send(reply)
            except Exception:
                # Unpicklable payload or broken pipe: degrade gracefully.
                try:
                    conn.send(("err", RuntimeError(
                        f"heap server could not ship the reply for {op!r}")))
                except Exception:
                    return


def _segment_kind(obj: Any) -> str:
    if isinstance(obj, SharedArray):
        return "array"
    if isinstance(obj, dict):
        return "kv"
    return "object"


# ---------------------------------------------------------------------------
# Worker process entry point
# ---------------------------------------------------------------------------

def _worker_main(rank: int, conn, barrier, runtime, fn, args) -> None:
    """Body of one forked rank process (fork start method: nothing pickles)."""
    try:
        client = _WorkerHeap(conn, runtime.heap)
        runtime.heap = client
        ctx = runtime.contexts[rank]
        ctx.heap = client
        wait = barrier_waiter(barrier, None)
        ctx._barrier_impl = wait
        stats_before = ctx.stats.copy()
        gather_before = {name: obj.gather_state()
                         for name, obj in runtime.gatherables.items()}
        run = drive_rank(ctx, fn, args, wait)
        payload = {
            "result": run.result,
            "marks": run.marks,
            "start_snapshot": run.start_snapshot,
            "start_wall": run.start_wall,
            "final_snapshot": run.final_snapshot,
            "final_wall": run.final_wall,
            "is_generator": run.is_generator,
            "stats_delta": ctx.stats.delta(stats_before),
            "gather": {name: (gather_before[name], obj.gather_state())
                       for name, obj in runtime.gatherables.items()},
        }
        conn.send(("done", payload))
    except BaseException as exc:  # noqa: BLE001 - shipped to the driver
        try:
            barrier.abort()
        except Exception:
            pass
        is_barrier = isinstance(exc, threading.BrokenBarrierError)
        tb = traceback.format_exc()
        try:
            conn.send(("rank_error", exc, tb, is_barrier))
        except Exception:
            try:
                conn.send(("rank_error", RuntimeError(f"{type(exc).__name__}: {exc}"),
                           tb, is_barrier))
            except Exception:
                pass
    finally:
        try:
            conn.close()
        finally:
            # Skip inherited atexit machinery (pytest capture, coverage, ...):
            # everything worth flushing went over the pipe.
            os._exit(0)


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------

def _promote_arrays(heap: SharedHeap,
                    registry: dict[tuple[int, str], shared_memory.SharedMemory],
                    promoted: list[tuple[SharedArray, shared_memory.SharedMemory]]
                    | None = None
                    ) -> list[tuple[SharedArray, shared_memory.SharedMemory]]:
    """Rebind every SharedArray segment onto multiprocessing shared memory.

    Segments already present in *registry* (promoted by an earlier invocation
    of a resident session) are left bound; only newcomers are promoted, so a
    long-lived serving session pays the promotion cost once per array, not
    once per request.
    """
    if promoted is None:
        promoted = []
    for rank, name, obj in heap.iter_segments():
        if (isinstance(obj, SharedArray) and obj.nbytes > 0
                and (rank, name) not in registry):
            shm = shared_memory.SharedMemory(create=True, size=obj.nbytes)
            obj.rebind(shm.buf)
            registry[(rank, name)] = shm
            promoted.append((obj, shm))
    return promoted


def _demote_arrays(promoted: list[tuple[SharedArray, shared_memory.SharedMemory]]
                   ) -> None:
    """Copy promoted arrays back to private memory and release the blocks."""
    for array, shm in promoted:
        try:
            array.unbind()
        finally:
            try:
                shm.close()
                shm.unlink()
            except (FileNotFoundError, BufferError):  # pragma: no cover
                pass


class _ResidentHeapSession(BackendSession):
    """Keeps the shared-memory heap promotions mapped between invocations.

    Worker ranks are still delivered by ``fork`` per invocation (fork *is*
    the mechanism that hands the resident driver state -- index, read sets,
    closures -- to the ranks without pickling), but the expensive part of the
    per-invocation setup, promoting every :class:`SharedArray` segment into
    ``multiprocessing.shared_memory`` and copying it back afterwards, happens
    once per session: the authoritative heap stays resident in shared memory
    until the session closes.
    """

    def __init__(self, runtime) -> None:
        self._runtime = runtime
        self.registry: dict[tuple[int, str], shared_memory.SharedMemory] = {}
        self.promoted: list[tuple[SharedArray, shared_memory.SharedMemory]] = []
        self._closed = False
        _promote_arrays(runtime.heap, self.registry, self.promoted)
        runtime._process_session = self

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        _demote_arrays(self.promoted)
        self.promoted.clear()
        self.registry.clear()
        if getattr(self._runtime, "_process_session", None) is self:
            self._runtime._process_session = None


class ProcessBackend(ExecutionBackend):
    """Runs an SPMD function on one forked OS process per rank."""

    name = "process"

    def __init__(self, timeout: float | None = 600.0,
                 barrier_timeout: float | None = 120.0) -> None:
        self.timeout = timeout
        self.barrier_timeout = barrier_timeout

    def open_session(self, runtime) -> _ResidentHeapSession:
        """Keep the heap's shared-memory promotions resident on *runtime*."""
        return _ResidentHeapSession(runtime)

    def execute(self, runtime, fn: Callable[..., Any], args: tuple,
                phase_name: str | None = None,
                label: str | None = None) -> list[Any]:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise BackendUnavailableError(
                "the process backend requires the 'fork' start method, which "
                "this platform does not provide")
        mp_ctx = multiprocessing.get_context("fork")
        n = runtime.n_ranks
        resident = getattr(runtime, "_process_session", None)
        if resident is not None and not resident.closed:
            shm_registry = resident.registry
            promoted = _promote_arrays(runtime.heap, shm_registry,
                                       resident.promoted)
        else:
            resident = None
            shm_registry = {}
            promoted = _promote_arrays(runtime.heap, shm_registry)
        outcomes: list[dict | None] = [None] * n
        failures: list[RankFailure] = []
        failures_lock = threading.Lock()
        processes: list[Any] = []
        parent_conns: list[Any] = []
        try:
            barrier = mp_ctx.Barrier(n, timeout=self.barrier_timeout)
            pipes = [mp_ctx.Pipe() for _ in range(n)]
            for rank in range(n):
                processes.append(mp_ctx.Process(
                    target=_worker_main,
                    args=(rank, pipes[rank][1], barrier, runtime, fn, args),
                    daemon=True))
            for process in processes:
                process.start()
            for parent_conn, child_conn in pipes:
                child_conn.close()
                parent_conns.append(parent_conn)
            server = _HeapServer(runtime.heap, shm_registry, promoted)
            threads = [threading.Thread(
                target=server.serve,
                args=(rank, parent_conns[rank], outcomes, failures, failures_lock),
                daemon=True) for rank in range(n)]
            for thread in threads:
                thread.start()
            deadline = (time.monotonic() + self.timeout
                        if self.timeout is not None else None)
            for thread in threads:
                remaining = (None if deadline is None
                             else max(0.0, deadline - time.monotonic()))
                thread.join(timeout=remaining)
            if any(thread.is_alive() for thread in threads):
                try:
                    barrier.abort()
                except Exception:
                    pass
                raise TimeoutError(
                    f"SPMD rank did not finish within the {self.name} backend "
                    f"timeout ({self.timeout}s)"
                    + (f" while running {label!r}" if label else ""))
            for process in processes:
                process.join(timeout=10.0)
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            for conn in parent_conns:
                conn.close()
            if resident is None:
                _demote_arrays(promoted)
        raise_rank_failures(failures, self.name, label=label)
        missing = [rank for rank, outcome in enumerate(outcomes)
                   if outcome is None]
        if missing:
            raise RuntimeError(
                f"ranks {missing} exited without reporting a result under the "
                f"{self.name} backend")
        return self._merge(runtime, fn, outcomes, phase_name)

    def _merge(self, runtime, fn, outcomes: list[dict],
               phase_name: str | None) -> list[Any]:
        """Fold worker results, clocks, stats and gatherables into the driver."""
        runs: list[RankRun] = []
        for rank, outcome in enumerate(outcomes):
            ctx = runtime.contexts[rank]
            work = outcome["final_snapshot"] - outcome["start_snapshot"]
            ctx.clock.charge_compute(work.compute)
            ctx.clock.charge_comm(work.comm)
            ctx.clock.charge_io(work.io)
            ctx.stats = ctx.stats.merge(outcome["stats_delta"])
            runs.append(RankRun(
                result=outcome["result"], marks=outcome["marks"],
                start_snapshot=outcome["start_snapshot"],
                start_wall=outcome["start_wall"],
                final_snapshot=outcome["final_snapshot"],
                final_wall=outcome["final_wall"],
                is_generator=outcome["is_generator"]))
        fallback = phase_name or getattr(fn, "__name__", "phase")
        specs = assemble_phase_specs(runs, fallback)
        replay_barriers(runtime, runs, specs)
        for name, obj in runtime.gatherables.items():
            pairs = [outcome["gather"][name] for outcome in outcomes
                     if name in outcome["gather"]]
            if pairs:
                obj.absorb_states(pairs)
        return [run.result for run in runs]
