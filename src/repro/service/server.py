"""The alignment service's socket server (``meraligner serve``).

A deliberately small, line-oriented protocol over TCP -- one command per
request, every response prefixed with a status line so clients never have to
guess payload boundaries:

``ALIGN <n_reads>`` followed by ``4 * n_reads`` FASTQ lines
    Align the reads through the scheduler; responds ``OK <n_bytes>`` followed
    by exactly *n_bytes* of SAM text (header + records), byte-identical to
    what ``meraligner align`` writes for the same reads.
``PAIRED <n_reads>`` followed by ``4 * n_reads`` interleaved FASTQ lines
    Paired-end alignment: *n_reads* must be even and the records interleaved
    (R1, R2, R1, R2, ...); responds with flag-complete paired SAM,
    byte-identical to ``meraligner align --paired`` on the same reads.
``COUNT <n_reads>`` / ``SCREEN <n_reads>`` followed by FASTQ lines
    The plan-built workloads: respond with the seed-frequency histogram TSV
    (``count``) or the per-read exact-match hit/miss TSV (``screen``),
    byte-identical to the offline ``meraligner count`` / ``meraligner
    screen`` output for the same reads.
``STATS``
    Responds ``OK <n_bytes>`` + a JSON document: the service-level scheduler
    statistics (requests, p50/p95/p99 modelled latency, batch occupancy) and
    the session's index summary -- the machine-readable twin of
    ``--json-report``.
``METRICS`` (also ``METRICS PROM`` / ``METRICS ?format=prom``)
    The unified observability snapshot: every series of the service's
    :class:`~repro.obs.MetricsRegistry` (scheduler, session, backend and
    server instruments) plus the service stats, session summary, cumulative
    communication counters and cache statistics, as one JSON document.  The
    ``PROM`` form responds with Prometheus text exposition instead.
``PING``
    Responds ``OK 0`` (used for readiness probes).
``SHUTDOWN``
    Responds ``OK 0``, then shuts the server down cleanly.

When the server fronts an :class:`~repro.gateway.AlignmentGateway` (the
default when started through ``api.serve`` / ``meraligner serve``), the
query verbs additionally accept ``INDEX=<name>`` and ``TENANT=<name>``
option tokens after the read count (``ALIGN 8 INDEX=refb TENANT=alice``),
three admin verbs manage the resident indices:

``INDICES``
    Responds with a JSON document listing every resident index (heap
    bytes, fingerprint, budget state).
``REGISTER <name> <fasta-path>``
    Builds and registers a named resident index from a server-side FASTA
    path (LRU-evicting unpinned indices past the heap budget); responds
    with the new index's JSON summary.
``EVICT <name>``
    Evicts a named index (the pinned default index refuses); ``OK 0``.

and a full pending queue answers ``BUSY <message>`` -- an explicit
rejection the client should retry, never a silent drop.

Malformed input gets ``ERR <message>`` and the connection stays usable.
Connections may issue any number of commands; the server is a
``ThreadingTCPServer``, so many clients can stream requests concurrently --
the scheduler coalesces them into micro-batches.
"""

from __future__ import annotations

import json
import socketserver
import threading
from dataclasses import asdict

from repro.gateway.admission import GatewayBusyError
from repro.io.fastq import FastqRecord
from repro.service.scheduler import RequestScheduler


class _CountingReader:
    """Wraps the handler's binary read file, tallying bytes into a counter."""

    def __init__(self, raw, counter) -> None:
        self._raw = raw
        self._counter = counter

    def readline(self, *args):
        data = self._raw.readline(*args)
        self._counter.inc(len(data))
        return data

    def read(self, *args):
        data = self._raw.read(*args)
        self._counter.inc(len(data))
        return data


class ProtocolError(ValueError):
    """A malformed client command (reported as ``ERR``, not a disconnect)."""


def read_fastq_payload(rfile, n_reads: int) -> list[FastqRecord]:
    """Read and parse ``4 * n_reads`` FASTQ lines from a binary stream.

    The whole payload is consumed from the stream *before* validation, so a
    malformed record never leaves unread payload lines behind to be
    misinterpreted as commands -- the connection stays usable after an
    ``ERR`` reply (a truncated stream is the one unrecoverable case).
    """
    lines: list[str] = []
    for _ in range(4 * n_reads):
        line = rfile.readline()
        if not line:
            raise ProtocolError(
                f"truncated FASTQ payload ({len(lines)} of {4 * n_reads} "
                "lines received)")
        lines.append(line.decode("ascii", errors="replace").rstrip("\r\n"))
    records: list[FastqRecord] = []
    for index in range(n_reads):
        header, sequence, separator, quality = lines[4 * index:4 * index + 4]
        if not header.startswith("@") or not header[1:].split():
            raise ProtocolError(f"malformed FASTQ header: {header!r}")
        if not separator.startswith("+"):
            raise ProtocolError(f"malformed FASTQ separator: {separator!r}")
        if len(sequence) != len(quality):
            raise ProtocolError(
                f"sequence/quality length mismatch for {header!r}")
        records.append(FastqRecord(name=header[1:].split()[0],
                                   sequence=sequence.upper(),
                                   quality=quality))
    return records


def fastq_payload(reads) -> bytes:
    """Serialize reads (FastqRecord/ReadRecord) as FASTQ wire bytes."""
    chunks = []
    for read in reads:
        quality = getattr(read, "quality", "") or "I" * len(read.sequence)
        chunks.append(f"@{read.name}\n{read.sequence}\n+\n{quality}\n")
    return "".join(chunks).encode("ascii")


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: a loop of command lines.

    ``self.server`` is the underlying TCP server; the scheduler, stats and
    shutdown hooks are attached to it by :class:`AlignmentServer`.
    """

    def _reply(self, payload: bytes = b"") -> None:
        header = f"OK {len(payload)}\n".encode("ascii")
        self.wfile.write(header)
        if payload:
            self.wfile.write(payload)
        self.wfile.flush()
        self.server.metrics.counter("server_bytes_out_total").inc(
            len(header) + len(payload))

    def _error(self, message: str) -> None:
        # UTF-8, not ASCII: exception messages embed user-controlled text
        # (file paths, index names); an encoding error here would kill the
        # connection instead of reporting the actual problem.  Newlines are
        # flattened so the message cannot break the line protocol.
        message = " ".join(str(message).splitlines()) or "server error"
        line = f"ERR {message}\n".encode("utf-8", errors="replace")
        self.wfile.write(line)
        self.wfile.flush()
        self.server.metrics.counter("server_bytes_out_total").inc(len(line))

    def _busy(self, message: str) -> None:
        """The explicit admission rejection: ``BUSY``, never a drop."""
        message = " ".join(str(message).splitlines()) or "server busy"
        line = f"BUSY {message}\n".encode("utf-8", errors="replace")
        self.wfile.write(line)
        self.wfile.flush()
        self.server.metrics.counter("server_bytes_out_total").inc(len(line))

    def handle(self) -> None:
        metrics = self.server.metrics
        metrics.counter("server_connections_total").inc()
        active = metrics.gauge("server_active_connections")
        active.add(1)
        try:
            self._command_loop(metrics)
        finally:
            active.add(-1)

    def _require_gateway(self, what: str):
        gateway = self.server.gateway
        if gateway is None:
            raise ProtocolError(
                f"{what} requires a gateway-backed server "
                "(start it through api.serve / meraligner serve)")
        return gateway

    @staticmethod
    def _query_options(verb: str, parts: list[str]) -> tuple[str | None,
                                                             str | None]:
        """Parse the optional ``INDEX=`` / ``TENANT=`` tokens of a query."""
        index = tenant = None
        for token in parts:
            key, sep, value = token.partition("=")
            if not sep or not value:
                raise ProtocolError(
                    f"malformed {verb} option {token!r} "
                    "(expected INDEX=<name> or TENANT=<name>)")
            key = key.upper()
            if key == "INDEX":
                index = value
            elif key == "TENANT":
                tenant = value
            else:
                raise ProtocolError(
                    f"unknown {verb} option {token!r} "
                    "(supported: INDEX=, TENANT=)")
        return index, tenant

    def _command_loop(self, metrics) -> None:
        rfile = _CountingReader(self.rfile,
                                metrics.counter("server_bytes_in_total"))
        while True:
            line = rfile.readline()
            if not line:
                return
            command = line.decode("utf-8", errors="replace").strip()
            if not command:
                continue
            verb = command.split()[0].upper()
            metrics.counter("server_requests_total", verb=verb).inc()
            try:
                if verb == "PING" and command.upper() == "PING":
                    self._reply()
                elif verb == "STATS" and command.upper() == "STATS":
                    self._reply(json.dumps(self.server.stats_json(), indent=2,
                                           sort_keys=True).encode("utf-8"))
                elif verb == "METRICS":
                    argument = command.split(None, 1)[1:] or [""]
                    fmt = argument[0].strip().upper()
                    if fmt in ("PROM", "?FORMAT=PROM"):
                        self._reply(self.server.metrics_text().encode("utf-8"))
                    elif fmt == "":
                        self._reply(json.dumps(self.server.metrics_json(),
                                               indent=2, sort_keys=True,
                                               ).encode("utf-8"))
                    else:
                        raise ProtocolError(
                            "usage: METRICS [PROM] (got METRICS "
                            f"{argument[0].strip()!r})")
                elif verb == "SHUTDOWN" and command.upper() == "SHUTDOWN":
                    self._reply()
                    self.server.request_shutdown()
                    return
                elif verb in ("ALIGN", "COUNT", "SCREEN", "PAIRED"):
                    parts = command.split()
                    if len(parts) < 2 or not parts[1].isdigit():
                        raise ProtocolError(
                            f"usage: {verb} <n_reads> "
                            "[INDEX=<name>] [TENANT=<name>]")
                    n_reads = int(parts[1])
                    index, tenant = self._query_options(verb, parts[2:])
                    if verb == "PAIRED" and n_reads % 2 != 0:
                        raise ProtocolError(
                            "PAIRED needs an even interleaved read count, "
                            f"got {n_reads}")
                    reads = read_fastq_payload(rfile, n_reads)
                    records = [record.to_read() for record in reads]
                    gateway = self.server.gateway
                    if gateway is not None:
                        response = gateway.request(
                            records, workload=verb.lower(), index=index,
                            tenant=tenant,
                            timeout=self.server.request_timeout)
                        text = response.text
                    else:
                        if index is not None or tenant is not None:
                            raise ProtocolError(
                                "INDEX=/TENANT= options require a "
                                "gateway-backed server")
                        result = self.server.scheduler.request(
                            records, workload=verb.lower(),
                            timeout=self.server.request_timeout)
                        text = result.text
                    self._reply(text.encode("ascii"))
                elif verb == "INDICES" and command.upper() == "INDICES":
                    gateway = self._require_gateway("INDICES")
                    self._reply(json.dumps(gateway.indices_json(), indent=2,
                                           sort_keys=True).encode("utf-8"))
                elif verb == "REGISTER":
                    # split at most twice: the FASTA path may contain spaces.
                    parts = command.split(None, 2)
                    if len(parts) != 3:
                        raise ProtocolError("usage: REGISTER <name> "
                                            "<fasta-path>")
                    gateway = self._require_gateway("REGISTER")
                    summary = gateway.register(parts[1], parts[2].strip())
                    self._reply(json.dumps(summary, indent=2,
                                           sort_keys=True).encode("utf-8"))
                elif verb == "EVICT":
                    parts = command.split()
                    if len(parts) != 2:
                        raise ProtocolError("usage: EVICT <name>")
                    gateway = self._require_gateway("EVICT")
                    gateway.evict(parts[1])
                    self._reply()
                else:
                    raise ProtocolError(f"unknown command {command.split()[0]!r}")
            except ProtocolError as exc:
                metrics.counter("server_errors_total", verb=verb).inc()
                self._error(str(exc))
            except GatewayBusyError as exc:
                metrics.counter("server_busy_total", verb=verb).inc()
                self._busy(str(exc))
            except BrokenPipeError:
                metrics.counter("server_errors_total", verb=verb).inc()
                return
            except Exception as exc:  # noqa: BLE001 - reported to the client
                metrics.counter("server_errors_total", verb=verb).inc()
                self._error(f"{type(exc).__name__}: {exc}")


class AlignmentServer:
    """TCP front end streaming SAM responses from a request scheduler."""

    def __init__(self, scheduler: RequestScheduler | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 request_timeout: float | None = 300.0,
                 gateway=None) -> None:
        from repro.obs.registry import MetricsRegistry
        if scheduler is None:
            if gateway is None:
                raise ValueError("pass a scheduler, a gateway, or both")
            scheduler = gateway.default_scheduler
        self.scheduler = scheduler
        self.gateway = gateway
        self.request_timeout = request_timeout
        # Record into the scheduler's registry so one snapshot spans every
        # layer; a bare scheduler-less future server would still get one.
        self.metrics = getattr(scheduler, "metrics", None) or MetricsRegistry()
        self._shutdown_requested = threading.Event()
        self._serving = threading.Event()

        outer = self

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _Handler)
        self._server.scheduler = scheduler
        # StreamRequestHandler reaches the AlignmentServer through the TCP
        # server instance.
        self._server.stats_json = outer.stats_json
        self._server.metrics_json = outer.metrics_json
        self._server.metrics_text = outer.metrics_text
        self._server.metrics = outer.metrics
        self._server.request_shutdown = outer.request_shutdown
        self._server.request_timeout = request_timeout
        self._server.gateway = gateway

    # -- addressing -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` OS-assigned binding)."""
        return self._server.server_address[1]

    # -- stats ----------------------------------------------------------------

    def stats_json(self) -> dict:
        """The ``STATS`` payload: scheduler stats plus session summary.

        A gateway-backed server adds a ``gateway`` section (resident
        indices, result-cache counters, admission state); ``service`` and
        ``session`` always describe the default index, so pre-gateway
        consumers read the document unchanged.
        """
        from repro.core.stats import REPORT_SCHEMA_VERSION
        doc = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "service": self.scheduler.stats().to_json_dict(),
            "session": self.scheduler.session.to_json_dict(),
        }
        if self.gateway is not None:
            doc["gateway"] = self.gateway.stats_json()
        return doc

    def metrics_json(self) -> dict:
        """The ``METRICS`` payload: one snapshot document for the whole stack.

        ``metrics`` is the registry snapshot (scheduler, session, backend and
        server instruments); ``service``/``session`` mirror ``STATS``;
        ``comm`` is the resident runtime's *cumulative* communication
        counters (index build plus every request served so far) and
        ``caches`` the per-node software caches' lifetime statistics --
        the modelled-domain counters unified with the wall-clock ones.
        """
        from repro.core.stats import REPORT_SCHEMA_VERSION
        session = self.scheduler.session
        prepared = session.prepared
        comm = asdict(prepared.runtime.total_stats)
        comm["time_by_category"] = dict(sorted(
            comm["time_by_category"].items()))
        caches = {}
        for cache in (prepared.seed_cache, prepared.target_cache):
            if cache is not None:
                caches[cache.name] = asdict(cache.total_stats())
        doc = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "metrics": self.metrics.snapshot(),
            "service": self.scheduler.stats().to_json_dict(),
            "session": session.to_json_dict(),
            "comm": comm,
            "caches": caches,
        }
        # Additive, like the PR-5/PR-7 counter additions: the schema version
        # stays put because every existing key keeps its meaning (comm and
        # caches remain the default index's).
        if self.gateway is not None:
            doc["gateway"] = self.gateway.stats_json()
        return doc

    def metrics_text(self) -> str:
        """The ``METRICS PROM`` payload: Prometheus text exposition."""
        return self.metrics.to_prometheus()

    # -- lifecycle ------------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or a client ``SHUTDOWN`` command)."""
        self._serving.set()
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._serving.clear()

    def request_shutdown(self) -> None:
        """Trigger shutdown from a handler thread without deadlocking."""
        if self._shutdown_requested.is_set():
            return
        self._shutdown_requested.set()
        # shutdown() blocks until serve_forever exits, so it must not run on
        # the handler thread that carried the SHUTDOWN command.
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def shutdown(self) -> None:
        """Stop the serve loop and close the listening socket (idempotent)."""
        self._shutdown_requested.set()
        if self._serving.is_set():
            self._server.shutdown()
        self._server.server_close()

    def close(self) -> None:
        self.shutdown()

    def __enter__(self) -> "AlignmentServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
