"""The alignment service's socket server (``meraligner serve``).

A deliberately small, line-oriented protocol over TCP -- one command per
request, every response prefixed with a status line so clients never have to
guess payload boundaries:

``ALIGN <n_reads>`` followed by ``4 * n_reads`` FASTQ lines
    Align the reads through the scheduler; responds ``OK <n_bytes>`` followed
    by exactly *n_bytes* of SAM text (header + records), byte-identical to
    what ``meraligner align`` writes for the same reads.
``PAIRED <n_reads>`` followed by ``4 * n_reads`` interleaved FASTQ lines
    Paired-end alignment: *n_reads* must be even and the records interleaved
    (R1, R2, R1, R2, ...); responds with flag-complete paired SAM,
    byte-identical to ``meraligner align --paired`` on the same reads.
``COUNT <n_reads>`` / ``SCREEN <n_reads>`` followed by FASTQ lines
    The plan-built workloads: respond with the seed-frequency histogram TSV
    (``count``) or the per-read exact-match hit/miss TSV (``screen``),
    byte-identical to the offline ``meraligner count`` / ``meraligner
    screen`` output for the same reads.
``STATS``
    Responds ``OK <n_bytes>`` + a JSON document: the service-level scheduler
    statistics (requests, p50/p95/p99 modelled latency, batch occupancy) and
    the session's index summary -- the machine-readable twin of
    ``--json-report``.
``METRICS`` (also ``METRICS PROM`` / ``METRICS ?format=prom``)
    The unified observability snapshot: every series of the service's
    :class:`~repro.obs.MetricsRegistry` (scheduler, session, backend and
    server instruments) plus the service stats, session summary, cumulative
    communication counters and cache statistics, as one JSON document.  The
    ``PROM`` form responds with Prometheus text exposition instead.
``ALIGNSTREAM`` / ``PAIREDSTREAM`` / ``COUNTSTREAM`` / ``SCREENSTREAM``
    The streaming query verbs (``docs/streaming.md``): the request body is
    a sequence of ``CHUNK <n_reads>`` frames (each followed by ``4 *
    n_reads`` FASTQ lines) terminated by a bare ``END`` line.  The server
    parses chunks into a bounded channel (capacity
    ``stream_channel_capacity``; a slow aligner backpressures the socket),
    keeps up to ``stream_max_inflight`` chunks submitted so the scheduler
    can coalesce them, and replies with one ``CHUNK <n_bytes>`` + payload
    frame per output part, then ``DONE <n_chunks> <n_reads>``.  For
    ``ALIGNSTREAM``/``PAIREDSTREAM`` the first part carries the SAM header
    and the concatenated parts are byte-identical to the one-shot ``ALIGN``
    / ``PAIRED`` response for the same reads; ``COUNTSTREAM`` /
    ``SCREENSTREAM`` aggregate across chunks and reply with a single final
    TSV frame (their headers summarise the whole run).  A mid-stream
    failure answers ``ERR``/``BUSY`` and closes the connection -- the frame
    protocol is no longer in sync, unlike one-shot verbs.
``PING``
    Responds ``OK 0`` (used for readiness probes).
``SHUTDOWN``
    Responds ``OK 0``, then shuts the server down cleanly.

When the server fronts an :class:`~repro.gateway.AlignmentGateway` (the
default when started through ``api.serve`` / ``meraligner serve``), the
query verbs additionally accept ``INDEX=<name>`` and ``TENANT=<name>``
option tokens after the read count (``ALIGN 8 INDEX=refb TENANT=alice``),
three admin verbs manage the resident indices:

``INDICES``
    Responds with a JSON document listing every resident index (heap
    bytes, fingerprint, budget state).
``REGISTER <name> <fasta-path>``
    Builds and registers a named resident index from a server-side FASTA
    path (LRU-evicting unpinned indices past the heap budget); responds
    with the new index's JSON summary.
``EVICT <name>``
    Evicts a named index (the pinned default index refuses); ``OK 0``.

and a full pending queue answers ``BUSY <message>`` -- an explicit
rejection the client should retry, never a silent drop.

Malformed input gets ``ERR <message>`` and the connection stays usable.
Connections may issue any number of commands; the server is a
``ThreadingTCPServer``, so many clients can stream requests concurrently --
the scheduler coalesces them into micro-batches.
"""

from __future__ import annotations

import json
import socketserver
import threading
from collections import deque
from dataclasses import asdict

from repro.gateway.admission import GatewayBusyError
from repro.io.fastq import FastqRecord
from repro.service.scheduler import RequestScheduler
from repro.stream import BoundedChannel, ChannelClosed

#: Streaming query verbs and the workloads they run.  One handler serves all
#: four; ``count``/``screen`` reply with a single TSV frame at stream end
#: (their headers hold whole-run aggregates), ``align``/``paired`` stream a
#: SAM frame per chunk.
STREAM_VERBS = {
    "ALIGNSTREAM": "align",
    "PAIREDSTREAM": "paired",
    "COUNTSTREAM": "count",
    "SCREENSTREAM": "screen",
}


class _CountingReader:
    """Wraps the handler's binary read file, tallying bytes into a counter."""

    def __init__(self, raw, counter) -> None:
        self._raw = raw
        self._counter = counter

    def readline(self, *args):
        data = self._raw.readline(*args)
        self._counter.inc(len(data))
        return data

    def read(self, *args):
        data = self._raw.read(*args)
        self._counter.inc(len(data))
        return data


class ProtocolError(ValueError):
    """A malformed client command (reported as ``ERR``, not a disconnect)."""


def read_fastq_payload(rfile, n_reads: int) -> list[FastqRecord]:
    """Read and parse ``4 * n_reads`` FASTQ lines from a binary stream.

    The whole payload is consumed from the stream *before* validation, so a
    malformed record never leaves unread payload lines behind to be
    misinterpreted as commands -- the connection stays usable after an
    ``ERR`` reply (a truncated stream is the one unrecoverable case).
    """
    lines: list[str] = []
    for _ in range(4 * n_reads):
        line = rfile.readline()
        if not line:
            raise ProtocolError(
                f"truncated FASTQ payload ({len(lines)} of {4 * n_reads} "
                "lines received)")
        lines.append(line.decode("ascii", errors="replace").rstrip("\r\n"))
    records: list[FastqRecord] = []
    for index in range(n_reads):
        header, sequence, separator, quality = lines[4 * index:4 * index + 4]
        if not header.startswith("@") or not header[1:].split():
            raise ProtocolError(f"malformed FASTQ header: {header!r}")
        if not separator.startswith("+"):
            raise ProtocolError(f"malformed FASTQ separator: {separator!r}")
        if len(sequence) != len(quality):
            raise ProtocolError(
                f"sequence/quality length mismatch for {header!r}")
        records.append(FastqRecord(name=header[1:].split()[0],
                                   sequence=sequence.upper(),
                                   quality=quality))
    return records


def fastq_payload(reads) -> bytes:
    """Serialize reads (FastqRecord/ReadRecord) as FASTQ wire bytes."""
    chunks = []
    for read in reads:
        quality = getattr(read, "quality", "") or "I" * len(read.sequence)
        chunks.append(f"@{read.name}\n{read.sequence}\n+\n{quality}\n")
    return "".join(chunks).encode("ascii")


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: a loop of command lines.

    ``self.server`` is the underlying TCP server; the scheduler, stats and
    shutdown hooks are attached to it by :class:`AlignmentServer`.
    """

    def _reply(self, payload: bytes = b"") -> None:
        header = f"OK {len(payload)}\n".encode("ascii")
        self.wfile.write(header)
        if payload:
            self.wfile.write(payload)
        self.wfile.flush()
        self.server.metrics.counter("server_bytes_out_total").inc(
            len(header) + len(payload))

    def _error(self, message: str) -> None:
        # UTF-8, not ASCII: exception messages embed user-controlled text
        # (file paths, index names); an encoding error here would kill the
        # connection instead of reporting the actual problem.  Newlines are
        # flattened so the message cannot break the line protocol.
        message = " ".join(str(message).splitlines()) or "server error"
        line = f"ERR {message}\n".encode("utf-8", errors="replace")
        self.wfile.write(line)
        self.wfile.flush()
        self.server.metrics.counter("server_bytes_out_total").inc(len(line))

    def _busy(self, message: str) -> None:
        """The explicit admission rejection: ``BUSY``, never a drop."""
        message = " ".join(str(message).splitlines()) or "server busy"
        line = f"BUSY {message}\n".encode("utf-8", errors="replace")
        self.wfile.write(line)
        self.wfile.flush()
        self.server.metrics.counter("server_bytes_out_total").inc(len(line))

    def handle(self) -> None:
        metrics = self.server.metrics
        metrics.counter("server_connections_total").inc()
        active = metrics.gauge("server_active_connections")
        active.add(1)
        try:
            self._command_loop(metrics)
        finally:
            active.add(-1)

    def _require_gateway(self, what: str):
        gateway = self.server.gateway
        if gateway is None:
            raise ProtocolError(
                f"{what} requires a gateway-backed server "
                "(start it through api.serve / meraligner serve)")
        return gateway

    @staticmethod
    def _query_options(verb: str, parts: list[str]) -> tuple[str | None,
                                                             str | None]:
        """Parse the optional ``INDEX=`` / ``TENANT=`` tokens of a query."""
        index = tenant = None
        for token in parts:
            key, sep, value = token.partition("=")
            if not sep or not value:
                raise ProtocolError(
                    f"malformed {verb} option {token!r} "
                    "(expected INDEX=<name> or TENANT=<name>)")
            key = key.upper()
            if key == "INDEX":
                index = value
            elif key == "TENANT":
                tenant = value
            else:
                raise ProtocolError(
                    f"unknown {verb} option {token!r} "
                    "(supported: INDEX=, TENANT=)")
        return index, tenant

    def _handle_stream(self, rfile, verb: str, options: list[str],
                       metrics) -> bool:
        """Serve one ``*STREAM`` request: chunked body in, framed parts out.

        The client sends ``CHUNK <n_reads>`` + FASTQ frames terminated by
        ``END``; a producer thread parses them into a
        :class:`~repro.stream.BoundedChannel` (whose blocking ``put`` is the
        read-ahead bound -- a slow aligner backpressures the socket), while
        this thread keeps up to ``stream_max_inflight`` chunks submitted so
        the scheduler can coalesce them, emitting each result as a
        ``CHUNK <n_bytes>`` frame in order and finally ``DONE <n_chunks>
        <n_reads>``.  Gateway admission running full raises ``BUSY`` at a
        chunk boundary.  Returns False when the connection must close (any
        mid-stream failure: the frame protocol is no longer in sync).
        """
        workload = STREAM_VERBS[verb]
        group = 2 if workload == "paired" else 1
        channel = BoundedChannel(self.server.stream_channel_capacity)
        inflight: deque = deque()
        producer = None
        try:
            index, tenant = self._query_options(verb, options)
            gateway = self.server.gateway
            if gateway is None:
                if index is not None or tenant is not None:
                    raise ProtocolError("INDEX=/TENANT= options require a "
                                        "gateway-backed server")
                session = self.server.scheduler.session
            else:
                from repro.gateway.gateway import DEFAULT_INDEX
                session = gateway.registry.get(index or DEFAULT_INDEX).session

            def produce() -> None:
                try:
                    while True:
                        line = rfile.readline()
                        if not line:
                            raise ProtocolError(
                                "connection closed mid-stream (missing END)")
                        frame = line.decode("utf-8", errors="replace").strip()
                        if not frame:
                            continue
                        tokens = frame.split()
                        if tokens[0].upper() == "END" and len(tokens) == 1:
                            channel.close()
                            return
                        if (tokens[0].upper() != "CHUNK" or len(tokens) != 2
                                or not tokens[1].isdigit()):
                            raise ProtocolError(
                                "expected CHUNK <n_reads> or END, got "
                                f"{frame!r}")
                        n_reads = int(tokens[1])
                        if group == 2 and n_reads % 2 != 0:
                            raise ProtocolError(
                                f"{verb} chunks need an even interleaved "
                                f"read count, got {n_reads}")
                        records = read_fastq_payload(rfile, n_reads)
                        channel.put([record.to_read() for record in records])
                except ChannelClosed:
                    pass  # consumer aborted; drop the rest of the stream
                except BaseException as exc:  # noqa: BLE001 - forwarded
                    channel.fail(exc)

            producer = threading.Thread(target=produce, daemon=True,
                                        name="stream-producer")
            producer.start()

            from repro.core.plan import ScreenSummary, SeedCountSummary
            from repro.service.session import merge_stream_outputs
            depth_gauge = metrics.gauge("stream_channel_depth")
            incremental = workload in ("align", "paired")
            header_sent = False
            aggregate = None
            n_chunks = 0
            n_reads_total = 0

            def emit_result(ticket) -> None:
                nonlocal header_sent, aggregate
                result = ticket.result(self.server.request_timeout)
                if incremental:
                    text = session.render_stream_part(
                        workload, result.output,
                        include_header=not header_sent)
                    header_sent = True
                    if text:
                        self._stream_frame(text.encode("ascii"))
                else:
                    aggregate = (result.output if aggregate is None
                                 else merge_stream_outputs(
                                     workload, aggregate, result.output))
                metrics.counter("stream_chunks_total",
                                workload=workload).inc()

            for records in channel:
                depth_gauge.set(channel.depth)
                while len(inflight) >= self.server.stream_max_inflight:
                    emit_result(inflight.popleft())
                if gateway is not None:
                    _entry, ticket = gateway.submit_stream_chunk(
                        records, workload=workload, index=index,
                        tenant=tenant)
                else:
                    ticket = self.server.scheduler.submit(records,
                                                          workload=workload)
                inflight.append(ticket)
                n_chunks += 1
                n_reads_total += len(records)
            while inflight:
                emit_result(inflight.popleft())

            if incremental:
                if not header_sent:
                    self._stream_frame(session.render_stream_part(
                        workload, [], include_header=True).encode("ascii"))
            else:
                if aggregate is None:
                    aggregate = (SeedCountSummary() if workload == "count"
                                 else ScreenSummary(rows=[]))
                self._stream_frame(
                    session.render(workload, aggregate).encode("ascii"))
            done = f"DONE {n_chunks} {n_reads_total}\n".encode("ascii")
            self.wfile.write(done)
            self.wfile.flush()
            metrics.counter("server_bytes_out_total").inc(len(done))
            depth_gauge.set(0)
            metrics.gauge("stream_channel_high_watermark").set(
                channel.high_watermark)
            return True
        except GatewayBusyError as exc:
            metrics.counter("server_busy_total", verb=verb).inc()
            self._busy(str(exc))
            return False
        except BrokenPipeError:
            metrics.counter("server_errors_total", verb=verb).inc()
            return False
        except Exception as exc:  # noqa: BLE001 - reported, then close
            metrics.counter("server_errors_total", verb=verb).inc()
            if isinstance(exc, ProtocolError):
                self._error(str(exc))
            else:
                self._error(f"{type(exc).__name__}: {exc}")
            return False
        finally:
            # Unblock a producer stuck in put() and free admission slots of
            # results never collected (abort paths only).
            channel.close()
            for ticket in inflight:
                release = getattr(ticket, "release", None)
                if release is not None:
                    release()
            if producer is not None:
                producer.join(timeout=5.0)

    def _stream_frame(self, payload: bytes) -> None:
        """One ``CHUNK <n_bytes>`` response frame of a streamed reply."""
        header = f"CHUNK {len(payload)}\n".encode("ascii")
        self.wfile.write(header)
        self.wfile.write(payload)
        self.wfile.flush()
        self.server.metrics.counter("server_bytes_out_total").inc(
            len(header) + len(payload))

    def _command_loop(self, metrics) -> None:
        rfile = _CountingReader(self.rfile,
                                metrics.counter("server_bytes_in_total"))
        while True:
            line = rfile.readline()
            if not line:
                return
            command = line.decode("utf-8", errors="replace").strip()
            if not command:
                continue
            verb = command.split()[0].upper()
            metrics.counter("server_requests_total", verb=verb).inc()
            try:
                if verb == "PING" and command.upper() == "PING":
                    self._reply()
                elif verb == "STATS" and command.upper() == "STATS":
                    self._reply(json.dumps(self.server.stats_json(), indent=2,
                                           sort_keys=True).encode("utf-8"))
                elif verb == "METRICS":
                    argument = command.split(None, 1)[1:] or [""]
                    fmt = argument[0].strip().upper()
                    if fmt in ("PROM", "?FORMAT=PROM"):
                        self._reply(self.server.metrics_text().encode("utf-8"))
                    elif fmt == "":
                        self._reply(json.dumps(self.server.metrics_json(),
                                               indent=2, sort_keys=True,
                                               ).encode("utf-8"))
                    else:
                        raise ProtocolError(
                            "usage: METRICS [PROM] (got METRICS "
                            f"{argument[0].strip()!r})")
                elif verb == "SHUTDOWN" and command.upper() == "SHUTDOWN":
                    self._reply()
                    self.server.request_shutdown()
                    return
                elif verb in ("ALIGN", "COUNT", "SCREEN", "PAIRED"):
                    parts = command.split()
                    if len(parts) < 2 or not parts[1].isdigit():
                        raise ProtocolError(
                            f"usage: {verb} <n_reads> "
                            "[INDEX=<name>] [TENANT=<name>]")
                    n_reads = int(parts[1])
                    index, tenant = self._query_options(verb, parts[2:])
                    if verb == "PAIRED" and n_reads % 2 != 0:
                        raise ProtocolError(
                            "PAIRED needs an even interleaved read count, "
                            f"got {n_reads}")
                    reads = read_fastq_payload(rfile, n_reads)
                    records = [record.to_read() for record in reads]
                    gateway = self.server.gateway
                    if gateway is not None:
                        response = gateway.request(
                            records, workload=verb.lower(), index=index,
                            tenant=tenant,
                            timeout=self.server.request_timeout)
                        text = response.text
                    else:
                        if index is not None or tenant is not None:
                            raise ProtocolError(
                                "INDEX=/TENANT= options require a "
                                "gateway-backed server")
                        result = self.server.scheduler.request(
                            records, workload=verb.lower(),
                            timeout=self.server.request_timeout)
                        text = result.text
                    self._reply(text.encode("ascii"))
                elif verb in STREAM_VERBS:
                    if not self._handle_stream(rfile, verb,
                                               command.split()[1:], metrics):
                        return
                elif verb == "INDICES" and command.upper() == "INDICES":
                    gateway = self._require_gateway("INDICES")
                    self._reply(json.dumps(gateway.indices_json(), indent=2,
                                           sort_keys=True).encode("utf-8"))
                elif verb == "REGISTER":
                    # split at most twice: the FASTA path may contain spaces.
                    parts = command.split(None, 2)
                    if len(parts) != 3:
                        raise ProtocolError("usage: REGISTER <name> "
                                            "<fasta-path>")
                    gateway = self._require_gateway("REGISTER")
                    summary = gateway.register(parts[1], parts[2].strip())
                    self._reply(json.dumps(summary, indent=2,
                                           sort_keys=True).encode("utf-8"))
                elif verb == "EVICT":
                    parts = command.split()
                    if len(parts) != 2:
                        raise ProtocolError("usage: EVICT <name>")
                    gateway = self._require_gateway("EVICT")
                    gateway.evict(parts[1])
                    self._reply()
                else:
                    raise ProtocolError(f"unknown command {command.split()[0]!r}")
            except ProtocolError as exc:
                metrics.counter("server_errors_total", verb=verb).inc()
                self._error(str(exc))
            except GatewayBusyError as exc:
                metrics.counter("server_busy_total", verb=verb).inc()
                self._busy(str(exc))
            except BrokenPipeError:
                metrics.counter("server_errors_total", verb=verb).inc()
                return
            except Exception as exc:  # noqa: BLE001 - reported to the client
                metrics.counter("server_errors_total", verb=verb).inc()
                self._error(f"{type(exc).__name__}: {exc}")


class AlignmentServer:
    """TCP front end streaming SAM responses from a request scheduler."""

    def __init__(self, scheduler: RequestScheduler | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 request_timeout: float | None = 300.0,
                 gateway=None, stream_channel_capacity: int = 8,
                 stream_max_inflight: int = 4) -> None:
        from repro.obs.registry import MetricsRegistry
        if scheduler is None:
            if gateway is None:
                raise ValueError("pass a scheduler, a gateway, or both")
            scheduler = gateway.default_scheduler
        self.scheduler = scheduler
        self.gateway = gateway
        self.request_timeout = request_timeout
        # Record into the scheduler's registry so one snapshot spans every
        # layer; a bare scheduler-less future server would still get one.
        self.metrics = getattr(scheduler, "metrics", None) or MetricsRegistry()
        self._shutdown_requested = threading.Event()
        self._serving = threading.Event()

        outer = self

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _Handler)
        self._server.scheduler = scheduler
        # StreamRequestHandler reaches the AlignmentServer through the TCP
        # server instance.
        self._server.stats_json = outer.stats_json
        self._server.metrics_json = outer.metrics_json
        self._server.metrics_text = outer.metrics_text
        self._server.metrics = outer.metrics
        self._server.request_shutdown = outer.request_shutdown
        self._server.request_timeout = request_timeout
        self._server.gateway = gateway
        # Streaming bounds: at most `capacity` parsed chunks queued (the
        # producer's socket read backpressures beyond that) plus
        # `max_inflight` chunks submitted to the scheduler at once.
        self._server.stream_channel_capacity = stream_channel_capacity
        self._server.stream_max_inflight = stream_max_inflight

    # -- addressing -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` OS-assigned binding)."""
        return self._server.server_address[1]

    # -- stats ----------------------------------------------------------------

    def stats_json(self) -> dict:
        """The ``STATS`` payload: scheduler stats plus session summary.

        A gateway-backed server adds a ``gateway`` section (resident
        indices, result-cache counters, admission state); ``service`` and
        ``session`` always describe the default index, so pre-gateway
        consumers read the document unchanged.
        """
        from repro.core.stats import REPORT_SCHEMA_VERSION
        doc = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "service": self.scheduler.stats().to_json_dict(),
            "session": self.scheduler.session.to_json_dict(),
        }
        if self.gateway is not None:
            doc["gateway"] = self.gateway.stats_json()
        return doc

    def metrics_json(self) -> dict:
        """The ``METRICS`` payload: one snapshot document for the whole stack.

        ``metrics`` is the registry snapshot (scheduler, session, backend and
        server instruments); ``service``/``session`` mirror ``STATS``;
        ``comm`` is the resident runtime's *cumulative* communication
        counters (index build plus every request served so far) and
        ``caches`` the per-node software caches' lifetime statistics --
        the modelled-domain counters unified with the wall-clock ones.
        """
        from repro.core.stats import REPORT_SCHEMA_VERSION
        session = self.scheduler.session
        prepared = session.prepared
        comm = asdict(prepared.runtime.total_stats)
        comm["time_by_category"] = dict(sorted(
            comm["time_by_category"].items()))
        caches = {}
        for cache in (prepared.seed_cache, prepared.target_cache):
            if cache is not None:
                caches[cache.name] = asdict(cache.total_stats())
        doc = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "metrics": self.metrics.snapshot(),
            "service": self.scheduler.stats().to_json_dict(),
            "session": session.to_json_dict(),
            "comm": comm,
            "caches": caches,
        }
        # Additive, like the PR-5/PR-7 counter additions: the schema version
        # stays put because every existing key keeps its meaning (comm and
        # caches remain the default index's).
        if self.gateway is not None:
            doc["gateway"] = self.gateway.stats_json()
        return doc

    def metrics_text(self) -> str:
        """The ``METRICS PROM`` payload: Prometheus text exposition."""
        return self.metrics.to_prometheus()

    # -- lifecycle ------------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or a client ``SHUTDOWN`` command)."""
        self._serving.set()
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._serving.clear()

    def request_shutdown(self) -> None:
        """Trigger shutdown from a handler thread without deadlocking."""
        if self._shutdown_requested.is_set():
            return
        self._shutdown_requested.set()
        # shutdown() blocks until serve_forever exits, so it must not run on
        # the handler thread that carried the SHUTDOWN command.
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def shutdown(self) -> None:
        """Stop the serve loop and close the listening socket (idempotent)."""
        self._shutdown_requested.set()
        if self._serving.is_set():
            self._server.shutdown()
        self._server.server_close()

    def close(self) -> None:
        self.shutdown()

    def __enter__(self) -> "AlignmentServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
