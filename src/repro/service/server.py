"""The alignment service's socket server (``meraligner serve``).

A deliberately small, line-oriented protocol over TCP -- one command per
request, every response prefixed with a status line so clients never have to
guess payload boundaries:

``ALIGN <n_reads>`` followed by ``4 * n_reads`` FASTQ lines
    Align the reads through the scheduler; responds ``OK <n_bytes>`` followed
    by exactly *n_bytes* of SAM text (header + records), byte-identical to
    what ``meraligner align`` writes for the same reads.
``PAIRED <n_reads>`` followed by ``4 * n_reads`` interleaved FASTQ lines
    Paired-end alignment: *n_reads* must be even and the records interleaved
    (R1, R2, R1, R2, ...); responds with flag-complete paired SAM,
    byte-identical to ``meraligner align --paired`` on the same reads.
``COUNT <n_reads>`` / ``SCREEN <n_reads>`` followed by FASTQ lines
    The plan-built workloads: respond with the seed-frequency histogram TSV
    (``count``) or the per-read exact-match hit/miss TSV (``screen``),
    byte-identical to the offline ``meraligner count`` / ``meraligner
    screen`` output for the same reads.
``STATS``
    Responds ``OK <n_bytes>`` + a JSON document: the service-level scheduler
    statistics (requests, p50/p95/p99 modelled latency, batch occupancy) and
    the session's index summary -- the machine-readable twin of
    ``--json-report``.
``METRICS`` (also ``METRICS PROM`` / ``METRICS ?format=prom``)
    The unified observability snapshot: every series of the service's
    :class:`~repro.obs.MetricsRegistry` (scheduler, session, backend and
    server instruments) plus the service stats, session summary, cumulative
    communication counters and cache statistics, as one JSON document.  The
    ``PROM`` form responds with Prometheus text exposition instead.
``PING``
    Responds ``OK 0`` (used for readiness probes).
``SHUTDOWN``
    Responds ``OK 0``, then shuts the server down cleanly.

Malformed input gets ``ERR <message>`` and the connection stays usable.
Connections may issue any number of commands; the server is a
``ThreadingTCPServer``, so many clients can stream requests concurrently --
the scheduler coalesces them into micro-batches.
"""

from __future__ import annotations

import json
import socketserver
import threading
from dataclasses import asdict

from repro.io.fastq import FastqRecord
from repro.service.scheduler import RequestScheduler


class _CountingReader:
    """Wraps the handler's binary read file, tallying bytes into a counter."""

    def __init__(self, raw, counter) -> None:
        self._raw = raw
        self._counter = counter

    def readline(self, *args):
        data = self._raw.readline(*args)
        self._counter.inc(len(data))
        return data

    def read(self, *args):
        data = self._raw.read(*args)
        self._counter.inc(len(data))
        return data


class ProtocolError(ValueError):
    """A malformed client command (reported as ``ERR``, not a disconnect)."""


def read_fastq_payload(rfile, n_reads: int) -> list[FastqRecord]:
    """Read and parse ``4 * n_reads`` FASTQ lines from a binary stream.

    The whole payload is consumed from the stream *before* validation, so a
    malformed record never leaves unread payload lines behind to be
    misinterpreted as commands -- the connection stays usable after an
    ``ERR`` reply (a truncated stream is the one unrecoverable case).
    """
    lines: list[str] = []
    for _ in range(4 * n_reads):
        line = rfile.readline()
        if not line:
            raise ProtocolError(
                f"truncated FASTQ payload ({len(lines)} of {4 * n_reads} "
                "lines received)")
        lines.append(line.decode("ascii", errors="replace").rstrip("\r\n"))
    records: list[FastqRecord] = []
    for index in range(n_reads):
        header, sequence, separator, quality = lines[4 * index:4 * index + 4]
        if not header.startswith("@") or not header[1:].split():
            raise ProtocolError(f"malformed FASTQ header: {header!r}")
        if not separator.startswith("+"):
            raise ProtocolError(f"malformed FASTQ separator: {separator!r}")
        if len(sequence) != len(quality):
            raise ProtocolError(
                f"sequence/quality length mismatch for {header!r}")
        records.append(FastqRecord(name=header[1:].split()[0],
                                   sequence=sequence.upper(),
                                   quality=quality))
    return records


def fastq_payload(reads) -> bytes:
    """Serialize reads (FastqRecord/ReadRecord) as FASTQ wire bytes."""
    chunks = []
    for read in reads:
        quality = getattr(read, "quality", "") or "I" * len(read.sequence)
        chunks.append(f"@{read.name}\n{read.sequence}\n+\n{quality}\n")
    return "".join(chunks).encode("ascii")


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: a loop of command lines.

    ``self.server`` is the underlying TCP server; the scheduler, stats and
    shutdown hooks are attached to it by :class:`AlignmentServer`.
    """

    def _reply(self, payload: bytes = b"") -> None:
        header = f"OK {len(payload)}\n".encode("ascii")
        self.wfile.write(header)
        if payload:
            self.wfile.write(payload)
        self.wfile.flush()
        self.server.metrics.counter("server_bytes_out_total").inc(
            len(header) + len(payload))

    def _error(self, message: str) -> None:
        line = f"ERR {message}\n".encode("ascii")
        self.wfile.write(line)
        self.wfile.flush()
        self.server.metrics.counter("server_bytes_out_total").inc(len(line))

    def handle(self) -> None:
        metrics = self.server.metrics
        metrics.counter("server_connections_total").inc()
        active = metrics.gauge("server_active_connections")
        active.add(1)
        try:
            self._command_loop(metrics)
        finally:
            active.add(-1)

    def _command_loop(self, metrics) -> None:
        rfile = _CountingReader(self.rfile,
                                metrics.counter("server_bytes_in_total"))
        while True:
            line = rfile.readline()
            if not line:
                return
            command = line.decode("ascii", errors="replace").strip()
            if not command:
                continue
            verb = command.split()[0].upper()
            metrics.counter("server_requests_total", verb=verb).inc()
            try:
                if verb == "PING" and command.upper() == "PING":
                    self._reply()
                elif verb == "STATS" and command.upper() == "STATS":
                    self._reply(json.dumps(self.server.stats_json(), indent=2,
                                           sort_keys=True).encode("utf-8"))
                elif verb == "METRICS":
                    argument = command.split(None, 1)[1:] or [""]
                    fmt = argument[0].strip().upper()
                    if fmt in ("PROM", "?FORMAT=PROM"):
                        self._reply(self.server.metrics_text().encode("utf-8"))
                    elif fmt == "":
                        self._reply(json.dumps(self.server.metrics_json(),
                                               indent=2, sort_keys=True,
                                               ).encode("utf-8"))
                    else:
                        raise ProtocolError(
                            "usage: METRICS [PROM] (got METRICS "
                            f"{argument[0].strip()!r})")
                elif verb == "SHUTDOWN" and command.upper() == "SHUTDOWN":
                    self._reply()
                    self.server.request_shutdown()
                    return
                elif verb in ("ALIGN", "COUNT", "SCREEN", "PAIRED"):
                    parts = command.split()
                    if len(parts) != 2 or not parts[1].isdigit():
                        raise ProtocolError(f"usage: {verb} <n_reads>")
                    n_reads = int(parts[1])
                    if verb == "PAIRED" and n_reads % 2 != 0:
                        raise ProtocolError(
                            "PAIRED needs an even interleaved read count, "
                            f"got {n_reads}")
                    reads = read_fastq_payload(rfile, n_reads)
                    result = self.server.scheduler.request(
                        [record.to_read() for record in reads],
                        workload=verb.lower(),
                        timeout=self.server.request_timeout)
                    self._reply(result.text.encode("ascii"))
                else:
                    raise ProtocolError(f"unknown command {command.split()[0]!r}")
            except ProtocolError as exc:
                metrics.counter("server_errors_total", verb=verb).inc()
                self._error(str(exc))
            except BrokenPipeError:
                metrics.counter("server_errors_total", verb=verb).inc()
                return
            except Exception as exc:  # noqa: BLE001 - reported to the client
                metrics.counter("server_errors_total", verb=verb).inc()
                self._error(f"{type(exc).__name__}: {exc}")


class AlignmentServer:
    """TCP front end streaming SAM responses from a request scheduler."""

    def __init__(self, scheduler: RequestScheduler, host: str = "127.0.0.1",
                 port: int = 0, request_timeout: float | None = 300.0) -> None:
        from repro.obs.registry import MetricsRegistry
        self.scheduler = scheduler
        self.request_timeout = request_timeout
        # Record into the scheduler's registry so one snapshot spans every
        # layer; a bare scheduler-less future server would still get one.
        self.metrics = getattr(scheduler, "metrics", None) or MetricsRegistry()
        self._shutdown_requested = threading.Event()
        self._serving = threading.Event()

        outer = self

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _Handler)
        self._server.scheduler = scheduler
        # StreamRequestHandler reaches the AlignmentServer through the TCP
        # server instance.
        self._server.stats_json = outer.stats_json
        self._server.metrics_json = outer.metrics_json
        self._server.metrics_text = outer.metrics_text
        self._server.metrics = outer.metrics
        self._server.request_shutdown = outer.request_shutdown
        self._server.request_timeout = request_timeout

    # -- addressing -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` OS-assigned binding)."""
        return self._server.server_address[1]

    # -- stats ----------------------------------------------------------------

    def stats_json(self) -> dict:
        """The ``STATS`` payload: scheduler stats plus session summary."""
        from repro.core.stats import REPORT_SCHEMA_VERSION
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "service": self.scheduler.stats().to_json_dict(),
            "session": self.scheduler.session.to_json_dict(),
        }

    def metrics_json(self) -> dict:
        """The ``METRICS`` payload: one snapshot document for the whole stack.

        ``metrics`` is the registry snapshot (scheduler, session, backend and
        server instruments); ``service``/``session`` mirror ``STATS``;
        ``comm`` is the resident runtime's *cumulative* communication
        counters (index build plus every request served so far) and
        ``caches`` the per-node software caches' lifetime statistics --
        the modelled-domain counters unified with the wall-clock ones.
        """
        from repro.core.stats import REPORT_SCHEMA_VERSION
        session = self.scheduler.session
        prepared = session.prepared
        comm = asdict(prepared.runtime.total_stats)
        comm["time_by_category"] = dict(sorted(
            comm["time_by_category"].items()))
        caches = {}
        for cache in (prepared.seed_cache, prepared.target_cache):
            if cache is not None:
                caches[cache.name] = asdict(cache.total_stats())
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "metrics": self.metrics.snapshot(),
            "service": self.scheduler.stats().to_json_dict(),
            "session": session.to_json_dict(),
            "comm": comm,
            "caches": caches,
        }

    def metrics_text(self) -> str:
        """The ``METRICS PROM`` payload: Prometheus text exposition."""
        return self.metrics.to_prometheus()

    # -- lifecycle ------------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or a client ``SHUTDOWN`` command)."""
        self._serving.set()
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._serving.clear()

    def request_shutdown(self) -> None:
        """Trigger shutdown from a handler thread without deadlocking."""
        if self._shutdown_requested.is_set():
            return
        self._shutdown_requested.set()
        # shutdown() blocks until serve_forever exits, so it must not run on
        # the handler thread that carried the SHUTDOWN command.
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def shutdown(self) -> None:
        """Stop the serve loop and close the listening socket (idempotent)."""
        self._shutdown_requested.set()
        if self._serving.is_set():
            self._server.shutdown()
        self._server.server_close()

    def close(self) -> None:
        self.shutdown()

    def __enter__(self) -> "AlignmentServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
