"""The alignment service's thread-per-connection socket server.

A deliberately small, line-oriented protocol over TCP -- one command per
request, every response prefixed with a status line so clients never have to
guess payload boundaries:

``ALIGN <n_reads>`` followed by ``4 * n_reads`` FASTQ lines
    Align the reads through the scheduler; responds ``OK <n_bytes>`` followed
    by exactly *n_bytes* of SAM text (header + records), byte-identical to
    what ``meraligner align`` writes for the same reads.
``PAIRED <n_reads>`` followed by ``4 * n_reads`` interleaved FASTQ lines
    Paired-end alignment: *n_reads* must be even and the records interleaved
    (R1, R2, R1, R2, ...); responds with flag-complete paired SAM,
    byte-identical to ``meraligner align --paired`` on the same reads.
``COUNT <n_reads>`` / ``SCREEN <n_reads>`` followed by FASTQ lines
    The plan-built workloads: respond with the seed-frequency histogram TSV
    (``count``) or the per-read exact-match hit/miss TSV (``screen``),
    byte-identical to the offline ``meraligner count`` / ``meraligner
    screen`` output for the same reads.
``STATS``
    Responds ``OK <n_bytes>`` + a JSON document: the service-level scheduler
    statistics (requests, p50/p95/p99 modelled latency, batch occupancy) and
    the session's index summary -- the machine-readable twin of
    ``--json-report``.
``METRICS`` (also ``METRICS PROM`` / ``METRICS ?format=prom``)
    The unified observability snapshot: every series of the service's
    :class:`~repro.obs.MetricsRegistry` (scheduler, session, backend and
    server instruments) plus the service stats, session summary, cumulative
    communication counters and cache statistics, as one JSON document.  The
    ``PROM`` form responds with Prometheus text exposition instead.
``ALIGNSTREAM`` / ``PAIREDSTREAM`` / ``COUNTSTREAM`` / ``SCREENSTREAM``
    The streaming query verbs (``docs/streaming.md``): the request body is
    a sequence of ``CHUNK <n_reads>`` frames (each followed by ``4 *
    n_reads`` FASTQ lines) terminated by a bare ``END`` line.  The server
    parses chunks into a bounded channel (capacity
    ``stream_channel_capacity``; a slow aligner backpressures the socket),
    keeps up to ``stream_max_inflight`` chunks submitted so the scheduler
    can coalesce them, and replies with one ``CHUNK <n_bytes>`` + payload
    frame per output part, then ``DONE <n_chunks> <n_reads>``.  For
    ``ALIGNSTREAM``/``PAIREDSTREAM`` the first part carries the SAM header
    and the concatenated parts are byte-identical to the one-shot ``ALIGN``
    / ``PAIRED`` response for the same reads; ``COUNTSTREAM`` /
    ``SCREENSTREAM`` aggregate across chunks and reply with a single final
    TSV frame (their headers summarise the whole run).  A mid-stream
    failure answers ``ERR``/``BUSY`` and closes the connection -- the frame
    protocol is no longer in sync, unlike one-shot verbs.
``PING``
    Responds ``OK 0`` (used for readiness probes).
``SHUTDOWN``
    Responds ``OK 0``, then shuts the server down cleanly.

When the server fronts an :class:`~repro.gateway.AlignmentGateway` (the
default when started through ``api.serve`` / ``meraligner serve``), the
query verbs additionally accept ``INDEX=<name>`` and ``TENANT=<name>``
option tokens after the read count (``ALIGN 8 INDEX=refb TENANT=alice``),
three admin verbs manage the resident indices:

``INDICES``
    Responds with a JSON document listing every resident index (heap
    bytes, fingerprint, budget state).
``REGISTER <name> <fasta-path>``
    Builds and registers a named resident index from a server-side FASTA
    path (LRU-evicting unpinned indices past the heap budget); responds
    with the new index's JSON summary.
``EVICT <name>``
    Evicts a named index (the pinned default index refuses); ``OK 0``.

and a full pending queue answers ``BUSY <message>`` -- an explicit
rejection the client should retry, never a silent drop.

Malformed input gets ``ERR <message>`` and the connection stays usable.
Connections may issue any number of commands.  This front-end is a
``ThreadingTCPServer`` -- one thread per connection; the event-loop
front-end in :mod:`repro.service.async_server` speaks the exact same
protocol (the shared pieces live in :mod:`repro.service.protocol`) and is
the ``api.serve`` / ``meraligner serve`` default.  With ``client_timeout``
set, a connection that stays idle past it (a slow-loris client trickling
bytes) is reaped: counted in ``server_client_timeouts_total`` and closed
without a reply.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from collections import deque
from dataclasses import asdict

from repro.gateway.admission import GatewayBusyError
from repro.service.protocol import (STREAM_VERBS, ClientTimeout,
                                    ProtocolError, busy_line, chunk_header,
                                    decode_wire_line, done_line, err_line,
                                    exception_text, fastq_payload, ok_header,
                                    parse_fastq_records, parse_stream_frame,
                                    query_options, truncated_payload_error)
from repro.service.scheduler import RequestScheduler
from repro.stream import BoundedChannel, ChannelClosed

__all__ = ["AlignmentServer", "ServerStatsMixin", "ProtocolError",
           "ClientTimeout", "STREAM_VERBS", "fastq_payload",
           "read_fastq_payload"]


class _CountingReader:
    """Wraps the handler's binary read file, tallying bytes into a counter.

    A socket read timing out (``client_timeout`` armed, client idle) is
    surfaced as :class:`~repro.service.protocol.ClientTimeout` so the reap
    path cannot be confused with an ordinary disconnect or protocol error.
    """

    def __init__(self, raw, counter) -> None:
        self._raw = raw
        self._counter = counter

    def readline(self, *args):
        try:
            data = self._raw.readline(*args)
        except TimeoutError as exc:
            raise ClientTimeout("client read timed out") from exc
        self._counter.inc(len(data))
        return data

    def read(self, *args):
        try:
            data = self._raw.read(*args)
        except TimeoutError as exc:
            raise ClientTimeout("client read timed out") from exc
        self._counter.inc(len(data))
        return data


def read_fastq_payload(rfile, n_reads: int):
    """Read and parse ``4 * n_reads`` FASTQ lines from a binary stream.

    The whole payload is consumed from the stream *before* validation, so a
    malformed record never leaves unread payload lines behind to be
    misinterpreted as commands -- the connection stays usable after an
    ``ERR`` reply (a truncated stream is the one unrecoverable case).
    """
    lines: list[str] = []
    for _ in range(4 * n_reads):
        line = rfile.readline()
        if not line:
            raise truncated_payload_error(len(lines), n_reads)
        lines.append(decode_wire_line(line))
    return parse_fastq_records(lines, n_reads)


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: a loop of command lines.

    ``self.server`` is the underlying TCP server; the scheduler, stats and
    shutdown hooks are attached to it by :class:`AlignmentServer`.
    """

    def _send(self, *parts: bytes) -> None:
        """Write + flush, counting bytes; a write timing out (stalled
        reader, ``client_timeout`` armed) reaps the connection."""
        try:
            for part in parts:
                self.wfile.write(part)
            self.wfile.flush()
        except TimeoutError as exc:
            raise ClientTimeout("client write timed out") from exc
        self.server.metrics.counter("server_bytes_out_total").inc(
            sum(len(part) for part in parts))

    def _reply(self, payload: bytes = b"") -> None:
        header = ok_header(len(payload))
        if payload:
            self._send(header, payload)
        else:
            self._send(header)

    def _error(self, message: str) -> None:
        self._send(err_line(message))

    def _busy(self, message: str) -> None:
        self._send(busy_line(message))

    def handle(self) -> None:
        metrics = self.server.metrics
        metrics.counter("server_connections_total").inc()
        active = metrics.gauge("server_active_connections")
        active.add(1)
        if self.server.client_timeout is not None:
            # Per-recv idle bound: any single blocking socket read (or
            # write) past it raises, reaping the connection.
            self.connection.settimeout(self.server.client_timeout)
        try:
            self._command_loop(metrics)
        except ClientTimeout:
            # Counted exactly once, here: read and write timeouts from any
            # depth reap the connection without a reply (the client is not
            # reading) and without a handle_error traceback.
            metrics.counter("server_client_timeouts_total").inc()
        except ConnectionError:
            pass
        finally:
            active.add(-1)

    def _require_gateway(self, what: str):
        gateway = self.server.gateway
        if gateway is None:
            raise ProtocolError(
                f"{what} requires a gateway-backed server "
                "(start it through api.serve / meraligner serve)")
        return gateway

    def _handle_stream(self, rfile, verb: str, options: list[str],
                       metrics) -> bool:
        """Serve one ``*STREAM`` request: chunked body in, framed parts out.

        The client sends ``CHUNK <n_reads>`` + FASTQ frames terminated by
        ``END``; a producer thread parses them into a
        :class:`~repro.stream.BoundedChannel` (whose blocking ``put`` is the
        read-ahead bound -- a slow aligner backpressures the socket), while
        this thread keeps up to ``stream_max_inflight`` chunks submitted so
        the scheduler can coalesce them, emitting each result as a
        ``CHUNK <n_bytes>`` frame in order and finally ``DONE <n_chunks>
        <n_reads>``.  Gateway admission running full raises ``BUSY`` at a
        chunk boundary.  Returns False when the connection must close (any
        mid-stream failure: the frame protocol is no longer in sync).
        """
        workload = STREAM_VERBS[verb]
        group = 2 if workload == "paired" else 1
        channel = BoundedChannel(self.server.stream_channel_capacity)
        inflight: deque = deque()
        producer = None
        try:
            index, tenant = query_options(verb, options)
            gateway = self.server.gateway
            if gateway is None:
                if index is not None or tenant is not None:
                    raise ProtocolError("INDEX=/TENANT= options require a "
                                        "gateway-backed server")
                session = self.server.scheduler.session
            else:
                from repro.gateway.gateway import DEFAULT_INDEX
                session = gateway.registry.get(index or DEFAULT_INDEX).session

            def produce() -> None:
                try:
                    while True:
                        line = rfile.readline()
                        if not line:
                            raise ProtocolError(
                                "connection closed mid-stream (missing END)")
                        frame = line.decode("utf-8", errors="replace").strip()
                        if not frame:
                            continue
                        n_reads = parse_stream_frame(frame, verb, group)
                        if n_reads is None:
                            channel.close()
                            return
                        records = read_fastq_payload(rfile, n_reads)
                        channel.put([record.to_read() for record in records])
                except ChannelClosed:
                    pass  # consumer aborted; drop the rest of the stream
                except BaseException as exc:  # noqa: BLE001 - forwarded
                    channel.fail(exc)

            producer = threading.Thread(target=produce, daemon=True,
                                        name="stream-producer")
            producer.start()

            from repro.core.plan import ScreenSummary, SeedCountSummary
            from repro.service.session import merge_stream_outputs
            depth_gauge = metrics.gauge("stream_channel_depth")
            incremental = workload in ("align", "paired")
            header_sent = False
            aggregate = None
            n_chunks = 0
            n_reads_total = 0

            def emit_result(ticket) -> None:
                nonlocal header_sent, aggregate
                result = ticket.result(self.server.request_timeout)
                if incremental:
                    text = session.render_stream_part(
                        workload, result.output,
                        include_header=not header_sent)
                    header_sent = True
                    if text:
                        self._stream_frame(text.encode("ascii"))
                else:
                    aggregate = (result.output if aggregate is None
                                 else merge_stream_outputs(
                                     workload, aggregate, result.output))
                metrics.counter("stream_chunks_total",
                                workload=workload).inc()

            for records in channel:
                depth_gauge.set(channel.depth)
                while len(inflight) >= self.server.stream_max_inflight:
                    emit_result(inflight.popleft())
                if gateway is not None:
                    _entry, ticket = gateway.submit_stream_chunk(
                        records, workload=workload, index=index,
                        tenant=tenant)
                else:
                    ticket = self.server.scheduler.submit(records,
                                                          workload=workload)
                inflight.append(ticket)
                n_chunks += 1
                n_reads_total += len(records)
            while inflight:
                emit_result(inflight.popleft())

            if incremental:
                if not header_sent:
                    self._stream_frame(session.render_stream_part(
                        workload, [], include_header=True).encode("ascii"))
            else:
                if aggregate is None:
                    aggregate = (SeedCountSummary() if workload == "count"
                                 else ScreenSummary(rows=[]))
                self._stream_frame(
                    session.render(workload, aggregate).encode("ascii"))
            self._send(done_line(n_chunks, n_reads_total))
            metrics.gauge("stream_channel_high_watermark").set(
                channel.high_watermark)
            return True
        except GatewayBusyError as exc:
            metrics.counter("server_busy_total", verb=verb).inc()
            self._busy(str(exc))
            return False
        except ClientTimeout:
            raise
        except ConnectionError:
            metrics.counter("server_errors_total", verb=verb).inc()
            return False
        except Exception as exc:  # noqa: BLE001 - reported, then close
            metrics.counter("server_errors_total", verb=verb).inc()
            if isinstance(exc, ProtocolError):
                self._error(str(exc))
            else:
                self._error(exception_text(exc))
            return False
        finally:
            # Unblock a producer stuck in put() and free admission slots of
            # results never collected (abort paths only) -- and reset the
            # depth gauge on *every* exit, not just success, so an aborted
            # stream cannot leave a stale nonzero depth behind.
            channel.close()
            for ticket in inflight:
                release = getattr(ticket, "release", None)
                if release is not None:
                    release()
            metrics.gauge("stream_channel_depth").set(0)
            if producer is not None:
                if producer.is_alive():
                    # Abort path with the producer still blocked in
                    # readline(): it holds the rfile buffer lock, so closing
                    # the connection would deadlock against it.  Shut the
                    # read side down to pop it out of recv() first -- the
                    # connection is closing either way.
                    try:
                        self.connection.shutdown(socket.SHUT_RD)
                    except OSError:
                        pass
                producer.join(timeout=5.0)

    def _stream_frame(self, payload: bytes) -> None:
        """One ``CHUNK <n_bytes>`` response frame of a streamed reply."""
        self._send(chunk_header(len(payload)), payload)

    def _command_loop(self, metrics) -> None:
        rfile = _CountingReader(self.rfile,
                                metrics.counter("server_bytes_in_total"))
        while True:
            try:
                line = rfile.readline()
            except ConnectionError:
                return
            if not line:
                return
            command = line.decode("utf-8", errors="replace").strip()
            if not command:
                continue
            verb = command.split()[0].upper()
            metrics.counter("server_requests_total", verb=verb).inc()
            try:
                if verb == "PING" and command.upper() == "PING":
                    self._reply()
                elif verb == "STATS" and command.upper() == "STATS":
                    self._reply(json.dumps(self.server.stats_json(), indent=2,
                                           sort_keys=True).encode("utf-8"))
                elif verb == "METRICS":
                    argument = command.split(None, 1)[1:] or [""]
                    fmt = argument[0].strip().upper()
                    if fmt in ("PROM", "?FORMAT=PROM"):
                        self._reply(self.server.metrics_text().encode("utf-8"))
                    elif fmt == "":
                        self._reply(json.dumps(self.server.metrics_json(),
                                               indent=2, sort_keys=True,
                                               ).encode("utf-8"))
                    else:
                        raise ProtocolError(
                            "usage: METRICS [PROM] (got METRICS "
                            f"{argument[0].strip()!r})")
                elif verb == "SHUTDOWN" and command.upper() == "SHUTDOWN":
                    self._reply()
                    self.server.request_shutdown()
                    return
                elif verb in ("ALIGN", "COUNT", "SCREEN", "PAIRED"):
                    parts = command.split()
                    if len(parts) < 2 or not parts[1].isdigit():
                        raise ProtocolError(
                            f"usage: {verb} <n_reads> "
                            "[INDEX=<name>] [TENANT=<name>]")
                    n_reads = int(parts[1])
                    index, tenant = query_options(verb, parts[2:])
                    if verb == "PAIRED" and n_reads % 2 != 0:
                        raise ProtocolError(
                            "PAIRED needs an even interleaved read count, "
                            f"got {n_reads}")
                    reads = read_fastq_payload(rfile, n_reads)
                    records = [record.to_read() for record in reads]
                    gateway = self.server.gateway
                    if gateway is not None:
                        response = gateway.request(
                            records, workload=verb.lower(), index=index,
                            tenant=tenant,
                            timeout=self.server.request_timeout)
                        text = response.text
                    else:
                        if index is not None or tenant is not None:
                            raise ProtocolError(
                                "INDEX=/TENANT= options require a "
                                "gateway-backed server")
                        result = self.server.scheduler.request(
                            records, workload=verb.lower(),
                            timeout=self.server.request_timeout)
                        text = result.text
                    self._reply(text.encode("ascii"))
                elif verb in STREAM_VERBS:
                    if not self._handle_stream(rfile, verb,
                                               command.split()[1:], metrics):
                        return
                elif verb == "INDICES" and command.upper() == "INDICES":
                    gateway = self._require_gateway("INDICES")
                    self._reply(json.dumps(gateway.indices_json(), indent=2,
                                           sort_keys=True).encode("utf-8"))
                elif verb == "REGISTER":
                    # split at most twice: the FASTA path may contain spaces.
                    parts = command.split(None, 2)
                    if len(parts) != 3:
                        raise ProtocolError("usage: REGISTER <name> "
                                            "<fasta-path>")
                    gateway = self._require_gateway("REGISTER")
                    summary = gateway.register(parts[1], parts[2].strip())
                    self._reply(json.dumps(summary, indent=2,
                                           sort_keys=True).encode("utf-8"))
                elif verb == "EVICT":
                    parts = command.split()
                    if len(parts) != 2:
                        raise ProtocolError("usage: EVICT <name>")
                    gateway = self._require_gateway("EVICT")
                    gateway.evict(parts[1])
                    self._reply()
                else:
                    raise ProtocolError(f"unknown command {command.split()[0]!r}")
            except ProtocolError as exc:
                metrics.counter("server_errors_total", verb=verb).inc()
                self._error(str(exc))
            except GatewayBusyError as exc:
                metrics.counter("server_busy_total", verb=verb).inc()
                self._busy(str(exc))
            except ClientTimeout:
                raise
            except ConnectionError:
                metrics.counter("server_errors_total", verb=verb).inc()
                return
            except Exception as exc:  # noqa: BLE001 - reported to the client
                metrics.counter("server_errors_total", verb=verb).inc()
                self._error(exception_text(exc))


class ServerStatsMixin:
    """The ``STATS`` / ``METRICS`` documents, shared by both front-ends.

    Requires ``self.scheduler``, ``self.gateway`` and ``self.metrics`` --
    the documents must be byte-identical whichever front-end serves them,
    so they are built in exactly one place.
    """

    def stats_json(self) -> dict:
        """The ``STATS`` payload: scheduler stats plus session summary.

        A gateway-backed server adds a ``gateway`` section (resident
        indices, result-cache counters, admission state); ``service`` and
        ``session`` always describe the default index, so pre-gateway
        consumers read the document unchanged.
        """
        from repro.core.stats import REPORT_SCHEMA_VERSION
        doc = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "service": self.scheduler.stats().to_json_dict(),
            "session": self.scheduler.session.to_json_dict(),
        }
        if self.gateway is not None:
            doc["gateway"] = self.gateway.stats_json()
        return doc

    def metrics_json(self) -> dict:
        """The ``METRICS`` payload: one snapshot document for the whole stack.

        ``metrics`` is the registry snapshot (scheduler, session, backend and
        server instruments); ``service``/``session`` mirror ``STATS``;
        ``comm`` is the resident runtime's *cumulative* communication
        counters (index build plus every request served so far) and
        ``caches`` the per-node software caches' lifetime statistics --
        the modelled-domain counters unified with the wall-clock ones.
        """
        from repro.core.stats import REPORT_SCHEMA_VERSION
        session = self.scheduler.session
        prepared = session.prepared
        comm = asdict(prepared.runtime.total_stats)
        comm["time_by_category"] = dict(sorted(
            comm["time_by_category"].items()))
        caches = {}
        for cache in (prepared.seed_cache, prepared.target_cache):
            if cache is not None:
                caches[cache.name] = asdict(cache.total_stats())
        doc = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "metrics": self.metrics.snapshot(),
            "service": self.scheduler.stats().to_json_dict(),
            "session": session.to_json_dict(),
            "comm": comm,
            "caches": caches,
        }
        # Additive, like the PR-5/PR-7 counter additions: the schema version
        # stays put because every existing key keeps its meaning (comm and
        # caches remain the default index's).
        if self.gateway is not None:
            doc["gateway"] = self.gateway.stats_json()
        return doc

    def metrics_text(self) -> str:
        """The ``METRICS PROM`` payload: Prometheus text exposition."""
        return self.metrics.to_prometheus()


class AlignmentServer(ServerStatsMixin):
    """TCP front end streaming SAM responses from a request scheduler."""

    def __init__(self, scheduler: RequestScheduler | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 request_timeout: float | None = 300.0,
                 gateway=None, stream_channel_capacity: int = 8,
                 stream_max_inflight: int = 4,
                 client_timeout: float | None = None) -> None:
        from repro.obs.registry import MetricsRegistry
        if scheduler is None:
            if gateway is None:
                raise ValueError("pass a scheduler, a gateway, or both")
            scheduler = gateway.default_scheduler
        self.scheduler = scheduler
        self.gateway = gateway
        self.request_timeout = request_timeout
        self.client_timeout = client_timeout
        # Record into the scheduler's registry so one snapshot spans every
        # layer; a bare scheduler-less future server would still get one.
        self.metrics = getattr(scheduler, "metrics", None) or MetricsRegistry()
        self._shutdown_requested = threading.Event()
        self._serving = threading.Event()

        outer = self

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _Handler)
        self._server.scheduler = scheduler
        # StreamRequestHandler reaches the AlignmentServer through the TCP
        # server instance.
        self._server.stats_json = outer.stats_json
        self._server.metrics_json = outer.metrics_json
        self._server.metrics_text = outer.metrics_text
        self._server.metrics = outer.metrics
        self._server.request_shutdown = outer.request_shutdown
        self._server.request_timeout = request_timeout
        self._server.client_timeout = client_timeout
        self._server.gateway = gateway
        # Streaming bounds: at most `capacity` parsed chunks queued (the
        # producer's socket read backpressures beyond that) plus
        # `max_inflight` chunks submitted to the scheduler at once.
        self._server.stream_channel_capacity = stream_channel_capacity
        self._server.stream_max_inflight = stream_max_inflight

    # -- addressing -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` OS-assigned binding)."""
        return self._server.server_address[1]

    # -- lifecycle ------------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or a client ``SHUTDOWN`` command)."""
        self._serving.set()
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._serving.clear()
            # A client-driven SHUTDOWN stops the serve loop via
            # request_shutdown() without ever reaching shutdown(); close the
            # listening socket here so new connections are refused instead of
            # queueing in a backlog nobody will ever accept.
            self._server.server_close()

    def request_shutdown(self) -> None:
        """Trigger shutdown from a handler thread without deadlocking."""
        if self._shutdown_requested.is_set():
            return
        self._shutdown_requested.set()
        # shutdown() blocks until serve_forever exits, so it must not run on
        # the handler thread that carried the SHUTDOWN command.
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def shutdown(self) -> None:
        """Stop the serve loop and close the listening socket (idempotent)."""
        self._shutdown_requested.set()
        if self._serving.is_set():
            self._server.shutdown()
        self._server.server_close()

    def close(self) -> None:
        self.shutdown()

    def __enter__(self) -> "AlignmentServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
