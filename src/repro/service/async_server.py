"""The alignment service's asyncio connection front-end.

:class:`AsyncAlignmentServer` is the event-loop twin of the
thread-per-connection :class:`~repro.service.server.AlignmentServer`: **one**
event loop owns accept, read, write and request framing (including the
``*STREAM`` verbs' ``CHUNK``/``END`` frames) for every connection, so
concurrency is no longer capped by thread count -- thousands of idle or
slow-moving connections cost one coroutine each, not one OS thread.  It is
the default front-end of ``api.serve`` / ``meraligner serve``
(``--frontend thread`` selects the classic server).

The protocol is byte-identical by construction: both front-ends share every
parser, validator and status-line formatter through
:mod:`repro.service.protocol`, and the ``STATS``/``METRICS`` documents come
from one :class:`~repro.service.server.ServerStatsMixin`.
``tests/test_wire_conformance.py`` drives both through the same fuzz and
fault-injection matrix and compares responses byte for byte.

How blocking work is bridged
----------------------------

The scheduler and gateway are thread-world objects; their futures
(:class:`~repro.service.scheduler.AlignmentRequest`, the gateway's request
and stream-chunk tickets) block in ``result()``.  Parking an executor
thread per in-flight request would reintroduce the thread cap, so the loop
never blocks on them: every future exposes ``add_done_callback``, the
handler awaits an ``asyncio`` future resolved via
``loop.call_soon_threadsafe`` from the scheduler's worker thread, and only
then calls ``result()`` -- which returns immediately.  Micro-batching is
untouched: submissions still land in the scheduler's queue from many
connections concurrently, so requests coalesce across connections exactly
as they do under the thread front-end.  The one genuinely blocking verb,
``REGISTER`` (it builds an index), runs in the default executor.

Streaming mirrors the thread front-end's shape with asyncio parts: the
producer is a task (not a thread), the bounded channel an
``asyncio.Queue(maxsize=stream_channel_capacity)``, and backpressure comes
from the queue's ``put`` plus the transport's ``drain()``.

``client_timeout`` (the slow-loris guard, default off) bounds every
``readline``/``drain`` await; a connection that trips it is counted in
``server_client_timeouts_total`` and closed without a reply.
"""

from __future__ import annotations

import asyncio
import json
import threading
from collections import deque

from repro.gateway.admission import GatewayBusyError
from repro.service.protocol import (STREAM_VERBS, ClientTimeout,
                                    ProtocolError, busy_line, chunk_header,
                                    decode_wire_line, done_line, err_line,
                                    exception_text, ok_header,
                                    parse_fastq_records, parse_stream_frame,
                                    query_options, truncated_payload_error)
from repro.service.server import ServerStatsMixin

__all__ = ["AsyncAlignmentServer"]

#: StreamReader line-length bound (the thread front-end has none; asyncio
#: needs one to bound per-connection buffering).  Generously past any real
#: command or FASTQ line; an overflowing line is a protocol error that
#: closes the connection, never a crash.
LINE_LIMIT = 1 << 20

#: Sentinel ending the stream-producer queue (the ``END`` frame arrived).
_END = object()


class _LineOverflow(ConnectionError):
    """A line exceeded :data:`LINE_LIMIT`.

    The StreamReader's buffer is desynchronized past an overflow, so this
    is connection-fatal everywhere -- a :class:`ConnectionError` subclass
    rides the existing close-without-reply paths (counted in
    ``server_errors_total`` when it interrupts a command).
    """


class _StreamFailure:
    """A producer-side exception forwarded through the chunk queue."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


class AsyncAlignmentServer(ServerStatsMixin):
    """Event-loop TCP front end multiplexing many clients onto one scheduler.

    Constructor signature and lifecycle match
    :class:`~repro.service.server.AlignmentServer` exactly -- bind in
    ``__init__`` (so ``port`` is readable immediately), ``serve_forever()``
    on a thread of the caller's choosing, ``request_shutdown()`` from
    handlers, idempotent ``shutdown()``/``close()`` from anywhere.
    """

    def __init__(self, scheduler=None, host: str = "127.0.0.1", port: int = 0,
                 request_timeout: float | None = 300.0,
                 gateway=None, stream_channel_capacity: int = 8,
                 stream_max_inflight: int = 4,
                 client_timeout: float | None = None) -> None:
        from repro.obs.registry import MetricsRegistry
        if scheduler is None:
            if gateway is None:
                raise ValueError("pass a scheduler, a gateway, or both")
            scheduler = gateway.default_scheduler
        self.scheduler = scheduler
        self.gateway = gateway
        self.request_timeout = request_timeout
        self.client_timeout = client_timeout
        self.stream_channel_capacity = stream_channel_capacity
        self.stream_max_inflight = stream_max_inflight
        self.metrics = getattr(scheduler, "metrics", None) or MetricsRegistry()

        self._loop = asyncio.new_event_loop()
        self._client_tasks: set[asyncio.Task] = set()
        self._shutdown_requested = threading.Event()
        self._serving = threading.Event()
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._lifecycle_lock = threading.Lock()
        self._started = False
        # Bind and start listening synchronously: the OS accepts (queues)
        # connections from here on, and `port` is immediately readable --
        # exactly like the threading server's constructor.  The loop is not
        # running yet, so queued connections are handled once
        # serve_forever() starts it.
        self._server = self._loop.run_until_complete(
            asyncio.start_server(self._client_connected, host=host, port=port,
                                 limit=LINE_LIMIT))

    # -- addressing -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._server.sockets[0].getsockname()[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` OS-assigned binding)."""
        return self._server.sockets[0].getsockname()[1]

    # -- lifecycle ------------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (or a client
        ``SHUTDOWN`` command); owns teardown of every connection task."""
        loop = self._loop
        asyncio.set_event_loop(loop)
        with self._lifecycle_lock:
            if self._stopped.is_set():
                return
            self._started = True
        self._serving.set()
        try:
            loop.run_forever()
        finally:
            self._serving.clear()
            self._stopping.set()
            try:
                loop.run_until_complete(self._finalize())
            except RuntimeError:
                # A racing shutdown() stopped the loop mid-finalize; the
                # process is tearing the server down either way.
                pass
            finally:
                try:
                    loop.run_until_complete(loop.shutdown_asyncgens())
                except RuntimeError:
                    pass
                loop.close()
                self._stopped.set()

    async def _finalize(self) -> None:
        self._server.close()
        await self._server.wait_closed()
        tasks = [task for task in self._client_tasks if not task.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def request_shutdown(self) -> None:
        """Trigger shutdown from a handler (or any thread) without blocking."""
        if self._shutdown_requested.is_set():
            return
        self._shutdown_requested.set()
        if not self._stopping.is_set():
            try:
                self._loop.call_soon_threadsafe(self._loop.stop)
            except RuntimeError:
                pass

    def shutdown(self) -> None:
        """Stop the serve loop and close the listening socket (idempotent)."""
        self._shutdown_requested.set()
        if self._stopped.is_set():
            return
        with self._lifecycle_lock:
            if not self._started:
                # Never served: finalize inline on the caller's thread.
                if not self._stopped.is_set():
                    try:
                        if not self._loop.is_closed():
                            self._loop.run_until_complete(self._finalize())
                            self._loop.close()
                    finally:
                        self._stopped.set()
                return
        if not self._stopping.is_set():
            try:
                self._loop.call_soon_threadsafe(self._loop.stop)
            except RuntimeError:
                pass
        self._stopped.wait(timeout=30.0)

    def close(self) -> None:
        self.shutdown()

    def __enter__(self) -> "AsyncAlignmentServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- the thread/loop bridge -----------------------------------------------

    async def _wait_done(self, fut_like) -> None:
        """Await a thread-world future's completion without blocking the loop.

        Registers an ``add_done_callback`` that resolves an asyncio future
        via ``call_soon_threadsafe``; raises ``asyncio.TimeoutError`` past
        ``request_timeout`` (the caller releases its ticket and reports).
        """
        loop = self._loop
        waiter = loop.create_future()

        def _on_done(_obj) -> None:
            def _resolve() -> None:
                if not waiter.done():
                    waiter.set_result(None)
            try:
                loop.call_soon_threadsafe(_resolve)
            except RuntimeError:
                pass  # loop already closed: shutdown raced the completion

        fut_like.add_done_callback(_on_done)
        if self.request_timeout is None:
            await waiter
        else:
            await asyncio.wait_for(waiter, self.request_timeout)

    async def _collect(self, ticket):
        """Await a ticket/request future and return its ``result()``.

        On a request timeout the admission slot is released (abort path)
        and a :class:`TimeoutError` is raised for the ``ERR`` reply; on
        cancellation (server shutdown) the slot is released too.
        """
        try:
            await self._wait_done(ticket)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            release = getattr(ticket, "release", None)
            if release is not None:
                release()
            raise
        return ticket.result(self.request_timeout)

    # -- connection handling --------------------------------------------------

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        metrics = self.metrics
        metrics.counter("server_connections_total").inc()
        active = metrics.gauge("server_active_connections")
        active.add(1)
        try:
            await self._command_loop(reader, writer, metrics)
        except asyncio.CancelledError:
            pass  # server shutdown mid-connection
        except ClientTimeout:
            # Counted exactly once, here, like the thread front-end: read
            # and write timeouts from any depth reap the connection without
            # a reply.
            metrics.counter("server_client_timeouts_total").inc()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            active.add(-1)
            if task is not None:
                self._client_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError, OSError):
                pass

    async def _readline(self, reader: asyncio.StreamReader) -> bytes:
        """One counted line read, under the ``client_timeout`` bound."""
        try:
            if self.client_timeout is None:
                line = await reader.readline()
            else:
                line = await asyncio.wait_for(reader.readline(),
                                              self.client_timeout)
        except asyncio.TimeoutError as exc:
            raise ClientTimeout("client read timed out") from exc
        except ValueError as exc:
            # StreamReader line-limit overflow: unrecoverable framing.
            raise _LineOverflow(
                f"request line exceeds {LINE_LIMIT} bytes") from exc
        self.metrics.counter("server_bytes_in_total").inc(len(line))
        return line

    async def _send(self, writer: asyncio.StreamWriter,
                    *parts: bytes) -> None:
        """Write + drain, counting bytes; a drain timing out (stalled
        reader, ``client_timeout`` armed) reaps the connection."""
        for part in parts:
            writer.write(part)
        try:
            if self.client_timeout is None:
                await writer.drain()
            else:
                await asyncio.wait_for(writer.drain(), self.client_timeout)
        except asyncio.TimeoutError as exc:
            raise ClientTimeout("client write timed out") from exc
        self.metrics.counter("server_bytes_out_total").inc(
            sum(len(part) for part in parts))

    async def _reply(self, writer, payload: bytes = b"") -> None:
        header = ok_header(len(payload))
        if payload:
            await self._send(writer, header, payload)
        else:
            await self._send(writer, header)

    async def _error(self, writer, message: str) -> None:
        await self._send(writer, err_line(message))

    async def _busy(self, writer, message: str) -> None:
        await self._send(writer, busy_line(message))

    async def _read_fastq_payload(self, reader, n_reads: int):
        lines: list[str] = []
        for _ in range(4 * n_reads):
            line = await self._readline(reader)
            if not line:
                raise truncated_payload_error(len(lines), n_reads)
            lines.append(decode_wire_line(line))
        return parse_fastq_records(lines, n_reads)

    def _require_gateway(self, what: str):
        if self.gateway is None:
            raise ProtocolError(
                f"{what} requires a gateway-backed server "
                "(start it through api.serve / meraligner serve)")
        return self.gateway

    async def _command_loop(self, reader, writer, metrics) -> None:
        while True:
            try:
                line = await self._readline(reader)
            except ConnectionError:
                return
            if not line:
                return
            command = line.decode("utf-8", errors="replace").strip()
            if not command:
                continue
            verb = command.split()[0].upper()
            metrics.counter("server_requests_total", verb=verb).inc()
            try:
                if verb == "PING" and command.upper() == "PING":
                    await self._reply(writer)
                elif verb == "STATS" and command.upper() == "STATS":
                    await self._reply(writer, json.dumps(
                        self.stats_json(), indent=2,
                        sort_keys=True).encode("utf-8"))
                elif verb == "METRICS":
                    argument = command.split(None, 1)[1:] or [""]
                    fmt = argument[0].strip().upper()
                    if fmt in ("PROM", "?FORMAT=PROM"):
                        await self._reply(writer,
                                          self.metrics_text().encode("utf-8"))
                    elif fmt == "":
                        await self._reply(writer, json.dumps(
                            self.metrics_json(), indent=2, sort_keys=True,
                            ).encode("utf-8"))
                    else:
                        raise ProtocolError(
                            "usage: METRICS [PROM] (got METRICS "
                            f"{argument[0].strip()!r})")
                elif verb == "SHUTDOWN" and command.upper() == "SHUTDOWN":
                    await self._reply(writer)
                    # Flush this connection before stopping the loop so the
                    # OK line is never lost in teardown.
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
                    self.request_shutdown()
                    return
                elif verb in ("ALIGN", "COUNT", "SCREEN", "PAIRED"):
                    parts = command.split()
                    if len(parts) < 2 or not parts[1].isdigit():
                        raise ProtocolError(
                            f"usage: {verb} <n_reads> "
                            "[INDEX=<name>] [TENANT=<name>]")
                    n_reads = int(parts[1])
                    index, tenant = query_options(verb, parts[2:])
                    if verb == "PAIRED" and n_reads % 2 != 0:
                        raise ProtocolError(
                            "PAIRED needs an even interleaved read count, "
                            f"got {n_reads}")
                    reads = await self._read_fastq_payload(reader, n_reads)
                    records = [record.to_read() for record in reads]
                    text = await self._serve_query(verb.lower(), records,
                                                   index, tenant)
                    await self._reply(writer, text.encode("ascii"))
                elif verb in STREAM_VERBS:
                    if not await self._handle_stream(reader, writer, verb,
                                                     command.split()[1:],
                                                     metrics):
                        return
                elif verb == "INDICES" and command.upper() == "INDICES":
                    gateway = self._require_gateway("INDICES")
                    await self._reply(writer, json.dumps(
                        gateway.indices_json(), indent=2,
                        sort_keys=True).encode("utf-8"))
                elif verb == "REGISTER":
                    # split at most twice: the FASTA path may contain spaces.
                    parts = command.split(None, 2)
                    if len(parts) != 3:
                        raise ProtocolError("usage: REGISTER <name> "
                                            "<fasta-path>")
                    gateway = self._require_gateway("REGISTER")
                    # The one genuinely blocking verb (builds an index):
                    # run it off-loop so other connections keep being
                    # served meanwhile.
                    summary = await self._loop.run_in_executor(
                        None, gateway.register, parts[1], parts[2].strip())
                    await self._reply(writer, json.dumps(
                        summary, indent=2, sort_keys=True).encode("utf-8"))
                elif verb == "EVICT":
                    parts = command.split()
                    if len(parts) != 2:
                        raise ProtocolError("usage: EVICT <name>")
                    gateway = self._require_gateway("EVICT")
                    gateway.evict(parts[1])
                    await self._reply(writer)
                else:
                    raise ProtocolError(
                        f"unknown command {command.split()[0]!r}")
            except ProtocolError as exc:
                metrics.counter("server_errors_total", verb=verb).inc()
                await self._error(writer, str(exc))
            except GatewayBusyError as exc:
                metrics.counter("server_busy_total", verb=verb).inc()
                await self._busy(writer, str(exc))
            except (ClientTimeout, asyncio.CancelledError):
                raise
            except ConnectionError:
                metrics.counter("server_errors_total", verb=verb).inc()
                return
            except Exception as exc:  # noqa: BLE001 - reported to the client
                metrics.counter("server_errors_total", verb=verb).inc()
                await self._error(writer, exception_text(exc))

    async def _serve_query(self, workload: str, records, index, tenant) -> str:
        """One-shot query through the gateway (or bare scheduler) without
        blocking the loop; returns the rendered response text."""
        if self.gateway is not None:
            from repro.gateway.gateway import GatewayResponse
            outcome = self.gateway.submit_request(records, workload=workload,
                                                  index=index, tenant=tenant)
            if isinstance(outcome, GatewayResponse):
                return outcome.text
            try:
                response = await self._collect(outcome)
            except asyncio.TimeoutError:
                raise TimeoutError(
                    f"request not served within {self.request_timeout}s"
                ) from None
            return response.text
        if index is not None or tenant is not None:
            raise ProtocolError("INDEX=/TENANT= options require a "
                                "gateway-backed server")
        request = self.scheduler.submit(records, workload=workload)
        try:
            result = await self._collect(request)
        except asyncio.TimeoutError:
            raise TimeoutError(
                f"request not served within {self.request_timeout}s"
            ) from None
        return result.text

    # -- streaming ------------------------------------------------------------

    async def _stream_frame(self, writer, payload: bytes) -> None:
        """One ``CHUNK <n_bytes>`` response frame of a streamed reply."""
        await self._send(writer, chunk_header(len(payload)), payload)

    async def _handle_stream(self, reader, writer, verb: str,
                             options: list[str], metrics) -> bool:
        """Serve one ``*STREAM`` request: chunked body in, framed parts out.

        The event-loop mirror of the thread front-end's handler: a producer
        *task* parses ``CHUNK``/``END`` frames into a bounded
        ``asyncio.Queue`` (its full ``put`` is the read-ahead bound), this
        coroutine keeps up to ``stream_max_inflight`` chunks submitted so
        the scheduler can coalesce them, and every result is emitted as a
        ``CHUNK <n_bytes>`` frame in order, then ``DONE``.  Returns False
        when the connection must close (any mid-stream failure: the frame
        protocol is no longer in sync).
        """
        workload = STREAM_VERBS[verb]
        group = 2 if workload == "paired" else 1
        queue: asyncio.Queue = asyncio.Queue(
            maxsize=max(1, self.stream_channel_capacity))
        inflight: deque = deque()
        producer: asyncio.Task | None = None
        high_watermark = 0
        try:
            index, tenant = query_options(verb, options)
            gateway = self.gateway
            if gateway is None:
                if index is not None or tenant is not None:
                    raise ProtocolError("INDEX=/TENANT= options require a "
                                        "gateway-backed server")
                session = self.scheduler.session
            else:
                from repro.gateway.gateway import DEFAULT_INDEX
                session = gateway.registry.get(index or DEFAULT_INDEX).session

            async def produce() -> None:
                nonlocal high_watermark
                try:
                    while True:
                        line = await self._readline(reader)
                        if not line:
                            raise ProtocolError(
                                "connection closed mid-stream (missing END)")
                        frame = line.decode("utf-8", errors="replace").strip()
                        if not frame:
                            continue
                        n_reads = parse_stream_frame(frame, verb, group)
                        if n_reads is None:
                            await queue.put(_END)
                            return
                        records = await self._read_fastq_payload(reader,
                                                                 n_reads)
                        await queue.put(
                            [record.to_read() for record in records])
                        high_watermark = max(high_watermark, queue.qsize())
                except asyncio.CancelledError:
                    raise  # consumer aborted; do not mask the cancel
                except BaseException as exc:  # noqa: BLE001 - forwarded
                    await queue.put(_StreamFailure(exc))

            producer = self._loop.create_task(produce())

            from repro.core.plan import ScreenSummary, SeedCountSummary
            from repro.service.session import merge_stream_outputs
            depth_gauge = metrics.gauge("stream_channel_depth")
            incremental = workload in ("align", "paired")
            header_sent = False
            aggregate = None
            n_chunks = 0
            n_reads_total = 0

            async def emit_result(ticket) -> None:
                nonlocal header_sent, aggregate
                try:
                    result = await self._collect(ticket)
                except asyncio.TimeoutError:
                    raise TimeoutError(
                        f"request not served within {self.request_timeout}s"
                    ) from None
                if incremental:
                    text = session.render_stream_part(
                        workload, result.output,
                        include_header=not header_sent)
                    header_sent = True
                    if text:
                        await self._stream_frame(writer,
                                                 text.encode("ascii"))
                else:
                    aggregate = (result.output if aggregate is None
                                 else merge_stream_outputs(
                                     workload, aggregate, result.output))
                metrics.counter("stream_chunks_total",
                                workload=workload).inc()

            while True:
                item = await queue.get()
                if item is _END:
                    break
                if isinstance(item, _StreamFailure):
                    raise item.error
                records = item
                depth_gauge.set(queue.qsize())
                while len(inflight) >= self.stream_max_inflight:
                    await emit_result(inflight.popleft())
                if gateway is not None:
                    _entry, ticket = gateway.submit_stream_chunk(
                        records, workload=workload, index=index,
                        tenant=tenant)
                else:
                    ticket = self.scheduler.submit(records,
                                                   workload=workload)
                inflight.append(ticket)
                n_chunks += 1
                n_reads_total += len(records)
            while inflight:
                await emit_result(inflight.popleft())

            if incremental:
                if not header_sent:
                    await self._stream_frame(
                        writer, session.render_stream_part(
                            workload, [],
                            include_header=True).encode("ascii"))
            else:
                if aggregate is None:
                    aggregate = (SeedCountSummary() if workload == "count"
                                 else ScreenSummary(rows=[]))
                await self._stream_frame(
                    writer, session.render(workload, aggregate).encode("ascii"))
            await self._send(writer, done_line(n_chunks, n_reads_total))
            metrics.gauge("stream_channel_high_watermark").set(high_watermark)
            return True
        except GatewayBusyError as exc:
            metrics.counter("server_busy_total", verb=verb).inc()
            await self._busy(writer, str(exc))
            return False
        except (ClientTimeout, asyncio.CancelledError):
            raise
        except ConnectionError:
            metrics.counter("server_errors_total", verb=verb).inc()
            return False
        except Exception as exc:  # noqa: BLE001 - reported, then close
            metrics.counter("server_errors_total", verb=verb).inc()
            if isinstance(exc, ProtocolError):
                await self._error(writer, str(exc))
            else:
                await self._error(writer, exception_text(exc))
            return False
        finally:
            # Stop a producer still reading (or stuck on a full queue), free
            # admission slots of results never collected, and reset the
            # depth gauge on *every* exit so an aborted stream cannot leave
            # a stale nonzero depth behind.
            if producer is not None and not producer.done():
                producer.cancel()
                try:
                    await producer
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
            for ticket in inflight:
                release = getattr(ticket, "release", None)
                if release is not None:
                    release()
            metrics.gauge("stream_channel_depth").set(0)
