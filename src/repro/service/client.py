"""Clients of the alignment service.

:class:`AlignmentClient`
    The in-process API: wraps a :class:`~repro.service.scheduler.RequestScheduler`
    (or builds one from a session), submits read sets and returns
    :class:`~repro.service.scheduler.RequestResult` objects without any
    sockets involved.  This is what notebooks / driver scripts use.

:class:`SocketAlignmentClient`
    Talks the line protocol of :mod:`repro.service.server` over TCP -- what
    ``meraligner query`` uses.  One connection per call keeps it trivially
    robust; the server is a threading server, so concurrent clients still
    coalesce into micro-batches.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from itertools import chain

from repro.service.scheduler import RequestResult, RequestScheduler, ServiceStats
from repro.service.server import fastq_payload
from repro.service.session import AlignmentSession
from repro.stream import DEFAULT_CHUNK_READS, ReadChunk, open_read_stream

#: Wire verbs of the streaming workloads (``docs/streaming.md``).
_STREAM_VERBS = {"align": "ALIGNSTREAM", "paired": "PAIREDSTREAM",
                 "count": "COUNTSTREAM", "screen": "SCREENSTREAM"}


class AlignmentClient:
    """In-process client of a resident alignment session."""

    def __init__(self, scheduler_or_session) -> None:
        if isinstance(scheduler_or_session, AlignmentSession):
            self.scheduler = RequestScheduler(scheduler_or_session)
            self._owns_scheduler = True
        elif isinstance(scheduler_or_session, RequestScheduler):
            self.scheduler = scheduler_or_session
            self._owns_scheduler = False
        else:
            raise TypeError("AlignmentClient wraps an AlignmentSession or a "
                            "RequestScheduler, got "
                            f"{type(scheduler_or_session).__name__}")

    def submit(self, reads):
        """Non-blocking submission; returns a waitable request future."""
        return self.scheduler.submit(reads)

    def align(self, reads, timeout: float | None = None) -> RequestResult:
        """Align one read set and wait for its demultiplexed result."""
        return self.scheduler.align(reads, timeout=timeout)

    def align_sam(self, reads, timeout: float | None = None) -> str:
        """Align one read set and return the SAM text."""
        return self.align(reads, timeout=timeout).sam

    def align_paired(self, reads, timeout: float | None = None) -> RequestResult:
        """Paired-end-align one interleaved read set (R1, R2, R1, R2, ...)."""
        return self.request(reads, workload="paired", timeout=timeout)

    def align_paired_sam(self, reads, timeout: float | None = None) -> str:
        """Paired-end-align an interleaved read set; return the SAM text."""
        return self.align_paired(reads, timeout=timeout).sam

    def request(self, reads, workload: str = "align",
                timeout: float | None = None) -> RequestResult:
        """Run any registered plan workload (align/count/screen/paired)."""
        return self.scheduler.request(reads, workload=workload,
                                      timeout=timeout)

    def count(self, reads, timeout: float | None = None):
        """Seed-frequency histogram of one read set (``SeedCountSummary``)."""
        return self.request(reads, workload="count", timeout=timeout).output

    def screen(self, reads, timeout: float | None = None):
        """Exact-match hit/miss screen of one read set (``ScreenSummary``)."""
        return self.request(reads, workload="screen", timeout=timeout).output

    def stats(self) -> ServiceStats:
        return self.scheduler.stats()

    def metrics(self) -> dict:
        """A snapshot of the scheduler's unified metrics registry."""
        return self.scheduler.metrics.snapshot()

    def close(self) -> None:
        """Close the scheduler if this client created it."""
        if self._owns_scheduler:
            self.scheduler.close()

    def __enter__(self) -> "AlignmentClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ServiceError(RuntimeError):
    """An ``ERR`` response from the alignment server."""


class ServiceBusyError(ServiceError):
    """A ``BUSY`` response: the gateway's pending queue was full and the
    request was rejected explicitly (retry later), never silently dropped."""


class SocketAlignmentClient:
    """TCP client for the ``meraligner serve`` line protocol.

    *connect_retries* enables bounded exponential backoff with jitter on
    connection-refused/reset errors (``0``, the default, keeps failures
    immediate -- tests want determinism, load generators and CI smoke
    scripts opt in to ride out server start-up races).  Only the *connect*
    is retried: a request that reached the server is never replayed.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7679,
                 timeout: float | None = 300.0, connect_retries: int = 0,
                 retry_base_s: float = 0.05,
                 retry_max_s: float = 2.0) -> None:
        if connect_retries < 0:
            raise ValueError("connect_retries must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.retry_base_s = retry_base_s
        self.retry_max_s = retry_max_s

    # -- wire helpers ---------------------------------------------------------

    def _connect(self) -> socket.socket:
        attempt = 0
        while True:
            try:
                return socket.create_connection((self.host, self.port),
                                                timeout=self.timeout)
            except OSError:
                if attempt >= self.connect_retries:
                    raise
                delay = min(self.retry_max_s,
                            self.retry_base_s * (2 ** attempt))
                # Full jitter keeps simultaneous clients from re-colliding
                # on the same backoff schedule.
                time.sleep(delay * random.random())
                attempt += 1

    @staticmethod
    def _routing(index: str | None, tenant: str | None) -> str:
        """The ``INDEX=``/``TENANT=`` option suffix of a query command."""
        suffix = ""
        for key, value in (("INDEX", index), ("TENANT", tenant)):
            if value is None:
                continue
            if not value or any(ch.isspace() for ch in value):
                raise ValueError(f"{key.lower()} names must be non-empty "
                                 f"and whitespace-free, got {value!r}")
            suffix += f" {key}={value}"
        return suffix

    def _roundtrip(self, command: str, payload: bytes = b"") -> bytes:
        with self._connect() as conn:
            conn.sendall(command.encode("utf-8") + b"\n" + payload)
            with conn.makefile("rb") as rfile:
                # UTF-8, matching the server's ERR/BUSY encoding: status
                # messages embed user-controlled text (paths, index names).
                status = rfile.readline().decode("utf-8",
                                                 errors="replace").strip()
                if status.startswith("BUSY"):
                    raise ServiceBusyError(status[4:].strip()
                                           or "server busy")
                if status.startswith("ERR"):
                    raise ServiceError(status[3:].strip() or "server error")
                if not status.startswith("OK"):
                    raise ServiceError(f"malformed server response {status!r}")
                try:
                    n_bytes = int(status.split()[1])
                except (IndexError, ValueError):
                    raise ServiceError(
                        f"malformed server response {status!r}") from None
                body = rfile.read(n_bytes) if n_bytes else b""
                if len(body) != n_bytes:
                    raise ServiceError("truncated server response")
                return body

    # -- commands -------------------------------------------------------------

    def ping(self) -> bool:
        """True when the server answers the readiness probe."""
        try:
            self._roundtrip("PING")
            return True
        except (OSError, ServiceError):
            return False

    def align_sam(self, reads, index: str | None = None,
                  tenant: str | None = None) -> str:
        """Align reads (FastqRecord/ReadRecord) and return the SAM text.

        *index* routes to a named resident index and *tenant* attributes
        the request for fair admission (gateway-backed servers only; both
        default to the server's defaults, preserving the pre-gateway wire
        format exactly).
        """
        reads = list(reads)
        return self._roundtrip(
            f"ALIGN {len(reads)}{self._routing(index, tenant)}",
            fastq_payload(reads)).decode("ascii")

    def paired_sam(self, reads, index: str | None = None,
                   tenant: str | None = None) -> str:
        """Paired-end-align interleaved reads; return the paired SAM text.

        *reads* must alternate R1, R2 (an even count); the server rejects
        odd payloads with ``ERR``.
        """
        reads = list(reads)
        return self._roundtrip(
            f"PAIRED {len(reads)}{self._routing(index, tenant)}",
            fastq_payload(reads)).decode("ascii")

    def count_tsv(self, reads, index: str | None = None,
                  tenant: str | None = None) -> str:
        """Seed-frequency histogram of the reads, as the server's TSV."""
        reads = list(reads)
        return self._roundtrip(
            f"COUNT {len(reads)}{self._routing(index, tenant)}",
            fastq_payload(reads)).decode("ascii")

    def screen_tsv(self, reads, index: str | None = None,
                   tenant: str | None = None) -> str:
        """Exact-match hit/miss rows for the reads, as the server's TSV."""
        reads = list(reads)
        return self._roundtrip(
            f"SCREEN {len(reads)}{self._routing(index, tenant)}",
            fastq_payload(reads)).decode("ascii")

    def workload_text(self, workload: str, reads, index: str | None = None,
                      tenant: str | None = None) -> str:
        """The rendered output of any wire workload
        (ALIGN/COUNT/SCREEN/PAIRED)."""
        verbs = {"align": self.align_sam, "count": self.count_tsv,
                 "screen": self.screen_tsv, "paired": self.paired_sam}
        try:
            method = verbs[workload]
        except KeyError:
            raise ServiceError(f"unknown workload {workload!r}; available: "
                               f"{', '.join(sorted(verbs))}") from None
        return method(reads, index=index, tenant=tenant)

    # -- streaming ------------------------------------------------------------

    def stream_parts(self, workload: str, reads, *,
                     chunk_reads: int | None = None,
                     index: str | None = None, tenant: str | None = None,
                     reads2=None):
        """Stream a workload over one persistent connection, yielding the
        server's output parts as they arrive.

        *reads* may be a FASTQ/SeqDB path, a record iterable, or an
        iterator of :class:`~repro.stream.ReadChunk` s; anything unchunked
        is chunked locally at *chunk_reads* reads (whole pairs for
        ``paired``), so at no point does either side hold the full library.
        For ``align``/``paired`` the yielded parts concatenate to exactly
        the one-shot SAM response; ``count``/``screen`` yield a single
        final TSV.  A sender thread writes ``CHUNK`` frames while this
        generator reads replies, so a large stream cannot deadlock on full
        TCP buffers.  Raises :class:`ServiceBusyError` on a mid-stream
        ``BUSY`` and :class:`ServiceError` on ``ERR`` (the connection is
        closed either way -- resubmit the whole stream to retry).
        """
        try:
            verb = _STREAM_VERBS[workload]
        except KeyError:
            raise ServiceError(
                f"unknown workload {workload!r}; available: "
                f"{', '.join(sorted(_STREAM_VERBS))}") from None
        chunk_reads = chunk_reads or DEFAULT_CHUNK_READS
        paired = workload == "paired"
        if isinstance(reads, (str,)) or hasattr(reads, "__fspath__") \
                or reads2 is not None:
            chunks = open_read_stream(reads, chunk_reads=chunk_reads,
                                      paired=paired, reads2=reads2)
        else:
            iterator = iter(reads)
            first = next(iterator, None)
            if first is None:
                chunks = iter(())
            elif isinstance(first, ReadChunk):
                chunks = chain([first], iterator)
            else:
                chunks = open_read_stream(chain([first], iterator),
                                          chunk_reads=chunk_reads,
                                          paired=paired)
        command = f"{verb}{self._routing(index, tenant)}\n"
        sender_error: list[BaseException] = []
        conn = self._connect()
        try:
            conn.sendall(command.encode("utf-8"))

            def send() -> None:
                try:
                    for chunk in chunks:
                        records = (chunk.records
                                   if isinstance(chunk, ReadChunk) else chunk)
                        frame = f"CHUNK {len(records)}\n".encode("ascii")
                        conn.sendall(frame + fastq_payload(records))
                    conn.sendall(b"END\n")
                except OSError:
                    pass  # reply side saw ERR/BUSY and closed the socket
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    sender_error.append(exc)
                    try:
                        # Half-close so the server's reader sees EOF instead
                        # of waiting forever for the END that will not come.
                        conn.shutdown(socket.SHUT_WR)
                    except OSError:
                        pass

            sender = threading.Thread(target=send, daemon=True,
                                      name="stream-sender")
            sender.start()
            with conn.makefile("rb") as rfile:
                while True:
                    status = rfile.readline().decode(
                        "utf-8", errors="replace").strip()
                    if not status:
                        if sender_error:
                            raise sender_error[0]
                        raise ServiceError("connection closed mid-stream")
                    tokens = status.split()
                    if tokens[0] == "CHUNK" and len(tokens) == 2 \
                            and tokens[1].isdigit():
                        n_bytes = int(tokens[1])
                        body = rfile.read(n_bytes) if n_bytes else b""
                        if len(body) != n_bytes:
                            raise ServiceError("truncated stream part")
                        yield body.decode("ascii")
                    elif tokens[0] == "DONE":
                        break
                    elif tokens[0] == "BUSY":
                        raise ServiceBusyError(status[4:].strip()
                                               or "server busy")
                    elif tokens[0] == "ERR":
                        # A local source error half-closed the stream; the
                        # server's ERR is just its echo -- report the cause.
                        if sender_error:
                            raise sender_error[0]
                        raise ServiceError(status[3:].strip()
                                           or "server error")
                    else:
                        raise ServiceError(
                            f"malformed streaming response {status!r}")
            sender.join(timeout=5.0)
            if sender_error:
                raise sender_error[0]
        finally:
            conn.close()

    def align_stream(self, reads, *, chunk_reads: int | None = None,
                     index: str | None = None, tenant: str | None = None):
        """Stream single-end alignment; yields SAM parts whose concatenation
        is byte-identical to :meth:`align_sam` on the same reads."""
        return self.stream_parts("align", reads, chunk_reads=chunk_reads,
                                 index=index, tenant=tenant)

    def paired_stream(self, reads, *, chunk_reads: int | None = None,
                      index: str | None = None, tenant: str | None = None,
                      reads2=None):
        """Stream paired-end alignment (interleaved, or R1 + *reads2*)."""
        return self.stream_parts("paired", reads, chunk_reads=chunk_reads,
                                 index=index, tenant=tenant, reads2=reads2)

    # -- gateway administration -----------------------------------------------

    def indices(self) -> dict:
        """The resident indices of a gateway-backed server (``INDICES``)."""
        return json.loads(self._roundtrip("INDICES").decode("utf-8"))

    def register_index(self, name: str, path) -> dict:
        """Build and register a named index from a server-side FASTA path."""
        return json.loads(
            self._roundtrip(f"REGISTER {name} {path}").decode("utf-8"))

    def evict_index(self, name: str) -> None:
        """Evict a named resident index (the default index refuses)."""
        self._roundtrip(f"EVICT {name}")

    def stats(self) -> dict:
        """The server's service/session statistics as parsed JSON.

        Decoded as UTF-8: session summaries embed reference/target names,
        which are not guaranteed to be ASCII.
        """
        return json.loads(self._roundtrip("STATS").decode("utf-8"))

    def metrics(self) -> dict:
        """The server's unified ``METRICS`` snapshot as parsed JSON.

        Covers the metrics registry (scheduler, session, backend and server
        series), the service stats, the session summary, cumulative
        communication counters and cache statistics.
        """
        return json.loads(self._roundtrip("METRICS").decode("utf-8"))

    def metrics_text(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        return self._roundtrip("METRICS PROM").decode("utf-8")

    def shutdown(self) -> None:
        """Ask the server to shut down cleanly."""
        self._roundtrip("SHUTDOWN")
