"""Resident index sessions: build once, run any plan workload many times.

:meth:`repro.core.pipeline.MerAligner.prepare` runs the SPMD
index-construction phases (target fragmentation, seed extraction and routing,
single-copy marking) exactly once on a fresh runtime and returns an
:class:`AlignmentSession`.  The session keeps everything a request needs
resident -- the :class:`~repro.pgas.runtime.PgasRuntime` with its shared
heap, the distributed seed index, the target store, the per-node software
caches, and the execution backend's rank machinery (see
:class:`~repro.backend.base.BackendSession`) -- so every request runs only
the query-side stages of its plan as one SPMD invocation.

Requests are *plans*: :meth:`AlignmentSession.align` runs the query side of
the default align plan, and :meth:`AlignmentSession.run_plan_many` runs any
registered workload (``align``, ``count``, ``screen``, ``paired``) or bespoke
:class:`~repro.core.plan.AlignmentPlan` against the same resident index --
the serving stack batches and demultiplexes every workload the same way
because every sink produces per-unit payloads (one per read, or one per
(R1, R2) pair for the paired workload, whose mates are kept together through
tagging, permutation and demultiplexing).

Request isolation and equivalence guarantees:

* every request's report covers *that invocation only* -- communication
  statistics, phase timings and cache statistics are per-invocation deltas,
  never cumulative across requests;
* by default each request starts with cold per-node caches (``clear()`` before
  the invocation), so a request's communication profile -- including its
  off-node get count -- is exactly that of a fresh one-shot run of the same
  reads; pass ``warm_caches=True`` to let a long-lived service exploit
  cross-request locality instead (statistics then depend on request history,
  and on the multiprocess backend caches are per-fork so stay effectively
  cold);
* outputs (SAM bytes for ``align``, TSV bytes for ``count``/``screen``) are
  identical to the one-shot offline run of the same reads, on every backend,
  whether the request ran alone or coalesced into a micro-batch with other
  requests.

The batched entry point :meth:`AlignmentSession.align_many` /
:meth:`run_plan_many` is what the
:class:`~repro.service.scheduler.RequestScheduler` uses: the reads of many
requests are tagged, merged, permuted and staged in a single SPMD invocation,
then demultiplexed per request and reordered through the sink's
``request_order`` so each request's output matches its one-shot order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.alignment.result import Alignment
from repro.core.config import AlignerConfig, config_summary
from repro.core.load_balance import permute_reads
from repro.core.pipeline import MerAligner
from repro.core.plan import (AlignmentPlan, PlanRunner, ScreenSummary,
                             SeedCountSummary, merge_rank_returns,
                             normalize_reads, normalize_targets_named,
                             one_shot_read_order, plan_for_workload)
from repro.core.seed_index import SeedIndex
from repro.core.stats import AlignerReport, AlignmentCounters, PhaseStats
from repro.core.target_store import TargetStore
from repro.dna.synthetic import ReadRecord
from repro.hashtable.cache import CacheStats, SoftwareCache
from repro.io.sam import (paired_sam_lines, paired_sam_text, sam_header,
                          sam_text)
from repro.pgas.cost_model import CommStats
from repro.pgas.runtime import PgasRuntime
from repro.pgas.trace import PhaseTrace
from repro.stream import ReadChunk

__all__ = ["AlignmentSession", "BatchOutcome", "PlanBatchOutcome",
           "PreparedIndex", "StreamPart", "merge_stream_outputs",
           "one_shot_read_order"]


@dataclass
class StreamPart:
    """One incremental piece of a streamed plan run.

    ``text`` parts concatenate, in yield order, to exactly the materialised
    render of the whole read set.  Every chunk yields one part; a trailing
    part with ``final=True`` carries deferred text (the header of an empty
    SAM stream; the count/screen TSV, whose header holds whole-run
    aggregates) plus the aggregated deterministic counters and chunk/unit
    totals of the whole stream.
    """

    chunk_index: int
    n_reads: int
    text: str
    output: Any
    counters: AlignmentCounters
    final: bool = False
    n_chunks: int = 0
    n_units: int = 0


def merge_stream_outputs(workload: str, left: Any, right: Any) -> Any:
    """Fold two chunk summaries of an aggregating workload into one."""
    if workload == "count":
        merged = SeedCountSummary(
            histogram=dict(left.histogram),
            n_reads=left.n_reads + right.n_reads,
            n_seed_lookups=left.n_seed_lookups + right.n_seed_lookups)
        for occurrences, count in right.histogram.items():
            merged.histogram[occurrences] = \
                merged.histogram.get(occurrences, 0) + count
        return merged
    if workload == "screen":
        return ScreenSummary(rows=list(left.rows) + list(right.rows))
    raise KeyError(f"no streaming merge for workload {workload!r}")


@dataclass
class PlanBatchOutcome:
    """Everything one micro-batch SPMD invocation produced, demultiplexed.

    ``per_request_outputs`` holds each request's sink-collected product --
    a flat alignment list for ``align``, a
    :class:`~repro.core.plan.SeedCountSummary` for ``count``, a
    :class:`~repro.core.plan.ScreenSummary` for ``screen``.
    """

    workload: str
    per_request_outputs: list[Any]
    per_request_counters: list[AlignmentCounters]
    counters: AlignmentCounters
    per_rank_stats: list[CommStats]
    phases: list[PhaseTrace]
    backend: str
    cache_stats: dict[str, CacheStats]
    n_reads: int
    stage_stats: list[PhaseStats] = field(default_factory=list)

    @property
    def stats(self) -> CommStats:
        """Batch-wide aggregated communication statistics."""
        return CommStats.aggregate(self.per_rank_stats)

    @property
    def modeled_elapsed(self) -> float:
        """Modelled wall time of the batch (sum of its phase times)."""
        return sum(phase.elapsed for phase in self.phases)


@dataclass
class BatchOutcome(PlanBatchOutcome):
    """A :class:`PlanBatchOutcome` of the align workload (SAM-producing)."""

    @property
    def per_request_alignments(self) -> list[list[Alignment]]:
        return self.per_request_outputs


@dataclass
class PreparedIndex:
    """The resident distributed index built once per session.

    Holds live references to everything ``prepare()`` constructed on the
    runtime -- the seed index, the target store and the per-node caches --
    plus the build invocation's phase traces and per-rank communication
    deltas, so a session (or its stats endpoint) can report the amortized
    construction cost separately from per-request costs.
    """

    runtime: PgasRuntime
    config: AlignerConfig
    backend: str
    target_store: TargetStore
    seed_index: SeedIndex
    seed_cache: SoftwareCache | None
    target_cache: SoftwareCache | None
    target_names: list[str]
    target_lengths: list[int]
    build_phases: list[PhaseTrace] = field(default_factory=list)
    build_per_rank_stats: list[CommStats] = field(default_factory=list)

    @property
    def build_stats(self) -> CommStats:
        """Aggregated communication statistics of the index construction."""
        return CommStats.aggregate(self.build_per_rank_stats)

    @property
    def index_construction_time(self) -> float:
        """Modelled seconds of the one-time index build."""
        return sum(phase.elapsed for phase in self.build_phases)

    @property
    def n_fragments(self) -> int:
        """Fragment count read from the authoritative heap segments.

        ``TargetStore.directory`` is a driver-side convenience mirror that
        worker processes do not populate (process-backend caveat); counting
        the heap segments is exact on every backend.
        """
        return len(self.target_store.all_fragments())

    def to_json_dict(self) -> dict:
        return {
            "backend": self.backend,
            "n_ranks": self.runtime.n_ranks,
            "n_targets": len(self.target_names),
            "n_fragments": self.n_fragments,
            "seed_index_keys": self.seed_index.n_keys,
            "seed_index_values": self.seed_index.n_values,
            "index_construction_time": self.index_construction_time,
            "build_phases": [{"name": p.name, "elapsed": p.elapsed}
                             for p in self.build_phases],
        }


class AlignmentSession:
    """A live aligner: resident index plus repeatable plan invocations."""

    def __init__(self, aligner: MerAligner, prepared: PreparedIndex,
                 backend_session) -> None:
        self.aligner = aligner
        self.prepared = prepared
        self._backend_session = backend_session
        self._closed = False
        self.requests_served = 0
        # Per-workload runners are stateless; cache them so repeated requests
        # do not rebuild plan objects.
        self._runners: dict[str, PlanRunner] = {}
        # Optional repro.obs.MetricsRegistry (attach_metrics); when set,
        # run_plan_many records per-invocation wall + modelled latency and
        # exports per-stage PhaseStats totals.  Passive: wall-clock only.
        self.metrics = None

    def attach_metrics(self, registry) -> None:
        """Record this session's serving activity into *registry*.

        Also attaches the registry to the resident runtime so every backend
        invocation's wall-clock lands in the same snapshot (see
        :attr:`repro.pgas.runtime.PgasRuntime.metrics`).
        """
        self.metrics = registry
        self.prepared.runtime.metrics = registry

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(cls, aligner: MerAligner, runtime: PgasRuntime, targets,
              backend: str | None = None,
              target_names: list[str] | None = None) -> "AlignmentSession":
        """Run the index-construction phases once and wrap them in a session."""
        from repro.backend import default_backend_name, resolve_backend
        impl = resolve_backend(backend or default_backend_name())
        config = aligner.config
        named = normalize_targets_named(targets)
        names = (list(target_names) if target_names is not None
                 else [name for name, _sequence in named])
        target_seqs = [sequence for _name, sequence in named]
        if len(names) != len(target_seqs):
            raise ValueError("target_names must match the number of targets")

        target_store = TargetStore(runtime)
        seed_index = SeedIndex(runtime, config)
        seed_cache = (SoftwareCache(runtime, config.seed_cache_bytes_per_node,
                                    name="seed_index")
                      if config.use_seed_index_cache else None)
        target_cache = (SoftwareCache(runtime, config.target_cache_bytes_per_node,
                                      name="target")
                        if config.use_target_cache else None)

        # Make the ranks resident *before* the build so the backend's session
        # machinery (thread pool, shared-memory promotions) serves the build
        # invocation too.
        backend_session = impl.open_session(runtime)
        runner = aligner.runner()

        def build_spmd(ctx):
            yield from runner.index_program(ctx, target_seqs, target_store,
                                            seed_index)

        try:
            result = runtime.run_spmd(build_spmd, backend=impl,
                                      label="session:build")
        except BaseException:
            # A failed build must not leak the resident machinery (parked
            # rank threads, mapped shared-memory segments).
            backend_session.close()
            raise
        prepared = PreparedIndex(
            runtime=runtime, config=config, backend=impl.name,
            target_store=target_store, seed_index=seed_index,
            seed_cache=seed_cache, target_cache=target_cache,
            target_names=names,
            target_lengths=[len(sequence) for sequence in target_seqs],
            build_phases=result.phases,
            build_per_rank_stats=result.per_rank_stats,
        )
        return cls(aligner, prepared, backend_session)

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the backend's resident rank machinery (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._backend_session is not None:
            self._backend_session.close()

    def __enter__(self) -> "AlignmentSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- serving --------------------------------------------------------------

    def _resolve_plan(self, plan: "AlignmentPlan | str") -> tuple[AlignmentPlan,
                                                                  PlanRunner]:
        """A (plan, runner) pair for a workload name or an explicit plan."""
        if isinstance(plan, str):
            if plan not in self._runners:
                self._runners[plan] = self.aligner.runner(plan_for_workload(plan))
            runner = self._runners[plan]
            return runner.plan, runner
        return plan, self.aligner.runner(plan)

    def align(self, reads, warm_caches: bool = False) -> AlignerReport:
        """Align one request against the resident index.

        Runs the query-side stages as a single SPMD invocation and returns a
        full :class:`AlignerReport` whose phase traces, communication
        statistics and cache statistics cover **this request only**.
        Alignments are byte-identical (through SAM) to a one-shot
        ``MerAligner.run`` on the same reads.
        """
        outcome = self.align_many([reads], warm_caches=warm_caches)
        prepared = self.prepared
        return AlignerReport(
            n_ranks=prepared.runtime.n_ranks,
            config_summary=config_summary(prepared.config, outcome.backend),
            alignments=outcome.per_request_alignments[0],
            counters=outcome.counters,
            phases=outcome.phases,
            per_rank_stats=outcome.per_rank_stats,
            seed_index_keys=prepared.seed_index.n_keys,
            seed_index_values=prepared.seed_index.n_values,
            single_copy_fragment_fraction=(
                prepared.target_store.single_copy_fraction()),
            cache_stats=outcome.cache_stats,
            stage_stats=outcome.stage_stats,
        )

    def align_many(self, read_lists, warm_caches: bool = False) -> BatchOutcome:
        """Align a micro-batch of requests in one SPMD invocation.

        The requests' reads are tagged with ``(request, position)``, merged,
        permuted (Theorem 1 applies to the whole batch) and aligned through
        the resident index; the per-read results are then demultiplexed and
        each request's alignments reordered to its one-shot order, so every
        request sees exactly the alignments (and ordering) an offline run of
        its own reads would report.
        """
        outcome = self.run_plan_many("align", read_lists,
                                     warm_caches=warm_caches)
        return BatchOutcome(**outcome.__dict__)

    def align_paired(self, reads, warm_caches: bool = False):
        """Paired-end alignment of one interleaved read set.

        Returns the list of :class:`~repro.io.sam.PairedSamRecord` outcomes
        (render with :meth:`render` / ``paired_sam_for``); byte-identical
        through SAM to the offline ``meraligner align --paired`` run of the
        same reads.
        """
        return self.run_plan_many("paired", [reads],
                                  warm_caches=warm_caches).per_request_outputs[0]

    def count(self, reads, warm_caches: bool = False):
        """Seed-frequency histogram of one request against the resident index."""
        return self.run_plan_many("count", [reads],
                                  warm_caches=warm_caches).per_request_outputs[0]

    def screen(self, reads, warm_caches: bool = False):
        """Exact-match hit/miss screen of one request against the index."""
        return self.run_plan_many("screen", [reads],
                                  warm_caches=warm_caches).per_request_outputs[0]

    def run_plan_many(self, plan: "AlignmentPlan | str", read_lists,
                      warm_caches: bool = False) -> PlanBatchOutcome:
        """Run the query side of *plan* over a micro-batch of requests.

        *plan* is a registered workload name (``align``, ``count``,
        ``screen``, ``paired``) or an :class:`~repro.core.plan.AlignmentPlan` whose query
        stages are compatible with the resident index.  The batch runs as
        **one** SPMD invocation; per-read payloads are demultiplexed per
        request, reordered through the sink's ``request_order`` and folded
        with the sink's ``collect`` -- so each request's output is identical
        to a one-shot offline run of the plan on its own reads.
        """
        if self._closed:
            raise RuntimeError("alignment session is closed")
        plan, runner = self._resolve_plan(plan)
        prepared = self.prepared
        config = prepared.config
        if (plan.needs_single_copy_marks()
                and not config.use_exact_match_optimization):
            # The resident index was built without phase 4 (single-copy
            # marking), so an unconditional exact probe would read the
            # optimistic default flags and report rows that differ from the
            # offline plan (whose BuildIndex forces the marking).
            raise RuntimeError(
                f"the {plan.name!r} plan needs single-copy-seed marks, but "
                "this session's index was built with "
                "use_exact_match_optimization=False; rebuild the session "
                "with the exact-match optimization enabled")
        sink = plan.sink
        group = sink.group_size
        requests = [normalize_reads(reads) for reads in read_lists]
        for request_index, reads in enumerate(requests):
            if group > 1 and len(reads) % group != 0:
                raise ValueError(
                    f"request {request_index} of the {plan.workload!r} "
                    f"workload needs whole units of {group} reads, got "
                    f"{len(reads)} (pass an interleaved paired read set)")

        caches = [cache for cache in (prepared.seed_cache, prepared.target_cache)
                  if cache is not None]
        if not warm_caches:
            # Cold caches per request: every request's communication profile
            # (off-node gets included) matches a fresh one-shot run, on every
            # backend.  See the module docstring.
            for cache in caches:
                cache.clear()
        cache_before = {cache.name: cache.total_stats() for cache in caches}

        # The tagging/permutation/demux unit is the sink's group: single
        # reads for per-read workloads, whole (R1, R2) pairs for ``paired``
        # -- mates stay together through batching exactly as offline.
        request_units: list[list[tuple[ReadRecord, ...]]] = [
            [tuple(reads[i * group:(i + 1) * group])
             for i in range(len(reads) // group)]
            for reads in requests]
        tagged: list[tuple[int, int, tuple[ReadRecord, ...]]] = []
        for request_index, units in enumerate(request_units):
            for unit_index, unit in enumerate(units):
                tagged.append((request_index, unit_index, unit))
        if config.permute_reads:
            tagged = permute_reads(tagged, seed=config.permutation_seed)
        read_records = [read for _request, _position, unit in tagged
                        for read in unit]

        def plan_spmd(ctx):
            return (yield from runner.query_program(
                ctx, read_records, prepared.seed_index, prepared.target_store,
                prepared.seed_cache, prepared.target_cache))

        wall_start = time.perf_counter()
        result = prepared.runtime.run_spmd(plan_spmd, backend=prepared.backend,
                                           label=f"serve:{plan.name}")
        invocation_wall = time.perf_counter() - wall_start
        groups, counters, stage_stats = merge_rank_returns(result.results, plan)

        demuxed: list[dict[int, Any]] = [{} for _ in requests]
        for combined_index, payload in groups:
            request_index, unit_index, _unit = tagged[combined_index]
            demuxed[request_index][unit_index] = payload

        per_request_outputs: list[Any] = []
        per_request_counters: list[AlignmentCounters] = []
        for request_index, units in enumerate(request_units):
            order = sink.request_order(len(units), config)
            payloads = []
            for unit_index in order:
                payload = demuxed[request_index].get(unit_index)
                if payload is None:
                    unit = units[unit_index]
                    payload = sink.empty_payload(unit[0] if group == 1
                                                 else unit)
                payloads.append(payload)
            ordered_groups = list(zip(order, payloads))
            per_request_outputs.append(sink.collect(ordered_groups, config))
            per_request_counters.append(sink.derive_request_counters(payloads))

        cache_deltas = {cache.name: cache.total_stats().delta(cache_before[cache.name])
                        for cache in caches}
        self.requests_served += len(requests)
        if self.metrics is not None:
            workload = plan.workload
            modeled = sum(phase.elapsed for phase in result.phases)
            self.metrics.counter("session_invocations_total",
                                 workload=workload).inc()
            self.metrics.counter("session_requests_total",
                                 workload=workload).inc(len(requests))
            self.metrics.counter("session_reads_total",
                                 workload=workload).inc(len(read_records))
            self.metrics.histogram("session_invocation_wall_seconds",
                                   workload=workload).observe(invocation_wall)
            self.metrics.histogram("session_invocation_modeled_seconds",
                                   workload=workload).observe(modeled)
            for stage in stage_stats:
                self.metrics.counter("session_stage_modeled_seconds_total",
                                     stage=stage.name).inc(stage.elapsed)
                self.metrics.counter("session_stage_items_total",
                                     stage=stage.name).inc(stage.items)
        return PlanBatchOutcome(
            workload=plan.workload,
            per_request_outputs=per_request_outputs,
            per_request_counters=per_request_counters,
            counters=counters,
            per_rank_stats=result.per_rank_stats,
            phases=result.phases,
            backend=result.backend,
            cache_stats=cache_deltas,
            n_reads=len(read_records),
            stage_stats=stage_stats,
        )

    # -- streaming ------------------------------------------------------------

    def run_plan_stream(self, plan: "AlignmentPlan | str", chunks, *,
                        chunk_reads: int | None = None,
                        warm_caches: bool = False):
        """Run *plan* over a chunked read stream, yielding incremental parts.

        *chunks* is an iterable of :class:`repro.stream.ReadChunk` (any
        other iterable/path is adapted through
        :func:`repro.stream.open_read_stream` with the sink's unit size).
        Each chunk runs as one resident-index invocation; at no point is
        more than one chunk of reads held by the session, so memory stays
        bounded by the chunk size, not the library size.

        Yields one :class:`StreamPart` per chunk whose ``text`` parts
        concatenate to **exactly** the materialised render of the whole
        read set -- at any chunk size -- followed by a ``final`` part
        carrying trailing text (the count/screen TSV renders once, at the
        end, because its header holds whole-run aggregates) and the
        aggregated outcome.  Deterministic per-read counters
        (reads_processed/reads_aligned/alignments_reported/exact_path_hits
        ...) sum to exactly the materialised run's values; cache- and
        communication-dependent statistics depend on chunk boundaries the
        same way they already depend on bulk window boundaries (see
        :class:`repro.core.config.AlignerConfig` on bulk-mode drift).
        """
        plan_obj, _runner = self._resolve_plan(plan)
        sink = plan_obj.sink
        group = sink.group_size
        if not hasattr(chunks, "__iter__"):
            raise TypeError("chunks must be iterable")
        chunk_iter = iter(chunks)
        first = next(chunk_iter, None)
        if first is not None and not isinstance(first, ReadChunk):
            from itertools import chain
            from repro.stream import DEFAULT_CHUNK_READS, open_read_stream
            chunk_iter = open_read_stream(
                chain([first], chunk_iter),
                chunk_reads=chunk_reads or DEFAULT_CHUNK_READS,
                paired=group == 2)
            first = next(chunk_iter, None)
        workload = plan_obj.workload
        renders_incrementally = workload in ("align", "paired")

        totals = AlignmentCounters()
        aggregate: Any = None
        n_chunks = 0
        n_units = 0
        header_sent = False
        chunk = first
        while chunk is not None:
            outcome = self.run_plan_many(plan_obj, [list(chunk.records)],
                                         warm_caches=warm_caches)
            output = outcome.per_request_outputs[0]
            totals = totals.merge(outcome.per_request_counters[0])
            n_chunks += 1
            n_units += chunk.n_reads // group
            if renders_incrementally:
                text = self.render_stream_part(workload, output,
                                               include_header=not header_sent)
                header_sent = True
            else:
                aggregate = (output if aggregate is None
                             else merge_stream_outputs(workload, aggregate,
                                                       output))
                text = ""
            if self.metrics is not None:
                self.metrics.counter("stream_chunks_total",
                                     workload=workload).inc()
                self.metrics.counter("stream_units_total",
                                     workload=workload).inc(
                                         chunk.n_reads // group)
            yield StreamPart(chunk_index=chunk.index, n_reads=chunk.n_reads,
                             text=text, output=output,
                             counters=outcome.per_request_counters[0])
            chunk = next(chunk_iter, None)

        # Trailing part: the header of an empty SAM stream, or the one-shot
        # TSV of an aggregating workload (its header carries whole-run
        # totals, so it cannot be emitted before the stream ends).
        if renders_incrementally:
            final_text = ("" if header_sent
                          else self.render_stream_part(workload, [],
                                                       include_header=True))
            final_output: Any = None
        else:
            if aggregate is None:
                aggregate = (SeedCountSummary() if workload == "count"
                             else ScreenSummary(rows=[]))
            final_text = self.render(workload, aggregate)
            final_output = aggregate
        yield StreamPart(chunk_index=n_chunks, n_reads=0, text=final_text,
                         output=final_output, counters=totals, final=True,
                         n_chunks=n_chunks, n_units=n_units)

    def align_stream(self, chunks, *, chunk_reads: int | None = None,
                     warm_caches: bool = False):
        """Stream the align workload: yields :class:`StreamPart` s whose
        ``text`` fields concatenate to exactly :meth:`sam_for` of the whole
        run's alignments (header first, then records in input read order)."""
        return self.run_plan_stream("align", chunks, chunk_reads=chunk_reads,
                                    warm_caches=warm_caches)

    def align_paired_stream(self, chunks, *, chunk_reads: int | None = None,
                            warm_caches: bool = False):
        """Stream the paired workload (whole-pair chunks)."""
        return self.run_plan_stream("paired", chunks, chunk_reads=chunk_reads,
                                    warm_caches=warm_caches)

    # -- output helpers -------------------------------------------------------

    def render_stream_part(self, workload: str, output, *,
                           include_header: bool = False) -> str:
        """Render one streamed chunk's records as a text part.

        Concatenating the parts of a stream (header on the first part only)
        reproduces :meth:`render` of the whole run byte for byte.  Only the
        incremental workloads render parts; ``count``/``screen`` aggregate
        and render once at stream end (their TSV headers carry whole-run
        totals).
        """
        lines: list[str] = []
        if include_header:
            lines.extend(sam_header(self.prepared.target_names,
                                    self.prepared.target_lengths))
        if workload == "align":
            names = self.prepared.target_names
            for alignment in output:
                name = (names[alignment.target_id]
                        if 0 <= alignment.target_id < len(names)
                        else f"target{alignment.target_id}")
                lines.append(alignment.to_sam_line(name))
        elif workload == "paired":
            for pair in output:
                lines.extend(paired_sam_lines(pair,
                                              self.prepared.target_names))
        else:
            raise KeyError(
                f"workload {workload!r} does not render incrementally "
                "(count/screen render once at stream end)")
        return "\n".join(lines) + "\n" if lines else ""

    def sam_for(self, alignments: list[Alignment]) -> str:
        """Render alignments as SAM text against this session's targets."""
        return sam_text(alignments, self.prepared.target_names,
                        self.prepared.target_lengths)

    def paired_sam_for(self, pairs) -> str:
        """Render paired-end records as SAM text against this session's
        targets."""
        return paired_sam_text(pairs, self.prepared.target_names,
                               self.prepared.target_lengths)

    def render(self, workload: str, output: Any) -> str:
        """Render a sink's collected output as the wire/file text.

        ``align`` and ``paired`` render SAM; ``count`` and ``screen`` render
        their TSV (the screen TSV resolves target ids against this session's
        names).
        """
        if workload == "align":
            return self.sam_for(output)
        if workload == "paired":
            return self.paired_sam_for(output)
        if workload == "count":
            return output.to_tsv()
        if workload == "screen":
            return output.to_tsv(self.prepared.target_names)
        raise KeyError(f"no renderer for workload {workload!r}")

    def to_json_dict(self) -> dict:
        return {
            "requests_served": self.requests_served,
            "closed": self._closed,
            "index": self.prepared.to_json_dict(),
        }
