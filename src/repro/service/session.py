"""Resident index sessions: build once, align many times.

:meth:`repro.core.pipeline.MerAligner.prepare` runs the SPMD
index-construction phases (target fragmentation, seed extraction and routing,
single-copy marking) exactly once on a fresh runtime and returns an
:class:`AlignmentSession`.  The session keeps everything a request needs
resident -- the :class:`~repro.pgas.runtime.PgasRuntime` with its shared
heap, the distributed seed index, the target store, the per-node software
caches, and the execution backend's rank machinery (see
:class:`~repro.backend.base.BackendSession`) -- so every
:meth:`AlignmentSession.align` call runs only the aligning phases
(``read_queries`` + ``align_reads``) as one SPMD invocation.

Request isolation and equivalence guarantees:

* every ``align()`` report covers *that invocation only* -- communication
  statistics, phase timings and cache statistics are per-invocation deltas,
  never cumulative across requests;
* by default each request starts with cold per-node caches (``clear()`` before
  the invocation), so a request's communication profile -- including its
  off-node get count -- is exactly that of a fresh one-shot run of the same
  reads; pass ``warm_caches=True`` to let a long-lived service exploit
  cross-request locality instead (statistics then depend on request history,
  and on the multiprocess backend caches are per-fork so stay effectively
  cold);
* alignments (and therefore SAM bytes) are identical to the one-shot
  ``MerAligner.run`` on the same reads, on every backend, whether the request
  ran alone or coalesced into a micro-batch with other requests.

The batched entry point :meth:`AlignmentSession.align_many` is what the
:class:`~repro.service.scheduler.RequestScheduler` uses: the reads of many
requests are tagged, merged, permuted and aligned in a single SPMD invocation
through the bulk-lookup engine, then demultiplexed per request and reordered
so each request's alignment list matches its one-shot order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alignment.result import Alignment
from repro.core.config import AlignerConfig
from repro.core.load_balance import permute_reads
from repro.core.pipeline import (MerAligner, _normalize_reads,
                                 _normalize_targets_named, config_summary)
from repro.core.seed_index import SeedIndex
from repro.core.stats import AlignerReport, AlignmentCounters
from repro.core.target_store import TargetStore
from repro.dna.synthetic import ReadRecord
from repro.hashtable.cache import CacheStats, SoftwareCache
from repro.io.sam import sam_text
from repro.pgas.cost_model import CommStats
from repro.pgas.runtime import PgasRuntime
from repro.pgas.trace import PhaseTrace


def one_shot_read_order(n_reads: int, config: AlignerConfig) -> list[int]:
    """Read indices in the order a one-shot run reports their alignments.

    ``MerAligner.run`` permutes the read list (Theorem 1 load balancing)
    before block-partitioning it over the ranks, and the flat alignment list
    concatenates the per-rank chunks in rank order -- i.e. it follows the
    *permuted* read order.  The service reassembles each request's
    demultiplexed alignments in this exact order so its SAM output is
    byte-identical to the offline run.
    """
    indices = list(range(n_reads))
    if config.permute_reads:
        return permute_reads(indices, seed=config.permutation_seed)
    return indices


@dataclass
class BatchOutcome:
    """Everything one micro-batch SPMD invocation produced, demultiplexed."""

    per_request_alignments: list[list[Alignment]]
    per_request_counters: list[AlignmentCounters]
    counters: AlignmentCounters
    per_rank_stats: list[CommStats]
    phases: list[PhaseTrace]
    backend: str
    cache_stats: dict[str, CacheStats]
    n_reads: int

    @property
    def stats(self) -> CommStats:
        """Batch-wide aggregated communication statistics."""
        return CommStats.aggregate(self.per_rank_stats)

    @property
    def modeled_elapsed(self) -> float:
        """Modelled wall time of the batch (sum of its phase times)."""
        return sum(phase.elapsed for phase in self.phases)


def _derive_request_counters(per_read: list[list[Alignment]]) -> AlignmentCounters:
    """Per-request event counters derivable from demultiplexed alignments.

    Lookup/SW effort counters cannot be split exactly across the requests of a
    coalesced batch (a bulk window mixes their seeds); those stay on the
    batch-level :class:`BatchOutcome`.
    """
    counters = AlignmentCounters()
    for alignments in per_read:
        counters.reads_processed += 1
        if alignments:
            counters.reads_aligned += 1
            counters.alignments_reported += len(alignments)
            if len(alignments) == 1 and alignments[0].is_exact:
                counters.exact_path_hits += 1
    return counters


@dataclass
class PreparedIndex:
    """The resident distributed index built once per session.

    Holds live references to everything ``prepare()`` constructed on the
    runtime -- the seed index, the target store and the per-node caches --
    plus the build invocation's phase traces and per-rank communication
    deltas, so a session (or its stats endpoint) can report the amortized
    construction cost separately from per-request costs.
    """

    runtime: PgasRuntime
    config: AlignerConfig
    backend: str
    target_store: TargetStore
    seed_index: SeedIndex
    seed_cache: SoftwareCache | None
    target_cache: SoftwareCache | None
    target_names: list[str]
    target_lengths: list[int]
    build_phases: list[PhaseTrace] = field(default_factory=list)
    build_per_rank_stats: list[CommStats] = field(default_factory=list)

    @property
    def build_stats(self) -> CommStats:
        """Aggregated communication statistics of the index construction."""
        return CommStats.aggregate(self.build_per_rank_stats)

    @property
    def index_construction_time(self) -> float:
        """Modelled seconds of the one-time index build."""
        return sum(phase.elapsed for phase in self.build_phases)

    @property
    def n_fragments(self) -> int:
        """Fragment count read from the authoritative heap segments.

        ``TargetStore.directory`` is a driver-side convenience mirror that
        worker processes do not populate (process-backend caveat); counting
        the heap segments is exact on every backend.
        """
        return len(self.target_store.all_fragments())

    def to_json_dict(self) -> dict:
        return {
            "backend": self.backend,
            "n_ranks": self.runtime.n_ranks,
            "n_targets": len(self.target_names),
            "n_fragments": self.n_fragments,
            "seed_index_keys": self.seed_index.n_keys,
            "seed_index_values": self.seed_index.n_values,
            "index_construction_time": self.index_construction_time,
            "build_phases": [{"name": p.name, "elapsed": p.elapsed}
                             for p in self.build_phases],
        }


class AlignmentSession:
    """A live aligner: resident index plus repeatable align invocations."""

    def __init__(self, aligner: MerAligner, prepared: PreparedIndex,
                 backend_session) -> None:
        self.aligner = aligner
        self.prepared = prepared
        self._backend_session = backend_session
        self._closed = False
        self.requests_served = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(cls, aligner: MerAligner, runtime: PgasRuntime, targets,
              backend: str | None = None,
              target_names: list[str] | None = None) -> "AlignmentSession":
        """Run the index-construction phases once and wrap them in a session."""
        from repro.backend import default_backend_name, resolve_backend
        impl = resolve_backend(backend or default_backend_name())
        config = aligner.config
        named = _normalize_targets_named(targets)
        names = (list(target_names) if target_names is not None
                 else [name for name, _sequence in named])
        target_seqs = [sequence for _name, sequence in named]
        if len(names) != len(target_seqs):
            raise ValueError("target_names must match the number of targets")

        target_store = TargetStore(runtime)
        seed_index = SeedIndex(runtime, config)
        seed_cache = (SoftwareCache(runtime, config.seed_cache_bytes_per_node,
                                    name="seed_index")
                      if config.use_seed_index_cache else None)
        target_cache = (SoftwareCache(runtime, config.target_cache_bytes_per_node,
                                      name="target")
                        if config.use_target_cache else None)

        # Make the ranks resident *before* the build so the backend's session
        # machinery (thread pool, shared-memory promotions) serves the build
        # invocation too.
        backend_session = impl.open_session(runtime)

        def build_spmd(ctx):
            yield from aligner._index_program(ctx, target_seqs, target_store,
                                              seed_index)

        try:
            result = runtime.run_spmd(build_spmd, backend=impl)
        except BaseException:
            # A failed build must not leak the resident machinery (parked
            # rank threads, mapped shared-memory segments).
            backend_session.close()
            raise
        prepared = PreparedIndex(
            runtime=runtime, config=config, backend=impl.name,
            target_store=target_store, seed_index=seed_index,
            seed_cache=seed_cache, target_cache=target_cache,
            target_names=names,
            target_lengths=[len(sequence) for sequence in target_seqs],
            build_phases=result.phases,
            build_per_rank_stats=result.per_rank_stats,
        )
        return cls(aligner, prepared, backend_session)

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the backend's resident rank machinery (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._backend_session is not None:
            self._backend_session.close()

    def __enter__(self) -> "AlignmentSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- serving --------------------------------------------------------------

    def align(self, reads, warm_caches: bool = False) -> AlignerReport:
        """Align one request against the resident index.

        Runs the aligning phases as a single SPMD invocation and returns a
        full :class:`AlignerReport` whose phase traces, communication
        statistics and cache statistics cover **this request only**.
        Alignments are byte-identical (through SAM) to a one-shot
        ``MerAligner.run`` on the same reads.
        """
        outcome = self.align_many([reads], warm_caches=warm_caches)
        prepared = self.prepared
        return AlignerReport(
            n_ranks=prepared.runtime.n_ranks,
            config_summary=config_summary(prepared.config, outcome.backend),
            alignments=outcome.per_request_alignments[0],
            counters=outcome.counters,
            phases=outcome.phases,
            per_rank_stats=outcome.per_rank_stats,
            seed_index_keys=prepared.seed_index.n_keys,
            seed_index_values=prepared.seed_index.n_values,
            single_copy_fragment_fraction=(
                prepared.target_store.single_copy_fraction()),
            cache_stats=outcome.cache_stats,
        )

    def align_many(self, read_lists, warm_caches: bool = False) -> BatchOutcome:
        """Align a micro-batch of requests in one SPMD invocation.

        The requests' reads are tagged with ``(request, position)``, merged,
        permuted (Theorem 1 applies to the whole batch) and aligned through
        the resident index; the per-read results are then demultiplexed and
        each request's alignments reordered to its one-shot order, so every
        request sees exactly the alignments (and ordering) an offline run of
        its own reads would report.
        """
        if self._closed:
            raise RuntimeError("alignment session is closed")
        aligner = self.aligner
        prepared = self.prepared
        config = prepared.config
        requests = [_normalize_reads(reads) for reads in read_lists]

        caches = [cache for cache in (prepared.seed_cache, prepared.target_cache)
                  if cache is not None]
        if not warm_caches:
            # Cold caches per request: every request's communication profile
            # (off-node gets included) matches a fresh one-shot run, on every
            # backend.  See the module docstring.
            for cache in caches:
                cache.clear()
        cache_before = {cache.name: cache.total_stats() for cache in caches}

        tagged: list[tuple[int, int, ReadRecord]] = []
        for request_index, reads in enumerate(requests):
            for read_index, read in enumerate(reads):
                tagged.append((request_index, read_index, read))
        if config.permute_reads:
            tagged = permute_reads(tagged, seed=config.permutation_seed)
        read_records = [read for _request, _position, read in tagged]

        def align_spmd(ctx):
            return (yield from aligner._query_program(
                ctx, read_records, prepared.seed_index, prepared.target_store,
                prepared.seed_cache, prepared.target_cache))

        result = prepared.runtime.run_spmd(align_spmd, backend=prepared.backend)

        counters = AlignmentCounters()
        demuxed: list[dict[int, list[Alignment]]] = [{} for _ in requests]
        for rank_groups, rank_counters in result.results:
            counters = counters.merge(rank_counters)
            for combined_index, alignments in rank_groups:
                request_index, read_index, _read = tagged[combined_index]
                demuxed[request_index][read_index] = alignments

        per_request_alignments: list[list[Alignment]] = []
        per_request_counters: list[AlignmentCounters] = []
        for request_index, reads in enumerate(requests):
            order = one_shot_read_order(len(reads), config)
            per_read = [demuxed[request_index].get(i, []) for i in order]
            per_request_alignments.append(
                [alignment for group in per_read for alignment in group])
            per_request_counters.append(_derive_request_counters(per_read))

        cache_deltas = {cache.name: cache.total_stats().delta(cache_before[cache.name])
                        for cache in caches}
        self.requests_served += len(requests)
        return BatchOutcome(
            per_request_alignments=per_request_alignments,
            per_request_counters=per_request_counters,
            counters=counters,
            per_rank_stats=result.per_rank_stats,
            phases=result.phases,
            backend=result.backend,
            cache_stats=cache_deltas,
            n_reads=len(read_records),
        )

    # -- output helpers -------------------------------------------------------

    def sam_for(self, alignments: list[Alignment]) -> str:
        """Render alignments as SAM text against this session's targets."""
        return sam_text(alignments, self.prepared.target_names,
                        self.prepared.target_lengths)

    def to_json_dict(self) -> dict:
        return {
            "requests_served": self.requests_served,
            "closed": self._closed,
            "index": self.prepared.to_json_dict(),
        }
