"""The persistent alignment service.

merAligner amortizes the distributed seed-index construction over billions of
reads inside one batch job; this package turns that amortization into an
*online serving path*:

:mod:`repro.service.session`
    :class:`~repro.service.session.AlignmentSession` -- build the index once
    (``MerAligner.prepare``) and keep the SPMD ranks, shared heap, seed index,
    target store and per-node caches resident; ``session.align(reads)`` runs
    only the aligning phases, any number of times, on any execution backend.

:mod:`repro.service.scheduler`
    :class:`~repro.service.scheduler.RequestScheduler` -- accepts concurrent
    client submissions, coalesces them into micro-batches (configurable max
    batch size / max latency), fans each batch through the bulk-lookup engine
    in a single SPMD invocation and demultiplexes per-request results, with a
    service-level statistics report (requests, p50/p95 modelled latency,
    batch occupancy).

:mod:`repro.service.server` / :mod:`repro.service.async_server` /
:mod:`repro.service.client`
    Two byte-identical connection front-ends for one line protocol -- the
    thread-per-connection :class:`~repro.service.server.AlignmentServer`
    and the event-loop
    :class:`~repro.service.async_server.AsyncAlignmentServer` (the
    ``meraligner serve`` default; see :data:`FRONTENDS`), sharing every
    parser and formatter through :mod:`repro.service.protocol` -- plus the
    matching socket client (``meraligner query``) and the in-process
    :class:`~repro.service.client.AlignmentClient` API.

Every request reports alignments byte-identical to an offline ``meraligner
align`` run on the same reads, regardless of how requests were batched or
which backend executes them.
"""

from repro.service.async_server import AsyncAlignmentServer
from repro.service.client import (AlignmentClient, ServiceBusyError,
                                  ServiceError, SocketAlignmentClient)
from repro.service.protocol import ClientTimeout, ProtocolError
from repro.service.scheduler import RequestResult, RequestScheduler, ServiceStats
from repro.service.server import AlignmentServer
from repro.service.session import (AlignmentSession, BatchOutcome,
                                   PlanBatchOutcome, PreparedIndex)

#: Connection front-ends selectable via ``api.serve(frontend=...)`` /
#: ``meraligner serve --frontend``.  Both speak byte-identical protocol
#: (pinned by ``tests/test_wire_conformance.py``).
FRONTENDS = {
    "thread": AlignmentServer,
    "async": AsyncAlignmentServer,
}

#: The event loop multiplexes many clients onto one scheduler without a
#: thread per connection, so it is the default front-end.
DEFAULT_FRONTEND = "async"

__all__ = [
    "AlignmentClient",
    "AlignmentServer",
    "AlignmentSession",
    "AsyncAlignmentServer",
    "BatchOutcome",
    "ClientTimeout",
    "DEFAULT_FRONTEND",
    "FRONTENDS",
    "PlanBatchOutcome",
    "PreparedIndex",
    "ProtocolError",
    "RequestResult",
    "RequestScheduler",
    "ServiceBusyError",
    "ServiceError",
    "ServiceStats",
    "SocketAlignmentClient",
]
