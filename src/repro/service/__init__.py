"""The persistent alignment service.

merAligner amortizes the distributed seed-index construction over billions of
reads inside one batch job; this package turns that amortization into an
*online serving path*:

:mod:`repro.service.session`
    :class:`~repro.service.session.AlignmentSession` -- build the index once
    (``MerAligner.prepare``) and keep the SPMD ranks, shared heap, seed index,
    target store and per-node caches resident; ``session.align(reads)`` runs
    only the aligning phases, any number of times, on any execution backend.

:mod:`repro.service.scheduler`
    :class:`~repro.service.scheduler.RequestScheduler` -- accepts concurrent
    client submissions, coalesces them into micro-batches (configurable max
    batch size / max latency), fans each batch through the bulk-lookup engine
    in a single SPMD invocation and demultiplexes per-request results, with a
    service-level statistics report (requests, p50/p95 modelled latency,
    batch occupancy).

:mod:`repro.service.server` / :mod:`repro.service.client`
    A line-protocol socket server streaming SAM responses (``meraligner
    serve``), the matching socket client (``meraligner query``) and the
    in-process :class:`~repro.service.client.AlignmentClient` API.

Every request reports alignments byte-identical to an offline ``meraligner
align`` run on the same reads, regardless of how requests were batched or
which backend executes them.
"""

from repro.service.client import (AlignmentClient, ServiceBusyError,
                                  ServiceError, SocketAlignmentClient)
from repro.service.scheduler import RequestResult, RequestScheduler, ServiceStats
from repro.service.server import AlignmentServer
from repro.service.session import (AlignmentSession, BatchOutcome,
                                   PlanBatchOutcome, PreparedIndex)

__all__ = [
    "AlignmentClient",
    "AlignmentServer",
    "AlignmentSession",
    "BatchOutcome",
    "PlanBatchOutcome",
    "PreparedIndex",
    "RequestResult",
    "RequestScheduler",
    "ServiceBusyError",
    "ServiceError",
    "ServiceStats",
    "SocketAlignmentClient",
]
