"""The micro-batching request scheduler of the alignment service.

Concurrent clients submit read sets tagged with a *workload* -- ``align``
(the default), ``count``, ``screen`` or ``paired``, any plan registered in
:data:`repro.core.plan.WORKLOAD_PLANS`; the scheduler coalesces waiting
requests *of the same workload* into a micro-batch -- bounded by a maximum
number of requests and a maximum collection latency -- and runs the whole
batch through the resident session as **one** SPMD invocation
(:meth:`~repro.service.session.AlignmentSession.run_plan_many`).  Results are
demultiplexed per request: each :class:`RequestResult` carries the request's
own output (byte-identical to a one-shot run of its reads -- SAM for
``align``/``paired``, TSV for ``count``/``screen``), its derived per-request
counters, and the serving batch's shared communication statistics and phase
deltas.

Batching is a throughput/latency trade, and the service-level
:class:`ServiceStats` report makes it visible: request count, batch count and
occupancy (requests coalesced per batch), and the p50/p95 of the modelled
per-request latency (queueing is host-side, so latency is modelled as the
serving batch's modelled elapsed time; the measured host wall latency is
reported per request as well).

One worker thread executes batches serially -- the runtime is a single
simulated machine, so micro-batching *is* the concurrency story: requests
share invocations instead of racing for the ranks.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from dataclasses import dataclass, field

from repro.alignment.result import Alignment
from repro.core.stats import AlignmentCounters
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import TraceLog, TraceSpan
from repro.pgas.cost_model import CommStats
from repro.pgas.trace import PhaseTrace
from repro.service.session import AlignmentSession

#: Bucket bounds of the count-valued histograms (requests or reads coalesced
#: per micro-batch) -- latencies use the registry's default latency buckets.
OCCUPANCY_BUCKETS = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128, 256, 512,
                     1024, 4096)


@dataclass
class RequestResult:
    """One request's demultiplexed share of a served micro-batch.

    ``text`` is the rendered wire/file form of the request's output -- for
    the align workload it equals ``sam``; for ``count``/``screen`` it is the
    TSV and ``sam`` is empty.  ``output`` is the sink's collected object (the
    alignment list, a ``SeedCountSummary``, a ``ScreenSummary``).
    """

    request_id: int
    alignments: list[Alignment]
    counters: AlignmentCounters
    sam: str
    batch_id: int
    batch_requests: int
    batch_reads: int
    batch_stats: CommStats
    batch_phases: list[PhaseTrace]
    modeled_latency: float
    wall_latency: float
    workload: str = "align"
    output: object = None
    text: str = ""


class AlignmentRequest:
    """A submitted request: a future resolving to a :class:`RequestResult`."""

    def __init__(self, request_id: int, reads, workload: str = "align") -> None:
        self.request_id = request_id
        self.reads = reads
        self.workload = workload
        self.submitted_at = time.perf_counter()
        self._done = threading.Event()
        self._result: RequestResult | None = None
        self._error: BaseException | None = None
        self._callbacks: list = []
        self._cb_lock = threading.Lock()

    def done(self) -> bool:
        return self._done.is_set()

    def add_done_callback(self, fn) -> None:
        """Call ``fn(self)`` once the request resolves (or fails).

        Runs on the resolving thread -- the scheduler worker -- so callbacks
        must be cheap and must not block; the asyncio front-end uses this to
        wake an event-loop future (``loop.call_soon_threadsafe``) instead of
        parking a thread per in-flight request.  A callback added after
        completion fires immediately on the caller's thread.
        """
        with self._cb_lock:
            if not self._done.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def result(self, timeout: float | None = None) -> RequestResult:
        """Block until the request is served; re-raises a serving failure."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"alignment request {self.request_id} not served within "
                f"{timeout}s")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def _resolve(self, result: RequestResult) -> None:
        self._result = result
        self._finish()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._finish()

    def _finish(self) -> None:
        with self._cb_lock:
            self._done.set()
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            try:
                fn(self)
            except Exception:  # noqa: BLE001 - a callback cannot fail a batch
                pass


#: Latency samples kept for the percentile estimates.  Counters cover every
#: request ever served; the p50/p95/p99 figures are computed over the most
#: recent window so a long-lived service's memory stays bounded.
LATENCY_SAMPLE_WINDOW = 4096


@dataclass
class ServiceStats:
    """Service-level statistics over every request served so far.

    The counters (``requests``, ``batches``, ``reads``, ...) are exact over
    the service's lifetime.  The latency percentiles are computed over a
    **bounded reservoir** of the most recent :data:`LATENCY_SAMPLE_WINDOW`
    samples per series (modelled and wall), so a long-lived service's memory
    stays flat; ``latency_sample_window`` in :meth:`to_json_dict` documents
    the window to consumers.  For unbounded-horizon percentiles scrape the
    ``METRICS`` histograms instead (fixed buckets, no reservoir).
    """

    requests: int = 0
    batches: int = 0
    reads: int = 0
    alignments: int = 0
    failed_requests: int = 0
    requests_by_workload: dict[str, int] = field(default_factory=dict)
    modeled_latencies: list[float] = field(default_factory=list)
    wall_latencies: list[float] = field(default_factory=list)

    @property
    def batch_occupancy(self) -> float:
        """Mean number of requests coalesced per micro-batch."""
        return self.requests / self.batches if self.batches else 0.0

    @staticmethod
    def _percentile(samples: list[float], fraction: float) -> float:
        if not samples:
            return 0.0
        ordered = sorted(samples)
        index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
        return ordered[index]

    @property
    def p50_modeled_latency(self) -> float:
        return self._percentile(self.modeled_latencies, 0.50)

    @property
    def p95_modeled_latency(self) -> float:
        return self._percentile(self.modeled_latencies, 0.95)

    @property
    def p99_modeled_latency(self) -> float:
        return self._percentile(self.modeled_latencies, 0.99)

    @property
    def p99_wall_latency(self) -> float:
        return self._percentile(self.wall_latencies, 0.99)

    def to_json_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "reads": self.reads,
            "alignments": self.alignments,
            "failed_requests": self.failed_requests,
            "requests_by_workload": dict(sorted(
                self.requests_by_workload.items())),
            "batch_occupancy": self.batch_occupancy,
            "latency_sample_window": LATENCY_SAMPLE_WINDOW,
            "p50_modeled_latency": self.p50_modeled_latency,
            "p95_modeled_latency": self.p95_modeled_latency,
            "p99_modeled_latency": self.p99_modeled_latency,
            "p50_wall_latency": self._percentile(self.wall_latencies, 0.50),
            "p95_wall_latency": self._percentile(self.wall_latencies, 0.95),
            "p99_wall_latency": self.p99_wall_latency,
        }

    def report(self) -> str:
        """Human-readable one-block summary (the ``serve`` log format)."""
        data = self.to_json_dict()
        return json.dumps(data, indent=2, sort_keys=True)


class RequestScheduler:
    """Coalesces concurrent submissions into micro-batched SPMD invocations."""

    _SHUTDOWN = object()

    def __init__(self, session: AlignmentSession,
                 max_batch_requests: int = 8,
                 max_batch_reads: int | None = None,
                 max_wait_s: float = 0.02,
                 warm_caches: bool = False,
                 metrics: "MetricsRegistry | None" = None,
                 trace_log=None) -> None:
        """Args:
            session: the resident :class:`AlignmentSession` to serve from.
            max_batch_requests: hard cap on requests coalesced per batch.
            max_batch_reads: optional cap on total reads per batch (a huge
                request still runs, alone, in its own batch).
            max_wait_s: how long the collector waits for more requests after
                the first one arrives (the micro-batching latency budget).
            warm_caches: forwarded to ``align_many`` -- keep per-node caches
                warm across requests instead of the cold-per-request default.
            metrics: the :class:`~repro.obs.MetricsRegistry` to record into;
                one is created (and attached to the session and its runtime)
                when omitted, so a scheduler always has a live registry.
            trace_log: a :class:`~repro.obs.TraceLog` or a path -- when set,
                one :class:`~repro.obs.TraceSpan` is appended per served
                request (``serve --trace-log``).  A path-created log is
                owned by the scheduler and closed with it.
        """
        if max_batch_requests <= 0:
            raise ValueError("max_batch_requests must be positive")
        if max_batch_reads is not None and max_batch_reads <= 0:
            raise ValueError("max_batch_reads must be positive")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")
        self.session = session
        self.max_batch_requests = max_batch_requests
        self.max_batch_reads = max_batch_reads
        self.max_wait_s = max_wait_s
        self.warm_caches = warm_caches
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        session.attach_metrics(self.metrics)
        self._owns_trace_log = trace_log is not None \
            and not isinstance(trace_log, TraceLog)
        self.trace_log = (TraceLog(trace_log) if self._owns_trace_log
                          else trace_log)
        self._queue: queue.Queue = queue.Queue()
        # A request whose workload differs from the batch being collected is
        # parked here and leads the next batch.
        self._deferred: list[AlignmentRequest] = []
        self._stats = ServiceStats()
        self._stats_lock = threading.Lock()
        self._next_id = 0
        self._id_lock = threading.Lock()
        self._next_batch_id = 0
        self._closed = False
        self._worker = threading.Thread(target=self._loop,
                                        name="repro-scheduler", daemon=True)
        self._worker.start()

    # -- client surface -------------------------------------------------------

    def submit(self, reads, workload: str = "align") -> AlignmentRequest:
        """Enqueue a read set; returns immediately with a waitable request.

        Accepts anything ``MerAligner.run`` accepts as reads (a FASTQ/SeqDB
        path, FASTQ records, read records); normalization -- and workload
        validation -- happens here, on the caller's thread, so a malformed
        submission fails the caller, never the shared batching worker.
        """
        if self._closed:
            raise RuntimeError("request scheduler is closed")
        from repro.core.plan import (WORKLOAD_PLANS, normalize_reads,
                                     workload_group_size)
        if workload not in WORKLOAD_PLANS:
            raise KeyError(f"unknown workload {workload!r}; available: "
                           f"{', '.join(sorted(WORKLOAD_PLANS))}")
        reads = normalize_reads(reads)
        group = workload_group_size(workload)
        if group > 1 and len(reads) % group != 0:
            raise ValueError(
                f"the {workload!r} workload needs whole units of {group} "
                f"reads (interleaved R1/R2), got {len(reads)}")
        with self._id_lock:
            request_id = self._next_id
            self._next_id += 1
        request = AlignmentRequest(request_id, reads, workload=workload)
        self._queue.put(request)
        return request

    def request(self, reads, workload: str = "align",
                timeout: float | None = None) -> RequestResult:
        """Submit a workload request and wait for its result."""
        return self.submit(reads, workload=workload).result(timeout)

    def align(self, reads, timeout: float | None = None) -> RequestResult:
        """Submit and wait: the synchronous align call."""
        return self.request(reads, timeout=timeout)

    def stats(self) -> ServiceStats:
        """A consistent snapshot of the service-level statistics."""
        with self._stats_lock:
            return ServiceStats(
                requests=self._stats.requests,
                batches=self._stats.batches,
                reads=self._stats.reads,
                alignments=self._stats.alignments,
                failed_requests=self._stats.failed_requests,
                requests_by_workload=dict(self._stats.requests_by_workload),
                modeled_latencies=list(self._stats.modeled_latencies),
                wall_latencies=list(self._stats.wall_latencies),
            )

    def close(self, timeout: float | None = 30.0) -> None:
        """Stop accepting submissions and join the worker (idempotent).

        Requests already queued are failed with a descriptive error; callers
        should drain their futures before closing.
        """
        if self._closed:
            return
        self._closed = True
        self._queue.put(self._SHUTDOWN)
        self._worker.join(timeout=timeout)
        if self._owns_trace_log and self.trace_log is not None:
            self.trace_log.close()

    def __enter__(self) -> "RequestScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the batching worker --------------------------------------------------

    def _collect_batch(self) -> list[AlignmentRequest] | None:
        """Block for the first request, then coalesce until full or timed out.

        Only requests of the same workload coalesce -- a micro-batch is one
        SPMD invocation of one plan.  A request of a different workload ends
        collection and is parked to lead the next batch.  Returns ``None``
        when the scheduler is shutting down.
        """
        if self._deferred:
            item = self._deferred.pop(0)
        else:
            while True:
                item = self._queue.get()
                if item is self._SHUTDOWN:
                    return None
                break
        batch = [item]
        workload = item.workload
        total_reads = len(item.reads)
        deadline = time.monotonic() + self.max_wait_s
        while len(batch) < self.max_batch_requests:
            if (self.max_batch_reads is not None
                    and total_reads >= self.max_batch_reads):
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is self._SHUTDOWN:
                # Serve what we have; the loop exits on the re-queued marker.
                self._queue.put(self._SHUTDOWN)
                break
            if item.workload != workload:
                self._deferred.append(item)
                break
            batch.append(item)
            total_reads += len(item.reads)
        return batch

    def _loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                break
            self._serve_batch(batch)
        # Fail anything that slipped in behind the shutdown marker (or was
        # parked for a later same-workload batch that will never form).
        pending = list(self._deferred)
        self._deferred.clear()
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not self._SHUTDOWN:
                pending.append(item)
        for item in pending:
            item._fail(RuntimeError("request scheduler closed before "
                                    "the request was served"))

    def _serve_batch(self, batch: list[AlignmentRequest]) -> None:
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        workload = batch[0].workload
        batch_formed_at = time.perf_counter()
        # Virtual-time marks are read (never charged) off the shared
        # runtime's modelled clock: queueing is host-side, so the whole
        # batch enqueues at the pre-invocation timestamp.
        virtual_before = self.session.prepared.runtime.elapsed
        self.metrics.counter("scheduler_batches_total",
                             workload=workload).inc()
        self.metrics.histogram("scheduler_batch_occupancy",
                               bounds=OCCUPANCY_BUCKETS).observe(len(batch))
        self.metrics.histogram(
            "scheduler_batch_reads", bounds=OCCUPANCY_BUCKETS,
        ).observe(sum(len(r.reads) for r in batch))
        for request in batch:
            self.metrics.counter("scheduler_requests_total",
                                 workload=workload).inc()
            self.metrics.histogram("scheduler_queue_wait_seconds").observe(
                batch_formed_at - request.submitted_at)
        try:
            outcome = self.session.run_plan_many(
                workload, [r.reads for r in batch],
                warm_caches=self.warm_caches)
        except BaseException as exc:  # noqa: BLE001 - delivered to clients
            with self._stats_lock:
                self._stats.failed_requests += len(batch)
            self.metrics.counter("scheduler_failed_requests_total",
                                 workload=workload).inc(len(batch))
            for request in batch:
                request._fail(exc)
            return
        served_at = time.perf_counter()
        virtual_after = self.session.prepared.runtime.elapsed
        batch_stats = outcome.stats
        results = []
        for request, output, counters in zip(
                batch, outcome.per_request_outputs,
                outcome.per_request_counters):
            text = self.session.render(workload, output)
            alignments = output if workload == "align" else []
            results.append(RequestResult(
                request_id=request.request_id,
                alignments=alignments,
                counters=counters,
                sam=text if workload in ("align", "paired") else "",
                batch_id=batch_id,
                batch_requests=len(batch),
                batch_reads=outcome.n_reads,
                batch_stats=batch_stats,
                batch_phases=outcome.phases,
                modeled_latency=outcome.modeled_elapsed,
                wall_latency=served_at - request.submitted_at,
                workload=workload,
                output=output,
                text=text,
            ))
        with self._stats_lock:
            self._stats.requests += len(batch)
            self._stats.batches += 1
            self._stats.reads += outcome.n_reads
            self._stats.requests_by_workload[workload] = \
                self._stats.requests_by_workload.get(workload, 0) + len(batch)
            self._stats.alignments += sum(len(r.alignments) for r in results)
            self._stats.modeled_latencies.extend(
                result.modeled_latency for result in results)
            self._stats.wall_latencies.extend(
                result.wall_latency for result in results)
            del self._stats.modeled_latencies[:-LATENCY_SAMPLE_WINDOW]
            del self._stats.wall_latencies[:-LATENCY_SAMPLE_WINDOW]
        for request, result in zip(batch, results):
            # Record the span and metrics BEFORE resolving the future: a
            # client unblocked by _resolve must be able to read its own span.
            demuxed_at = time.perf_counter()
            self.metrics.histogram("scheduler_request_wall_seconds",
                                   workload=workload).observe(
                demuxed_at - request.submitted_at)
            self.metrics.histogram("scheduler_request_modeled_seconds",
                                   workload=workload).observe(
                result.modeled_latency)
            if self.trace_log is not None:
                self.trace_log.append(TraceSpan(
                    request_id=request.request_id,
                    workload=workload,
                    n_reads=len(request.reads),
                    batch_id=batch_id,
                    batch_requests=len(batch),
                    emitted_unix=time.time(),
                    wall_enqueued=request.submitted_at,
                    wall_batch_formed=batch_formed_at,
                    wall_executed=served_at,
                    wall_demuxed=demuxed_at,
                    virtual_enqueued=virtual_before,
                    virtual_executed=virtual_after,
                    modeled_latency_s=result.modeled_latency,
                ))
            request._resolve(result)
