"""The wire protocol's front-end-independent pieces.

The alignment service has two connection front-ends -- the
thread-per-connection :class:`~repro.service.server.AlignmentServer` and the
event-loop :class:`~repro.service.async_server.AsyncAlignmentServer` -- that
must speak **byte-identical** protocol: same verbs, same ``OK``/``ERR``/
``BUSY``/``CHUNK``/``DONE`` framing, same error messages for the same
malformed input (``tests/test_wire_conformance.py`` drives both front-ends
through one fuzz matrix and compares).  Everything that defines those bytes
lives here, once: payload parsing and validation, option parsing, stream
frame parsing, and the status-line formatters.  The front-end modules keep
only what genuinely differs -- how bytes are moved.
"""

from __future__ import annotations

from repro.io.fastq import FastqRecord

__all__ = [
    "ClientTimeout",
    "ProtocolError",
    "STREAM_VERBS",
    "busy_line",
    "chunk_header",
    "decode_wire_line",
    "done_line",
    "err_line",
    "exception_text",
    "fastq_payload",
    "ok_header",
    "parse_fastq_records",
    "parse_stream_frame",
    "query_options",
    "truncated_payload_error",
]

#: Streaming query verbs and the workloads they run.  One handler serves all
#: four; ``count``/``screen`` reply with a single TSV frame at stream end
#: (their headers hold whole-run aggregates), ``align``/``paired`` stream a
#: SAM frame per chunk.
STREAM_VERBS = {
    "ALIGNSTREAM": "align",
    "PAIREDSTREAM": "paired",
    "COUNTSTREAM": "count",
    "SCREENSTREAM": "screen",
}


class ProtocolError(ValueError):
    """A malformed client command (reported as ``ERR``, not a disconnect)."""


class ClientTimeout(OSError):
    """A connection idled past the server's ``client_timeout``.

    Deliberately *not* a :class:`ConnectionError` subclass: the reap path
    (count ``server_client_timeouts_total``, close silently) must not be
    shadowed by the generic disconnect handling, and a timeout must never be
    reported to the client as an ``ERR`` -- by the time it fires the client
    is not reading anyway.
    """


# -- payload parsing ------------------------------------------------------------

def decode_wire_line(line: bytes) -> str:
    """Decode one FASTQ payload line exactly as the protocol always has."""
    return line.decode("ascii", errors="replace").rstrip("\r\n")


def truncated_payload_error(n_lines: int, n_reads: int) -> ProtocolError:
    """The error for a connection that died mid-FASTQ-payload."""
    return ProtocolError(
        f"truncated FASTQ payload ({n_lines} of {4 * n_reads} "
        "lines received)")


def parse_fastq_records(lines: list[str], n_reads: int) -> list[FastqRecord]:
    """Validate and parse ``4 * n_reads`` already-decoded FASTQ lines.

    The caller consumes the whole payload from its stream *before* calling
    this, so a malformed record never leaves unread payload lines behind to
    be misinterpreted as commands -- the connection stays usable after an
    ``ERR`` reply (a truncated stream is the one unrecoverable case).
    """
    records: list[FastqRecord] = []
    for index in range(n_reads):
        header, sequence, separator, quality = lines[4 * index:4 * index + 4]
        if not header.startswith("@") or not header[1:].split():
            raise ProtocolError(f"malformed FASTQ header: {header!r}")
        if not separator.startswith("+"):
            raise ProtocolError(f"malformed FASTQ separator: {separator!r}")
        if len(sequence) != len(quality):
            raise ProtocolError(
                f"sequence/quality length mismatch for {header!r}")
        records.append(FastqRecord(name=header[1:].split()[0],
                                   sequence=sequence.upper(),
                                   quality=quality))
    return records


def fastq_payload(reads) -> bytes:
    """Serialize reads (FastqRecord/ReadRecord) as FASTQ wire bytes."""
    chunks = []
    for read in reads:
        quality = getattr(read, "quality", "") or "I" * len(read.sequence)
        chunks.append(f"@{read.name}\n{read.sequence}\n+\n{quality}\n")
    return "".join(chunks).encode("ascii")


# -- command parsing ------------------------------------------------------------

def query_options(verb: str, parts: list[str]) -> tuple[str | None,
                                                        str | None]:
    """Parse the optional ``INDEX=`` / ``TENANT=`` tokens of a query."""
    index = tenant = None
    for token in parts:
        key, sep, value = token.partition("=")
        if not sep or not value:
            raise ProtocolError(
                f"malformed {verb} option {token!r} "
                "(expected INDEX=<name> or TENANT=<name>)")
        key = key.upper()
        if key == "INDEX":
            index = value
        elif key == "TENANT":
            tenant = value
        else:
            raise ProtocolError(
                f"unknown {verb} option {token!r} "
                "(supported: INDEX=, TENANT=)")
    return index, tenant


def parse_stream_frame(frame: str, verb: str, group: int) -> int | None:
    """Parse one request frame of a ``*STREAM`` body.

    Returns the chunk's read count for a ``CHUNK <n_reads>`` frame and
    ``None`` for the terminating ``END``; anything else is a
    :class:`ProtocolError`.
    """
    tokens = frame.split()
    if tokens[0].upper() == "END" and len(tokens) == 1:
        return None
    if (tokens[0].upper() != "CHUNK" or len(tokens) != 2
            or not tokens[1].isdigit()):
        raise ProtocolError(
            "expected CHUNK <n_reads> or END, got "
            f"{frame!r}")
    n_reads = int(tokens[1])
    if group == 2 and n_reads % 2 != 0:
        raise ProtocolError(
            f"{verb} chunks need an even interleaved "
            f"read count, got {n_reads}")
    return n_reads


# -- status-line formatting -----------------------------------------------------

def ok_header(n_bytes: int) -> bytes:
    return f"OK {n_bytes}\n".encode("ascii")


def err_line(message: str) -> bytes:
    # UTF-8, not ASCII: exception messages embed user-controlled text
    # (file paths, index names); an encoding error here would kill the
    # connection instead of reporting the actual problem.  Newlines are
    # flattened so the message cannot break the line protocol.
    message = " ".join(str(message).splitlines()) or "server error"
    return f"ERR {message}\n".encode("utf-8", errors="replace")


def busy_line(message: str) -> bytes:
    """The explicit admission rejection: ``BUSY``, never a drop."""
    message = " ".join(str(message).splitlines()) or "server busy"
    return f"BUSY {message}\n".encode("utf-8", errors="replace")


def chunk_header(n_bytes: int) -> bytes:
    """One ``CHUNK <n_bytes>`` response frame header of a streamed reply."""
    return f"CHUNK {n_bytes}\n".encode("ascii")


def done_line(n_chunks: int, n_reads: int) -> bytes:
    return f"DONE {n_chunks} {n_reads}\n".encode("ascii")


def exception_text(exc: BaseException) -> str:
    """How unexpected serving exceptions render into ``ERR`` replies."""
    return f"{type(exc).__name__}: {exc}"
