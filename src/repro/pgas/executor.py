"""Real-thread SPMD execution.

The cooperative driver in :mod:`repro.pgas.runtime` is deterministic and is
what the benchmarks use.  :class:`ThreadedExecutor` runs the *same* SPMD
functions on real OS threads with a real barrier, which serves two purposes:

* it demonstrates that the one-sided algorithms are safe under genuine
  concurrency (the atomics really are atomic, the lock-free construction
  really needs no bucket locks), which tests exercise;
* it gives examples a way to overlap the pure-Python bookkeeping of multiple
  ranks (the GIL prevents CPU-bound speedups, but numpy-heavy kernels release
  the GIL).

Functions run under the executor receive the same :class:`RankContext` API and
may call ``ctx.barrier()`` directly.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.pgas.runtime import PgasRuntime


class ThreadedExecutor:
    """Runs an SPMD function on one real thread per rank."""

    def __init__(self, runtime: PgasRuntime) -> None:
        self.runtime = runtime

    def run(self, fn: Callable[..., Any], *args: Any,
            timeout: float | None = 120.0) -> list[Any]:
        """Execute ``fn(ctx, *args)`` concurrently on every rank.

        Returns the per-rank results in rank order.  Any exception raised by a
        rank is re-raised in the caller after all threads have stopped.
        """
        n = self.runtime.n_ranks
        barrier = threading.Barrier(n)
        results: list[Any] = [None] * n
        errors: list[BaseException | None] = [None] * n

        def _worker(rank: int) -> None:
            ctx = self.runtime.contexts[rank]
            ctx._barrier_impl = barrier.wait
            try:
                results[rank] = fn(ctx, *args)
            except BaseException as exc:  # noqa: BLE001 - propagated to caller
                errors[rank] = exc
                # Break the barrier so no other rank deadlocks waiting for us.
                barrier.abort()
            finally:
                ctx._barrier_impl = None

        threads = [threading.Thread(target=_worker, args=(rank,), daemon=True)
                   for rank in range(n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=timeout)
        for thread in threads:
            if thread.is_alive():
                raise TimeoutError("SPMD rank did not finish within the timeout")
        for error in errors:
            if isinstance(error, threading.BrokenBarrierError):
                continue
            if error is not None:
                raise error
        return results
