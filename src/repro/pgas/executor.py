"""Real-thread SPMD execution (legacy shim).

The thread-per-rank machinery now lives in the execution-backend subsystem
(:class:`repro.backend.threaded.ThreadedBackend`); :class:`ThreadedExecutor`
is kept as a thin adapter for callers that treat it as a pure concurrency
harness: same :class:`~repro.pgas.runtime.RankContext` API, ``ctx.barrier()``
works, per-rank results in rank order, no phase traces recorded.

One behavioural fix over the original executor rides along: a run in which
every failing rank only saw a ``BrokenBarrierError`` (e.g. a genuine
barrier-count mismatch between ranks, or a rank hung past the barrier
timeout) now raises a descriptive error instead of silently returning an
all-``None`` result list.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.pgas.runtime import PgasRuntime


class ThreadedExecutor:
    """Runs an SPMD function on one real thread per rank."""

    def __init__(self, runtime: PgasRuntime) -> None:
        self.runtime = runtime

    def run(self, fn: Callable[..., Any], *args: Any,
            timeout: float | None = 120.0) -> list[Any]:
        """Execute ``fn(ctx, *args)`` concurrently on every rank.

        Returns the per-rank results in rank order.  Any exception raised by a
        rank is re-raised in the caller after all threads have stopped; if the
        only failures are broken barriers, a descriptive error is raised.
        """
        from repro.backend.threaded import ThreadedBackend
        # Barriers break strictly before the join deadline so a barrier-count
        # mismatch surfaces as the descriptive error, not a bare timeout.
        join_timeout = None if timeout is None else timeout + 10.0
        backend = ThreadedBackend(timeout=join_timeout, barrier_timeout=timeout)
        return backend.run_plain(self.runtime, fn, args)
