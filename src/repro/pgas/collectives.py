"""Collective operations over the simulated ranks.

merAligner itself needs very few collectives (barriers dominate), but the
pipeline driver uses reductions to aggregate per-rank statistics (number of
aligned reads, exact-match counts) and the pMap baseline uses a broadcast-like
read-partitioning step.  These helpers operate *between* SPMD phases on lists
of per-rank values, charging every participating rank a tree-structured
latency/bandwidth cost.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.pgas.runtime import RankContext, estimate_nbytes


def _tree_depth(n: int) -> int:
    """Depth of a binomial reduction/broadcast tree over *n* ranks."""
    if n <= 1:
        return 1
    return max(1, (n - 1).bit_length())


def _charge_collective(contexts: Sequence[RankContext], nbytes: int,
                       category: str) -> None:
    depth = _tree_depth(len(contexts))
    for ctx in contexts:
        machine = ctx.machine
        seconds = depth * (machine.off_node_latency + machine.message_overhead
                           + nbytes / machine.bandwidth)
        ctx.clock.charge_comm(seconds)
        ctx.stats.comm_time += seconds
        ctx.stats.record(category, seconds)


def allreduce(contexts: Sequence[RankContext], values: Sequence[Any],
              op: Callable[[Any, Any], Any] = lambda a, b: a + b) -> Any:
    """Reduce per-rank *values* with *op* and return the single result.

    Every rank is charged a log(p)-deep tree of messages carrying a value of
    the reduced item's size, like an ``upc_all_reduce``.
    """
    if len(values) != len(contexts):
        raise ValueError("one value per rank is required")
    if not values:
        raise ValueError("allreduce of zero ranks")
    result = values[0]
    for value in values[1:]:
        result = op(result, value)
    _charge_collective(contexts, estimate_nbytes(result), "collective:allreduce")
    return result


def broadcast(contexts: Sequence[RankContext], value: Any, root: int = 0) -> list[Any]:
    """Broadcast *value* from *root* to every rank; returns one copy per rank."""
    if not 0 <= root < len(contexts):
        raise IndexError("root rank out of range")
    _charge_collective(contexts, estimate_nbytes(value), "collective:broadcast")
    return [value for _ in contexts]


def gather(contexts: Sequence[RankContext], values: Sequence[Any],
           root: int = 0) -> list[Any]:
    """Gather per-rank *values* at *root* (returned as a list ordered by rank)."""
    if len(values) != len(contexts):
        raise ValueError("one value per rank is required")
    if not 0 <= root < len(contexts):
        raise IndexError("root rank out of range")
    total_bytes = sum(estimate_nbytes(v) for v in values)
    # The root pays for receiving everything; non-roots pay for one send.
    for rank, ctx in enumerate(contexts):
        nbytes = total_bytes if rank == root else estimate_nbytes(values[rank])
        seconds = (ctx.machine.off_node_latency + ctx.machine.message_overhead
                   + nbytes / ctx.machine.bandwidth)
        ctx.clock.charge_comm(seconds)
        ctx.stats.comm_time += seconds
        ctx.stats.record("collective:gather", seconds)
    return list(values)


def exchange_counts(contexts: Sequence[RankContext],
                    counts: Sequence[Sequence[int]]) -> list[list[int]]:
    """All-to-all exchange of per-destination counts.

    ``counts[i][j]`` is the number of items rank *i* sends to rank *j*; the
    return value is transposed so ``result[j][i]`` is what rank *j* receives
    from rank *i*.  Used by the pFANGS-style comparison and by tests of the
    aggregation machinery.
    """
    p = len(contexts)
    if len(counts) != p or any(len(row) != p for row in counts):
        raise ValueError("counts must be a p x p matrix")
    _charge_collective(contexts, 8 * p, "collective:alltoall")
    return [[counts[i][j] for i in range(p)] for j in range(p)]
