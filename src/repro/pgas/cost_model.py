"""Machine model and communication accounting for the simulated PGAS runtime.

The paper's experiments run on Edison, a Cray XC30 (24 cores/node, 64 GB/node,
Aries dragonfly interconnect).  :class:`MachineModel` captures the handful of
parameters the observed behaviour depends on: one-sided message latency (on
node vs off node), network bandwidth, per-message injection overhead, the NIC
congestion that the paper credits for its super-linear region, and calibrated
per-operation CPU costs used to charge computation time.

Nothing in the algorithmic code depends on the specific constants; they only
shape the modelled seconds reported by the benchmark harness.  Tests assert
relative orderings (off-node slower than on-node, more bytes cost more time),
never absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ComputeCosts:
    """Per-operation CPU costs, in seconds.

    These represent a single Ivy-Bridge-class core executing the optimized
    (C/SIMD) kernels of the original implementation, so that the modelled
    computation/communication split resembles the paper's even though our
    kernels are written in Python.

    Attributes:
        sw_cell: one Smith-Waterman dynamic-programming cell update
            (striped/SIMD implementation, amortised).
        seed_extract: extracting one seed (k-mer) from a sequence.
        seed_hash: hashing one seed for the seed -> processor map.
        bucket_insert: inserting one entry into a local hash-table bucket.
        lookup: one local hash-table probe.
        memcmp_byte: comparing one byte during the exact-match fast path.
        base_copy: copying one base during buffer packing/unpacking.
        io_byte: reading one byte from the parallel file system.
    """

    sw_cell: float = 2.0e-9
    seed_extract: float = 3.0e-9
    seed_hash: float = 5.0e-9
    bucket_insert: float = 2.0e-8
    lookup: float = 3.0e-8
    memcmp_byte: float = 1.0e-10
    base_copy: float = 2.5e-10
    io_byte: float = 4.0e-10


@dataclass(frozen=True)
class MachineModel:
    """Parameters of the simulated distributed-memory machine.

    Attributes:
        name: human-readable machine name.
        cores_per_node: ranks placed per node (ppn); Edison has 24.
        local_latency: latency of an access to the rank's own segment.
        on_node_latency: one-sided access to another rank on the same node.
        off_node_latency: one-sided access to a rank on a different node.
        bandwidth: sustained point-to-point bandwidth in bytes/second.
        message_overhead: fixed CPU injection overhead per remote message.
        atomic_latency: latency of a global atomic (fetch-add) operation.
        congestion_base: extra per-byte slowdown factor applied to off-node
            traffic when the job occupies few nodes; it decays as ranks spread
            over more NICs, reproducing the super-linear region of Fig 1.
        congestion_nodes: node count at which congestion has halved.
        barrier_latency: latency component of a barrier (scaled by log2(p)).
        compute: per-operation CPU costs.
    """

    name: str = "generic"
    cores_per_node: int = 24
    local_latency: float = 8.0e-8
    on_node_latency: float = 6.0e-7
    off_node_latency: float = 2.2e-6
    bandwidth: float = 5.0e9
    message_overhead: float = 4.0e-7
    atomic_latency: float = 2.8e-6
    congestion_base: float = 1.5
    congestion_nodes: int = 64
    barrier_latency: float = 3.0e-6
    compute: ComputeCosts = field(default_factory=ComputeCosts)

    def __post_init__(self) -> None:
        if self.cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    def node_of(self, rank: int) -> int:
        """Node index hosting *rank* (ranks are packed onto nodes in order)."""
        return rank // self.cores_per_node

    def n_nodes(self, n_ranks: int) -> int:
        """Number of nodes a job with *n_ranks* ranks occupies."""
        return (n_ranks + self.cores_per_node - 1) // self.cores_per_node

    def congestion_factor(self, n_nodes: int) -> float:
        """NIC congestion multiplier for off-node bandwidth.

        With few nodes, each NIC carries the injected traffic of many ranks,
        inflating effective transfer time; the factor decays toward 1 as the
        same total traffic spreads over more NICs.
        """
        if n_nodes <= 0:
            return 1.0
        return 1.0 + self.congestion_base / (1.0 + n_nodes / self.congestion_nodes)

    def transfer_time(self, nbytes: int, *, same_rank: bool, same_node: bool,
                      n_nodes: int = 1) -> float:
        """Modelled time of one one-sided transfer of *nbytes*."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if same_rank:
            return self.local_latency + nbytes / (self.bandwidth * 4.0)
        if same_node:
            return self.on_node_latency + self.message_overhead + nbytes / (self.bandwidth * 2.0)
        congest = self.congestion_factor(n_nodes)
        return (self.off_node_latency + self.message_overhead
                + congest * nbytes / self.bandwidth)

    def bulk_transfer_time(self, nbytes: int, n_items: int, *, same_rank: bool,
                           same_node: bool, n_nodes: int = 1) -> float:
        """Modelled time of one *aggregated* one-sided transfer.

        A bulk operation moving *n_items* logically distinct objects totalling
        *nbytes* to (or from) a single destination pays the latency and
        injection overhead of **one** message plus the bandwidth cost of the
        summed payload -- the same charging rule the aggregating-stores
        construction path uses, now available to any caller.  A small
        per-item packing cost (one header copy per item) keeps a bulk
        transfer of n items slightly dearer than one monolithic transfer of
        the same byte count, so batching never looks *better* than free.
        """
        if n_items < 0:
            raise ValueError("n_items must be non-negative")
        packing = self.compute.base_copy * 8 * n_items
        return packing + self.transfer_time(nbytes, same_rank=same_rank,
                                            same_node=same_node, n_nodes=n_nodes)

    def atomic_time(self, *, same_rank: bool, same_node: bool) -> float:
        """Modelled time of one global atomic operation."""
        if same_rank:
            return self.local_latency
        if same_node:
            return self.atomic_latency * 0.5
        return self.atomic_latency

    def barrier_time(self, n_ranks: int) -> float:
        """Modelled time of a full barrier over *n_ranks* ranks."""
        if n_ranks <= 1:
            return self.local_latency
        span = max(1, n_ranks - 1).bit_length()
        return self.barrier_latency * span

    def with_cores_per_node(self, ppn: int) -> "MachineModel":
        """Return a copy of the model with a different ranks-per-node packing."""
        return replace(self, cores_per_node=ppn)


@dataclass
class CommStats:
    """Per-rank communication and computation counters.

    All ``*_time`` fields are modelled seconds from :class:`MachineModel`;
    counter fields are exact event counts, which is what most tests assert.
    ``puts``/``gets`` count *messages*: an aggregated transfer that moves many
    items to one destination counts once there, and is additionally tallied in
    ``bulk_puts``/``bulk_gets`` with its item count in ``bulk_items``.
    """

    puts: int = 0
    gets: int = 0
    bulk_puts: int = 0
    bulk_gets: int = 0
    bulk_items: int = 0
    atomics: int = 0
    barriers: int = 0
    bytes_put: int = 0
    bytes_get: int = 0
    local_ops: int = 0
    on_node_ops: int = 0
    off_node_ops: int = 0
    comm_time: float = 0.0
    compute_time: float = 0.0
    io_time: float = 0.0
    time_by_category: dict[str, float] = field(default_factory=dict)

    def record(self, category: str, seconds: float) -> None:
        """Accumulate *seconds* under *category* in the per-category map."""
        self.time_by_category[category] = self.time_by_category.get(category, 0.0) + seconds

    @property
    def messages(self) -> int:
        """Total number of remote messages (puts + gets + atomics)."""
        return self.puts + self.gets + self.atomics

    @property
    def total_time(self) -> float:
        """Modelled wall time of this rank (compute + comm + I/O)."""
        return self.comm_time + self.compute_time + self.io_time

    def merge(self, other: "CommStats") -> "CommStats":
        """Return a new CommStats that is the element-wise sum of two."""
        merged = CommStats(
            puts=self.puts + other.puts,
            gets=self.gets + other.gets,
            bulk_puts=self.bulk_puts + other.bulk_puts,
            bulk_gets=self.bulk_gets + other.bulk_gets,
            bulk_items=self.bulk_items + other.bulk_items,
            atomics=self.atomics + other.atomics,
            barriers=self.barriers + other.barriers,
            bytes_put=self.bytes_put + other.bytes_put,
            bytes_get=self.bytes_get + other.bytes_get,
            local_ops=self.local_ops + other.local_ops,
            on_node_ops=self.on_node_ops + other.on_node_ops,
            off_node_ops=self.off_node_ops + other.off_node_ops,
            comm_time=self.comm_time + other.comm_time,
            compute_time=self.compute_time + other.compute_time,
            io_time=self.io_time + other.io_time,
        )
        for src in (self.time_by_category, other.time_by_category):
            for key, value in src.items():
                merged.time_by_category[key] = merged.time_by_category.get(key, 0.0) + value
        return merged

    def copy(self) -> "CommStats":
        """An independent snapshot of the current counters."""
        return CommStats().merge(self)

    def delta(self, baseline: "CommStats") -> "CommStats":
        """Counters accumulated since *baseline* (element-wise difference).

        Used by :meth:`~repro.pgas.runtime.PgasRuntime.run_spmd` to report
        per-invocation statistics on a runtime whose rank contexts persist
        across invocations.
        """
        diff = CommStats(
            puts=self.puts - baseline.puts,
            gets=self.gets - baseline.gets,
            bulk_puts=self.bulk_puts - baseline.bulk_puts,
            bulk_gets=self.bulk_gets - baseline.bulk_gets,
            bulk_items=self.bulk_items - baseline.bulk_items,
            atomics=self.atomics - baseline.atomics,
            barriers=self.barriers - baseline.barriers,
            bytes_put=self.bytes_put - baseline.bytes_put,
            bytes_get=self.bytes_get - baseline.bytes_get,
            local_ops=self.local_ops - baseline.local_ops,
            on_node_ops=self.on_node_ops - baseline.on_node_ops,
            off_node_ops=self.off_node_ops - baseline.off_node_ops,
            comm_time=self.comm_time - baseline.comm_time,
            compute_time=self.compute_time - baseline.compute_time,
            io_time=self.io_time - baseline.io_time,
        )
        for category in set(self.time_by_category) | set(baseline.time_by_category):
            seconds = (self.time_by_category.get(category, 0.0)
                       - baseline.time_by_category.get(category, 0.0))
            if seconds:
                diff.time_by_category[category] = seconds
        return diff

    @staticmethod
    def aggregate(stats: list["CommStats"]) -> "CommStats":
        """Sum a list of per-rank stats into a job-wide total."""
        total = CommStats()
        for item in stats:
            total = total.merge(item)
        return total


#: A Cray XC30 "Edison"-like machine (the paper's testbed).
EDISON_LIKE = MachineModel(
    name="edison-like-xc30",
    cores_per_node=24,
    local_latency=8.0e-8,
    on_node_latency=6.0e-7,
    off_node_latency=2.2e-6,
    bandwidth=5.0e9,
    message_overhead=4.0e-7,
    atomic_latency=2.8e-6,
    congestion_base=1.5,
    congestion_nodes=64,
)

#: A small shared-memory workstation (used for the Fig 11 single-node study).
LAPTOP_LIKE = MachineModel(
    name="single-node-smp",
    cores_per_node=24,
    local_latency=6.0e-8,
    on_node_latency=2.5e-7,
    off_node_latency=2.5e-7,
    bandwidth=1.2e10,
    message_overhead=1.0e-7,
    atomic_latency=4.0e-7,
    congestion_base=0.3,
    congestion_nodes=1,
)
