"""Simulated PGAS (UPC-like) runtime.

merAligner is written in UPC and relies on a partitioned global address space:
every rank owns a slice of shared memory that any other rank can read or
write with one-sided operations, plus global atomics (``atomic_fetchadd``)
and barriers.  Real UPC/GASNet (or MPI one-sided) is not available in this
offline environment, so this subpackage provides a *deterministic simulated*
PGAS runtime:

* ranks are cooperatively scheduled inside one Python process (SPMD functions
  are plain functions, or generator functions where each ``yield`` is a
  barrier);
* the global address space is real data (a :class:`~repro.pgas.shared.SharedHeap`
  of per-rank segments), so algorithms run unchanged and produce real results;
* every remote access is metered by a :class:`~repro.pgas.cost_model.MachineModel`
  (latency, bandwidth, per-message overhead, on-node vs off-node, congestion),
  accumulating both :class:`~repro.pgas.cost_model.CommStats` counters and a
  per-rank virtual clock, which is what the performance figures report;
* how ranks execute is pluggable (:mod:`repro.backend`): the default
  cooperative driver, one OS thread per rank (``threaded``, with the legacy
  :class:`~repro.pgas.executor.ThreadedExecutor` as a shim), or one OS
  process per rank (``process``) for real wall-clock parallelism.

See DESIGN.md section 5 for the execution model and the substitution
rationale.
"""

from repro.pgas.cost_model import (
    MachineModel,
    CommStats,
    ComputeCosts,
    EDISON_LIKE,
    LAPTOP_LIKE,
)
from repro.pgas.gptr import GlobalPointer
from repro.pgas.shared import SharedHeap, SharedArray
from repro.pgas.trace import PhaseTrace, TimeBreakdown, VirtualClock
from repro.pgas.runtime import (BulkTransferPlan, PgasRuntime, RankContext,
                                SpmdResult)
from repro.pgas.collectives import (
    allreduce,
    broadcast,
    gather,
    exchange_counts,
)
from repro.pgas.executor import ThreadedExecutor

__all__ = [
    "MachineModel",
    "CommStats",
    "ComputeCosts",
    "EDISON_LIKE",
    "LAPTOP_LIKE",
    "GlobalPointer",
    "SharedHeap",
    "SharedArray",
    "PhaseTrace",
    "TimeBreakdown",
    "VirtualClock",
    "BulkTransferPlan",
    "PgasRuntime",
    "RankContext",
    "SpmdResult",
    "allreduce",
    "broadcast",
    "gather",
    "exchange_counts",
    "ThreadedExecutor",
]
