"""The SPMD runtime: rank contexts, one-sided communication, barriers.

Execution model
---------------

``PgasRuntime.run_spmd(fn, ...)`` runs ``fn(ctx, ...)`` once per rank.  If
``fn`` is a *generator function*, every ``yield`` is a barrier: the runtime
advances all ranks one phase at a time, snapshots their virtual clocks, and
synchronises them to the slowest rank -- exactly what a UPC ``upc_barrier``
does to wall time.  A plain (non-generator) function is a single phase.

How the ranks actually execute is delegated to a pluggable *execution
backend* (see :mod:`repro.backend`): the default ``cooperative`` backend runs
ranks one after another within a phase inside the calling process, which is
deterministic and safe because merAligner only uses *one-sided* operations
inside a phase -- a rank never blocks waiting for another rank except at
barriers.  The ``threaded`` backend runs the same SPMD functions on one real
OS thread per rank, and the ``process`` backend on one OS process per rank
with the heap served over shared memory and message channels.  All backends
produce the same alignments; ``run_spmd(fn, backend="...")`` selects one.

Every remote access performed through :class:`RankContext` updates both the
rank's :class:`~repro.pgas.cost_model.CommStats` counters and its
:class:`~repro.pgas.trace.VirtualClock` using the
:class:`~repro.pgas.cost_model.MachineModel`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

import numpy as np

from repro.pgas.cost_model import CommStats, EDISON_LIKE, MachineModel
from repro.pgas.gptr import GlobalPointer
from repro.pgas.shared import SharedHeap
from repro.pgas.trace import PhaseTrace, TimeBreakdown, VirtualClock


def estimate_nbytes(value: Any) -> int:
    """Best-effort estimate of the wire size of *value*.

    Strings and bytes count their length, numpy arrays their buffer size,
    packed sequences their compressed size, containers the sum of their
    elements plus a small per-element header.  Anything else is charged a
    fixed 16 bytes (a pointer plus metadata).
    """
    if value is None:
        return 0
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (int, float, np.integer, np.floating, bool)):
        return 8
    nbytes_attr = getattr(value, "nbytes", None)
    if isinstance(nbytes_attr, (int, np.integer)):
        return int(nbytes_attr)
    if isinstance(value, (list, tuple, set)):
        return sum(estimate_nbytes(item) for item in value) + 8 * len(value)
    if isinstance(value, dict):
        return (sum(estimate_nbytes(k) + estimate_nbytes(v) for k, v in value.items())
                + 8 * len(value))
    return 16


class BulkTransferPlan:
    """Per-destination payload accumulator of one bulk operation.

    Every layer that aggregates remote accesses -- :meth:`RankContext.get_many`,
    the distributed hash table's ``lookup_many``, the target store's
    ``fetch_many`` -- plans the same way: sum bytes and count items per
    destination rank (optionally deduplicating repeated objects within the
    batch), then charge **one** aggregated transfer per destination.  This
    class is that plan, so the pattern exists once.
    """

    def __init__(self) -> None:
        self._bytes: dict[int, int] = {}
        self._items: dict[int, int] = {}
        self._seen: set[Hashable] = set()

    def add(self, owner: int, nbytes: int, dedupe_key: Hashable = None) -> None:
        """Plan one item of *nbytes* for *owner*.

        When *dedupe_key* is given, an item whose key was already planned is
        skipped: it rides the aggregate transfer of its first occurrence.
        """
        if dedupe_key is not None:
            if dedupe_key in self._seen:
                return
            self._seen.add(dedupe_key)
        self._bytes[owner] = self._bytes.get(owner, 0) + nbytes
        self._items[owner] = self._items.get(owner, 0) + 1

    def charge_gets(self, ctx: "RankContext", category: str) -> None:
        """Charge one aggregated get per planned destination, in rank order."""
        for owner in sorted(self._bytes):
            ctx.charge_bulk_get(owner, self._bytes[owner], self._items[owner],
                                category=category)

    def charge_puts(self, ctx: "RankContext", category: str) -> None:
        """Charge one aggregated put per planned destination, in rank order."""
        for owner in sorted(self._bytes):
            ctx.charge_bulk_put(owner, self._bytes[owner], self._items[owner],
                                category=category)


class RankContext:
    """The per-rank handle algorithms use to touch the global address space."""

    def __init__(self, runtime: "PgasRuntime", rank: int) -> None:
        self._runtime = runtime
        self.me = rank
        self.n_ranks = runtime.n_ranks
        self.machine = runtime.machine
        self.heap = runtime.heap
        self.stats = CommStats()
        self.clock = VirtualClock()
        self.node = runtime.machine.node_of(rank)
        self._n_nodes = runtime.machine.n_nodes(runtime.n_ranks)
        # Set by ThreadedExecutor when ranks run on real threads; the
        # cooperative driver uses generator yields as barriers instead.
        self._barrier_impl: Callable[[], None] | None = None

    # -- topology ------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of nodes occupied by the job."""
        return self._n_nodes

    def node_of(self, rank: int) -> int:
        """Node hosting *rank*."""
        return self.machine.node_of(rank)

    def same_node(self, rank: int) -> bool:
        """True if *rank* is placed on the same node as this rank."""
        return self.node_of(rank) == self.node

    def ranks_on_my_node(self) -> list[int]:
        """All ranks co-located on this rank's node."""
        return [r for r in range(self.n_ranks) if self.node_of(r) == self.node]

    # -- cost charging --------------------------------------------------------

    def charge_op(self, op: str, count: float = 1.0) -> None:
        """Charge *count* occurrences of a named CPU operation."""
        cost = getattr(self.machine.compute, op)
        seconds = cost * count
        self.clock.charge_compute(seconds)
        self.stats.compute_time += seconds
        self.stats.record(f"compute:{op}", seconds)

    def charge_compute_seconds(self, seconds: float, category: str = "compute") -> None:
        """Charge raw compute seconds (used by calibrated kernels)."""
        self.clock.charge_compute(seconds)
        self.stats.compute_time += seconds
        self.stats.record(category, seconds)

    def charge_io_bytes(self, nbytes: int, category: str = "io") -> None:
        """Charge parallel-file-system I/O time for *nbytes*."""
        seconds = self.machine.compute.io_byte * nbytes
        self.clock.charge_io(seconds)
        self.stats.io_time += seconds
        self.stats.record(category, seconds)

    def _charge_transfer(self, owner: int, nbytes: int, category: str,
                         is_put: bool, n_items: int | None = None) -> None:
        """Charge one one-sided transfer; *n_items* marks it as aggregated.

        A plain transfer (``n_items is None``) is charged at
        :meth:`MachineModel.transfer_time`; an aggregated one at
        :meth:`MachineModel.bulk_transfer_time` and additionally tallied in
        the ``bulk_*`` counters.  Either way it is one message: one latency,
        one entry in ``puts``/``gets``, one locality counter.
        """
        same_rank = owner == self.me
        same_node = self.same_node(owner)
        if n_items is None:
            seconds = self.machine.transfer_time(
                nbytes, same_rank=same_rank, same_node=same_node,
                n_nodes=self._n_nodes)
        else:
            seconds = self.machine.bulk_transfer_time(
                nbytes, n_items, same_rank=same_rank, same_node=same_node,
                n_nodes=self._n_nodes)
        self.clock.charge_comm(seconds)
        self.stats.comm_time += seconds
        self.stats.record(category, seconds)
        if same_rank:
            self.stats.local_ops += 1
        elif same_node:
            self.stats.on_node_ops += 1
        else:
            self.stats.off_node_ops += 1
        if n_items is not None:
            self.stats.bulk_items += n_items
            if is_put:
                self.stats.bulk_puts += 1
            else:
                self.stats.bulk_gets += 1
        if is_put:
            self.stats.puts += 1
            self.stats.bytes_put += nbytes
        else:
            self.stats.gets += 1
            self.stats.bytes_get += nbytes

    def charge_get(self, owner: int, nbytes: int, category: str = "get") -> None:
        """Charge a one-sided get of *nbytes* from *owner* without data movement."""
        self._charge_transfer(owner, nbytes, category, is_put=False)

    def charge_put(self, owner: int, nbytes: int, category: str = "put") -> None:
        """Charge a one-sided put of *nbytes* to *owner* without data movement."""
        self._charge_transfer(owner, nbytes, category, is_put=True)

    def charge_bulk_get(self, owner: int, nbytes: int, n_items: int,
                        category: str = "bulk_get") -> None:
        """Charge one aggregated get of *n_items* objects from *owner*.

        One message-worth of latency plus the bandwidth of the summed payload
        (see :meth:`MachineModel.bulk_transfer_time`); counted as a single
        get in :class:`CommStats` with the item count in ``bulk_items``.
        """
        self._charge_transfer(owner, nbytes, category, is_put=False,
                              n_items=n_items)

    def charge_bulk_put(self, owner: int, nbytes: int, n_items: int,
                        category: str = "bulk_put") -> None:
        """Charge one aggregated put of *n_items* objects to *owner*."""
        self._charge_transfer(owner, nbytes, category, is_put=True,
                              n_items=n_items)

    # -- shared-memory operations ---------------------------------------------

    def alloc(self, segment: str, obj: Any) -> Any:
        """Allocate a named segment in this rank's shared memory."""
        return self.heap.alloc(self.me, segment, obj)

    def put(self, owner: int, segment: str, key: Hashable, value: Any,
            nbytes: int | None = None, category: str = "put") -> GlobalPointer:
        """One-sided store of *value* into ``owner.segment[key]``.

        When *nbytes* is omitted the wire size is derived from what the write
        actually moves: the value's estimated size for key/value segments,
        the indexed extent for :class:`SharedArray` segments (so a slice
        assignment is charged for its full width, not for the scalar being
        broadcast).  Returns a :class:`GlobalPointer` to the stored object.
        """
        if nbytes is None:
            nbytes = self.heap.wire_nbytes(owner, segment, key, value)
        self._charge_transfer(owner, nbytes, category, is_put=True)
        self.heap.store(owner, segment, key, value)
        return GlobalPointer(owner=owner, segment=segment, key=key, nbytes=nbytes)

    def get(self, owner: int, segment: str, key: Hashable,
            nbytes: int | None = None, category: str = "get",
            default: Any = None, missing_ok: bool = False) -> Any:
        """One-sided load of ``owner.segment[key]``.

        When *nbytes* is omitted, the fetched object's wire size is charged
        (the realistic behaviour: you pay for what comes over the wire; for
        :class:`SharedArray` segments that is the indexed extent).  With
        ``missing_ok=True`` a missing key returns *default* instead of
        raising; the lookup latency is still charged.
        """
        value = self.heap.load(owner, segment, key, default=default,
                               missing_ok=missing_ok)
        if nbytes is None:
            nbytes = self.heap.wire_nbytes(owner, segment, key, value)
        self._charge_transfer(owner, nbytes, category, is_put=False)
        return value

    def get_ptr(self, ptr: GlobalPointer, category: str = "get") -> Any:
        """Dereference a global pointer with cost accounting."""
        return self.get(ptr.owner, ptr.segment, ptr.key,
                        nbytes=ptr.nbytes or None, category=category)

    # -- bulk one-sided operations ---------------------------------------------

    def get_many(self, requests: list[tuple[int, str, Hashable]],
                 category: str = "bulk_get", default: Any = None,
                 missing_ok: bool = False) -> list[Any]:
        """One-sided bulk load of ``[(owner, segment, key), ...]``.

        Requests are grouped by destination rank; each destination is charged
        **one** aggregated get (one latency + the summed payload bandwidth)
        instead of one message per key, mirroring the aggregating-stores
        optimization on the load side.  A request repeated within the batch
        rides the aggregate transfer once.  Values are returned in request
        order.
        """
        values = self.heap.load_many(requests, default=default,
                                     missing_ok=missing_ok)
        plan = BulkTransferPlan()
        for (owner, segment, key), value in zip(requests, values):
            plan.add(owner, self.heap.wire_nbytes(owner, segment, key, value),
                     dedupe_key=(owner, segment, key))
        plan.charge_gets(self, category)
        return values

    def put_many(self, requests: list[tuple[int, str, Hashable, Any]],
                 category: str = "bulk_put") -> list[GlobalPointer]:
        """One-sided bulk store of ``[(owner, segment, key, value), ...]``.

        Like :meth:`get_many` but for stores: one aggregated put per
        destination rank.  Returns a :class:`GlobalPointer` per request, in
        request order.
        """
        pointers: list[GlobalPointer] = []
        plan = BulkTransferPlan()
        for owner, segment, key, value in requests:
            nbytes = self.heap.wire_nbytes(owner, segment, key, value)
            pointers.append(GlobalPointer(owner=owner, segment=segment,
                                          key=key, nbytes=nbytes))
            plan.add(owner, nbytes)
        self.heap.store_many(requests)
        plan.charge_puts(self, category)
        return pointers

    def fetch_add(self, owner: int, segment: str, index: int, amount: int = 1,
                  category: str = "atomic") -> int:
        """Global ``atomic_fetchadd`` on a :class:`SharedArray` slot.

        Returns the value *before* the addition, like UPC's
        ``bupc_atomicI64_fetchadd_strict``.
        """
        same_rank = owner == self.me
        same_node = self.same_node(owner)
        seconds = self.machine.atomic_time(same_rank=same_rank, same_node=same_node)
        self.clock.charge_comm(seconds)
        self.stats.comm_time += seconds
        self.stats.atomics += 1
        self.stats.record(category, seconds)
        if same_rank:
            self.stats.local_ops += 1
        elif same_node:
            self.stats.on_node_ops += 1
        else:
            self.stats.off_node_ops += 1
        return self.heap.fetch_add(owner, segment, index, amount)

    def barrier(self) -> None:
        """Synchronise with all other ranks.

        Only available under a real-parallel execution backend (threaded or
        process, including the legacy :class:`repro.pgas.executor.ThreadedExecutor`);
        cooperative SPMD functions express barriers with ``yield`` instead.
        """
        if self._barrier_impl is None:
            raise RuntimeError(
                "barrier() requires the ThreadedExecutor or another real-parallel "
                "backend; in cooperative run_spmd() use a generator function "
                "and 'yield' at barriers")
        self._barrier_impl()

    # -- work partitioning helpers --------------------------------------------

    def my_slice(self, n_items: int) -> slice:
        """Contiguous block of ``n_items`` owned by this rank (block partition)."""
        base, extra = divmod(n_items, self.n_ranks)
        start = self.me * base + min(self.me, extra)
        stop = start + base + (1 if self.me < extra else 0)
        return slice(start, stop)

    def my_items(self, items: list) -> list:
        """The block-partitioned share of *items* owned by this rank."""
        return items[self.my_slice(len(items))]


@dataclass
class SpmdResult:
    """Result of one :meth:`PgasRuntime.run_spmd` invocation."""

    results: list[Any]
    phases: list[PhaseTrace] = field(default_factory=list)
    per_rank_stats: list[CommStats] = field(default_factory=list)
    backend: str = "cooperative"
    #: Caller-supplied invocation label (e.g. ``"plan:align/query"``); shown
    #: in backend failure diagnostics and kept here for telemetry.
    label: str | None = None

    @property
    def n_ranks(self) -> int:
        return len(self.results)

    @property
    def elapsed(self) -> float:
        """End-to-end modelled wall time (sum of phase elapsed times)."""
        return sum(phase.elapsed for phase in self.phases)

    @property
    def wall_elapsed(self) -> float:
        """Measured host wall-clock seconds spent inside the recorded phases."""
        return sum(phase.wall_seconds for phase in self.phases)

    @property
    def total_stats(self) -> CommStats:
        """Job-wide aggregated communication statistics."""
        return CommStats.aggregate(self.per_rank_stats)

    def phase(self, name: str) -> PhaseTrace:
        """Return the single phase called *name* (raises if absent/ambiguous)."""
        matches = [p for p in self.phases if p.name == name]
        if not matches:
            raise KeyError(f"no phase named {name!r}")
        if len(matches) > 1:
            raise KeyError(f"multiple phases named {name!r}; use phases list directly")
        return matches[0]

    def phase_elapsed(self, name: str) -> float:
        """Summed elapsed time of all phases with the given name."""
        total = 0.0
        found = False
        for p in self.phases:
            if p.name == name:
                total += p.elapsed
                found = True
        if not found:
            raise KeyError(f"no phase named {name!r}")
        return total


class PgasRuntime:
    """A simulated PGAS machine: shared heap + rank contexts + SPMD driver."""

    def __init__(self, n_ranks: int, machine: MachineModel = EDISON_LIKE,
                 backend: str = "cooperative") -> None:
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = n_ranks
        self.machine = machine
        self.heap = SharedHeap(n_ranks)
        self.default_backend = backend
        self.contexts = [RankContext(self, rank) for rank in range(n_ranks)]
        self.phases: list[PhaseTrace] = []
        # Optional repro.obs.MetricsRegistry: when attached (the serving
        # stack does), run_spmd records each invocation's measured host
        # wall-clock, labelled like SpmdResult.label.  Purely passive -- the
        # virtual clocks and CommStats never see it.
        self.metrics = None
        # Objects with rank-private state a multiprocess run must report back
        # (e.g. the per-node software caches): name -> gatherable.  See
        # repro.backend.process for the gather/absorb protocol.
        self.gatherables: dict[str, Any] = {}

    @property
    def atomic_lock(self):
        """The heap's atomic lock (kept for backwards compatibility)."""
        return self.heap.lock

    def register_gatherable(self, name: str, obj: Any) -> str:
        """Register an object whose rank-private state the process backend
        gathers back to the driver after a run.

        The object must implement ``gather_state()`` (returning a picklable
        snapshot) and ``absorb_states(pairs)`` (merging a list of
        ``(before, after)`` snapshot pairs into itself).  Names identify one
        live object each; re-registering a name replaces the previous object,
        so repeated runs on a shared runtime (which build fresh caches every
        time) do not accumulate dead gatherables.
        """
        self.gatherables[name] = obj
        return name

    @property
    def n_nodes(self) -> int:
        return self.machine.n_nodes(self.n_ranks)

    def context(self, rank: int) -> RankContext:
        """The persistent context of *rank* (state survives across run_spmd calls)."""
        return self.contexts[rank]

    def _barrier(self) -> None:
        """Synchronise all virtual clocks to the slowest rank."""
        latest = max(ctx.clock.now for ctx in self.contexts)
        barrier_cost = self.machine.barrier_time(self.n_ranks)
        for ctx in self.contexts:
            ctx.clock.advance_to(latest)
            ctx.clock.charge_comm(barrier_cost)
            ctx.stats.comm_time += barrier_cost
            ctx.stats.barriers += 1

    def _record_phase(self, name: str, before: list[TimeBreakdown],
                      wall_seconds: float = 0.0) -> PhaseTrace:
        per_rank = [ctx.clock.snapshot() - prev for ctx, prev in zip(self.contexts, before)]
        trace = PhaseTrace(name=name, per_rank=per_rank, wall_seconds=wall_seconds)
        self.phases.append(trace)
        return trace

    def run_spmd(self, fn: Callable[..., Any], *args: Any,
                 phase_name: str | None = None,
                 backend: Any = None,
                 label: str | None = None) -> SpmdResult:
        """Run ``fn(ctx, *args)`` on every rank.

        If *fn* is a generator function, every ``yield`` acts as a barrier and
        may yield a string naming the phase that just completed; the final
        ``return`` value is the rank's result.  A plain function is one phase
        named *phase_name* (default: the function name).

        *backend* selects the execution backend -- a registered name
        (``"cooperative"``, ``"threaded"``, ``"process"``) or an
        :class:`~repro.backend.base.ExecutionBackend` instance; ``None`` uses
        the runtime's default.  All backends report through the same phase
        traces and communication statistics.

        *label* names the invocation for diagnostics -- the plan runner and
        the serving stack pass e.g. ``"plan:align"`` or ``"serve:count"`` so
        a rank failure or barrier timeout on a real-parallel backend says
        *which* pipeline invocation it killed.

        The returned :attr:`SpmdResult.per_rank_stats` covers *this invocation
        only*: rank contexts persist across invocations, so their cumulative
        counters are snapshotted before the run and the difference reported.
        """
        from repro.backend import resolve_backend
        impl = resolve_backend(backend if backend is not None
                               else self.default_backend)
        phases_before = len(self.phases)
        stats_before = [ctx.stats.copy() for ctx in self.contexts]
        wall_start = time.perf_counter()
        results = impl.execute(self, fn, args, phase_name=phase_name,
                               label=label)
        if self.metrics is not None:
            wall = time.perf_counter() - wall_start
            series_label = label or phase_name or getattr(fn, "__name__",
                                                          "spmd")
            self.metrics.counter("backend_invocations_total",
                                 label=series_label,
                                 backend=impl.name).inc()
            self.metrics.histogram("backend_invocation_wall_seconds",
                                   label=series_label).observe(wall)
        return SpmdResult(
            results=results,
            phases=self.phases[phases_before:],
            per_rank_stats=[ctx.stats.delta(prev)
                            for ctx, prev in zip(self.contexts, stats_before)],
            backend=impl.name,
            label=label,
        )

    def _run_generators(self, fn: Callable[..., Any], args: tuple) -> list[Any]:
        """The cooperative generator driver (used by the cooperative backend)."""
        generators = [fn(ctx, *args) for ctx in self.contexts]
        results: list[Any] = [None] * self.n_ranks
        live = [True] * self.n_ranks
        round_index = 0
        while any(live):
            wall_start = time.perf_counter()
            before = [ctx.clock.snapshot() for ctx in self.contexts]
            labels: list[str] = []
            for rank, gen in enumerate(generators):
                if not live[rank]:
                    continue
                try:
                    label = next(gen)
                    if isinstance(label, str):
                        labels.append(label)
                except StopIteration as stop:
                    results[rank] = stop.value
                    live[rank] = False
            finished_idle = (not any(live) and not labels
                             and all(ctx.clock.snapshot().total == prev.total
                                     for ctx, prev in zip(self.contexts, before)))
            if finished_idle:
                # The generators only had a bare `return` left after their
                # final labelled yield; do not record an empty trailing phase.
                break
            name = labels[0] if labels else f"phase{round_index}"
            self._record_phase(name, before,
                               wall_seconds=time.perf_counter() - wall_start)
            self._barrier()
            round_index += 1
        return results

    # -- convenience -----------------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Total modelled wall time accumulated so far (max over ranks)."""
        return max((ctx.clock.now for ctx in self.contexts), default=0.0)

    @property
    def total_stats(self) -> CommStats:
        """Aggregated communication statistics over all ranks."""
        return CommStats.aggregate([ctx.stats for ctx in self.contexts])

    def phase(self, name: str) -> PhaseTrace:
        """Return the first recorded phase with the given name."""
        for trace in self.phases:
            if trace.name == name:
                return trace
        raise KeyError(f"no phase named {name!r}")
