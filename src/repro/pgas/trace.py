"""Virtual clocks and per-phase time traces.

The performance figures of the paper report, per phase, computation and
communication time (Figs 8-10, Table I) and end-to-end time (Fig 1, Table II).
Each simulated rank carries a :class:`VirtualClock`; the runtime snapshots the
clocks at every barrier to produce a :class:`PhaseTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TimeBreakdown:
    """Compute / communication / IO split of a span of virtual time."""

    compute: float = 0.0
    comm: float = 0.0
    io: float = 0.0

    @property
    def total(self) -> float:
        return self.compute + self.comm + self.io

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(self.compute + other.compute,
                             self.comm + other.comm,
                             self.io + other.io)

    def __sub__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(self.compute - other.compute,
                             self.comm - other.comm,
                             self.io - other.io)


class VirtualClock:
    """Accumulates modelled seconds for one simulated rank."""

    def __init__(self) -> None:
        self.compute = 0.0
        self.comm = 0.0
        self.io = 0.0

    @property
    def now(self) -> float:
        """Current virtual time of the rank."""
        return self.compute + self.comm + self.io

    def charge_compute(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.compute += seconds

    def charge_comm(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.comm += seconds

    def charge_io(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.io += seconds

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to *timestamp* (barrier wait time).

        Wait time is attributed to communication, matching how the paper's
        timers attribute time spent idling at synchronisation points.
        """
        gap = timestamp - self.now
        if gap > 0:
            self.comm += gap

    def snapshot(self) -> TimeBreakdown:
        return TimeBreakdown(compute=self.compute, comm=self.comm, io=self.io)


@dataclass
class PhaseTrace:
    """Per-rank time breakdown of one phase (span between barriers).

    ``wall_seconds`` is the *measured* wall-clock duration of the phase on
    the host machine (how long the execution backend actually took), as
    opposed to the modelled virtual seconds in ``per_rank``; it is what the
    backend-scaling benchmark compares across execution backends.
    """

    name: str
    per_rank: list[TimeBreakdown] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def n_ranks(self) -> int:
        return len(self.per_rank)

    @property
    def elapsed(self) -> float:
        """Phase wall time: the slowest rank's total."""
        return max((b.total for b in self.per_rank), default=0.0)

    @property
    def max_compute(self) -> float:
        return max((b.compute for b in self.per_rank), default=0.0)

    @property
    def min_compute(self) -> float:
        return min((b.compute for b in self.per_rank), default=0.0)

    @property
    def avg_compute(self) -> float:
        if not self.per_rank:
            return 0.0
        return sum(b.compute for b in self.per_rank) / len(self.per_rank)

    @property
    def max_total(self) -> float:
        return self.elapsed

    @property
    def min_total(self) -> float:
        return min((b.total for b in self.per_rank), default=0.0)

    @property
    def avg_total(self) -> float:
        if not self.per_rank:
            return 0.0
        return sum(b.total for b in self.per_rank) / len(self.per_rank)

    @property
    def total_comm(self) -> float:
        """Sum of communication time across ranks (Fig 9 style aggregate)."""
        return sum(b.comm for b in self.per_rank)

    @property
    def total_compute(self) -> float:
        return sum(b.compute for b in self.per_rank)

    def summary(self) -> dict[str, float]:
        """A small dictionary of the statistics the paper tables report."""
        return {
            "elapsed": self.elapsed,
            "max_compute": self.max_compute,
            "min_compute": self.min_compute,
            "avg_compute": self.avg_compute,
            "max_total": self.max_total,
            "min_total": self.min_total,
            "avg_total": self.avg_total,
        }
