"""Global pointers into the partitioned global address space.

A UPC global pointer is (thread affinity, local address).  Here the "local
address" is a ``(segment name, key)`` pair inside the owning rank's shared
segment; see :class:`repro.pgas.shared.SharedHeap`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable


@dataclass(frozen=True)
class GlobalPointer:
    """A pointer to an object living in some rank's shared segment.

    Attributes:
        owner: rank that has affinity to the object.
        segment: name of the shared segment (e.g. ``"targets"``).
        key: key of the object within the segment (e.g. a target id).
        nbytes: size hint used by the cost model when the object is fetched.
    """

    owner: int
    segment: str
    key: Hashable
    nbytes: int = 0

    def __post_init__(self) -> None:
        if self.owner < 0:
            raise ValueError("owner rank must be non-negative")
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")

    def with_size(self, nbytes: int) -> "GlobalPointer":
        """Return a copy of the pointer with an updated size hint."""
        return GlobalPointer(self.owner, self.segment, self.key, nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"GlobalPointer(owner={self.owner}, segment={self.segment!r}, "
                f"key={self.key!r}, nbytes={self.nbytes})")
