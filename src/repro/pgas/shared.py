"""The shared (global) address space of the simulated PGAS runtime.

Every rank owns a set of named *segments*.  A segment is a key/value store
(dictionary semantics), a fixed-size numeric array (:class:`SharedArray`), or
an arbitrary shared object (e.g. a hash-table partition).  Any rank may read
or write any segment, but only accesses performed through a
:class:`repro.pgas.runtime.RankContext` are charged by the cost model, so all
algorithm code is expected to go through the context's ``put``/``get``/
``fetch_add`` methods rather than touching the heap directly (direct access is
reserved for test assertions and post-run inspection).

Access verbs
------------

Algorithm code addresses the heap through a small set of *verbs* --
:meth:`SharedHeap.load`, :meth:`SharedHeap.store`, :meth:`SharedHeap.apply`,
:meth:`SharedHeap.fetch_add` and their bulk variants -- rather than by
indexing raw segment objects.  The verbs are what makes the heap *pluggable*:
the cooperative and threaded execution backends run them directly against
this in-process heap, while the multiprocess backend substitutes a client
that forwards the same verbs over per-rank message channels to a heap server
(see :mod:`repro.backend.process`), with :class:`SharedArray` segments backed
by ``multiprocessing.shared_memory`` so numeric traffic never leaves shared
memory.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable, Iterable, Iterator

import numpy as np

from repro.pgas.gptr import GlobalPointer

_RAISE_ON_MISSING = object()


class SharedArray:
    """A fixed-size numeric array living in one rank's shared segment.

    Used for the ``stack_ptr`` counters and local-shared stacks of the
    aggregating-stores optimization and for any other flat numeric state.

    The backing buffer is an ordinary private numpy array by default; the
    multiprocess execution backend *promotes* it into a
    ``multiprocessing.shared_memory`` block for the duration of a run (see
    :meth:`rebind`), which is invisible to algorithm code.
    """

    def __init__(self, size: int, dtype: str = "int64", fill: float = 0) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._data = np.full(size, fill, dtype=dtype)

    @classmethod
    def from_buffer(cls, size: int, dtype: str, buffer: Any) -> "SharedArray":
        """An array view over an existing shared buffer (no copy).

        Used by multiprocess workers to attach a ``SharedMemory`` block
        another process allocated.
        """
        array = cls(0, dtype=dtype)
        array._data = np.ndarray(size, dtype=dtype, buffer=buffer)
        return array

    @property
    def data(self) -> np.ndarray:
        """The underlying numpy array (direct access is not cost-metered)."""
        return self._data

    @property
    def dtype_name(self) -> str:
        return str(self._data.dtype)

    def __len__(self) -> int:
        return int(self._data.size)

    def __getitem__(self, index: int | slice) -> Any:
        return self._data[index]

    def __setitem__(self, index: int | slice, value: Any) -> None:
        self._data[index] = value

    @property
    def nbytes(self) -> int:
        return int(self._data.nbytes)

    def index_nbytes(self, index: Any) -> int:
        """Wire size of the element(s) addressed by *index*.

        A scalar index touches one element (``itemsize`` bytes); a slice
        touches its full extent.  This is what the cost model charges for
        reads and writes through a rank context, so a slice assignment of a
        broadcast scalar is charged for every element it writes, not for the
        scalar.
        """
        itemsize = int(self._data.itemsize)
        if isinstance(index, slice):
            return len(range(*index.indices(int(self._data.size)))) * itemsize
        if isinstance(index, (int, np.integer)):
            return itemsize
        # Fancy indexing: materialise the selection to measure it.
        return int(np.asarray(self._data[index]).nbytes)

    def rebind(self, buffer: Any) -> None:
        """Move the array's contents onto *buffer* (a writable buffer object).

        Used by the multiprocess backend to relocate the array into a
        ``multiprocessing.shared_memory`` block before forking workers; the
        array object keeps its identity so every existing reference sees the
        shared storage.
        """
        relocated = np.ndarray(self._data.shape, dtype=self._data.dtype,
                               buffer=buffer)
        relocated[:] = self._data
        self._data = relocated

    def unbind(self) -> None:
        """Copy the contents back into private memory (end of a process run)."""
        self._data = np.array(self._data, copy=True)


class SharedHeap:
    """Per-rank shared segments making up the global address space."""

    def __init__(self, n_ranks: int) -> None:
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self._n_ranks = n_ranks
        self._segments: list[dict[str, Any]] = [dict() for _ in range(n_ranks)]
        self._lock = threading.Lock()

    @property
    def n_ranks(self) -> int:
        return self._n_ranks

    @property
    def lock(self) -> threading.Lock:
        """The lock serialising atomic and compound heap mutations."""
        return self._lock

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._n_ranks:
            raise IndexError(f"rank {rank} out of range [0, {self._n_ranks})")

    def alloc(self, rank: int, segment: str, obj: Any) -> Any:
        """Allocate a named segment in *rank*'s shared memory.

        Re-allocating an existing segment name raises, mirroring the fact that
        UPC shared allocations are collective one-time events.
        """
        self._check_rank(rank)
        if segment in self._segments[rank]:
            raise KeyError(f"segment {segment!r} already allocated on rank {rank}")
        self._segments[rank][segment] = obj
        return obj

    def alloc_all(self, segment: str, factory) -> list[Any]:
        """Allocate *segment* on every rank using ``factory(rank)``."""
        return [self.alloc(rank, segment, factory(rank)) for rank in range(self._n_ranks)]

    def free(self, rank: int, segment: str) -> None:
        """Free a named segment (used by tests exercising re-allocation)."""
        self._check_rank(rank)
        self._segments[rank].pop(segment, None)

    def segment(self, rank: int, segment: str) -> Any:
        """Return the object backing ``segment`` on *rank*."""
        self._check_rank(rank)
        try:
            return self._segments[rank][segment]
        except KeyError:
            raise KeyError(f"segment {segment!r} not allocated on rank {rank}") from None

    def has_segment(self, rank: int, segment: str) -> bool:
        self._check_rank(rank)
        return segment in self._segments[rank]

    def segments_named(self, segment: str) -> list[Any]:
        """Return the per-rank objects backing *segment* on every rank."""
        return [self.segment(rank, segment) for rank in range(self._n_ranks)]

    def iter_segments(self) -> Iterator[tuple[int, str, Any]]:
        """Iterate ``(rank, name, object)`` over every allocated segment."""
        for rank, segments in enumerate(self._segments):
            for name, obj in segments.items():
                yield rank, name, obj

    # -- access verbs (the pluggable-backend surface) ------------------------

    def load(self, owner: int, segment: str, key: Hashable,
             default: Any = _RAISE_ON_MISSING, missing_ok: bool = False) -> Any:
        """Read ``owner.segment[key]``.

        A missing key in a key/value segment raises :class:`KeyError` unless
        ``missing_ok`` is set, in which case *default* is returned.
        """
        seg = self.segment(owner, segment)
        if isinstance(seg, dict):
            if key not in seg:
                if missing_ok:
                    return None if default is _RAISE_ON_MISSING else default
                raise KeyError(
                    f"key {key!r} missing in segment {segment!r} on rank {owner}")
            return seg[key]
        return seg[key]

    def load_many(self, requests: list[tuple[int, str, Hashable]],
                  default: Any = None, missing_ok: bool = False) -> list[Any]:
        """Read many ``(owner, segment, key)`` addresses; values in request order."""
        return [self.load(owner, segment, key, default=default,
                          missing_ok=missing_ok)
                for owner, segment, key in requests]

    def store(self, owner: int, segment: str, key: Hashable, value: Any) -> None:
        """Write ``owner.segment[key] = value``."""
        seg = self.segment(owner, segment)
        seg[key] = value

    def store_many(self, requests: list[tuple[int, str, Hashable, Any]]) -> None:
        """Write many ``(owner, segment, key, value)`` requests in order."""
        for owner, segment, key, value in requests:
            self.store(owner, segment, key, value)

    def contains(self, owner: int, segment: str, key: Hashable) -> bool:
        """True if *key* exists in the key/value segment."""
        return key in self.segment(owner, segment)

    def apply(self, owner: int, segment: str, fn: Callable[..., Any],
              *args: Any) -> Any:
        """Run ``fn(segment_object, *args)`` where the segment lives.

        This is the generic verb for compound operations on shared objects
        (hash-table probes and inserts, stack reservations, flag flips): *fn*
        must be a module-level function so the multiprocess backend can ship
        it by reference to the heap server.  Compound mutations are serialised
        under the heap lock, which is what keeps concurrent backends correct
        without per-bucket locks in the data structures themselves.
        """
        with self._lock:
            return fn(self.segment(owner, segment), *args)

    def apply_many(self, requests: list[tuple[int, str, Callable[..., Any], tuple]]
                   ) -> list[Any]:
        """Run many ``(owner, segment, fn, args)`` applications in order."""
        return [self.apply(owner, segment, fn, *args)
                for owner, segment, fn, args in requests]

    def fetch_add(self, owner: int, segment: str, index: int, amount: int = 1) -> int:
        """Atomic fetch-and-add on a :class:`SharedArray` slot.

        Returns the value *before* the addition.
        """
        array = self.segment(owner, segment)
        if not isinstance(array, SharedArray):
            raise TypeError(f"segment {segment!r} on rank {owner} is not a SharedArray")
        with self._lock:
            previous = int(array[index])
            array[index] = previous + amount
        return previous

    def wire_nbytes(self, owner: int, segment: str, key: Hashable,
                    value: Any) -> int:
        """Bytes a transfer of ``segment[key]`` (carrying *value*) moves.

        For :class:`SharedArray` segments the charged size is derived from
        the *index extent* (so slice reads and writes cost their full width);
        for key/value segments it is the estimated size of the value.
        """
        from repro.pgas.runtime import estimate_nbytes
        seg = self.segment(owner, segment)
        if isinstance(seg, SharedArray):
            return seg.index_nbytes(key)
        return estimate_nbytes(value)

    # -- key/value access helpers (dictionary-style segments) ---------------

    def read(self, ptr: GlobalPointer) -> Any:
        """Dereference a global pointer (no cost accounting)."""
        return self.segment(ptr.owner, ptr.segment)[ptr.key]

    def write(self, ptr: GlobalPointer, value: Any) -> None:
        """Store through a global pointer (no cost accounting)."""
        seg = self.segment(ptr.owner, ptr.segment)
        seg[ptr.key] = value

    def keys(self, rank: int, segment: str) -> Iterable[Hashable]:
        """Iterate the keys of a dictionary-style segment."""
        seg = self.segment(rank, segment)
        if not isinstance(seg, dict):
            raise TypeError(f"segment {segment!r} on rank {rank} is not key/value")
        return seg.keys()
