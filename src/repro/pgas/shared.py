"""The shared (global) address space of the simulated PGAS runtime.

Every rank owns a set of named *segments*.  A segment is a key/value store
(dictionary semantics) or a fixed-size numeric array (:class:`SharedArray`).
Any rank may read or write any segment, but only accesses performed through a
:class:`repro.pgas.runtime.RankContext` are charged by the cost model, so all
algorithm code is expected to go through the context's ``put``/``get``/
``fetch_add`` methods rather than touching the heap directly (direct access is
reserved for test assertions and post-run inspection).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable

import numpy as np

from repro.pgas.gptr import GlobalPointer


class SharedArray:
    """A fixed-size numeric array living in one rank's shared segment.

    Used for the ``stack_ptr`` counters and local-shared stacks of the
    aggregating-stores optimization and for any other flat numeric state.
    """

    def __init__(self, size: int, dtype: str = "int64", fill: float = 0) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._data = np.full(size, fill, dtype=dtype)

    @property
    def data(self) -> np.ndarray:
        """The underlying numpy array (direct access is not cost-metered)."""
        return self._data

    def __len__(self) -> int:
        return int(self._data.size)

    def __getitem__(self, index: int | slice) -> Any:
        return self._data[index]

    def __setitem__(self, index: int | slice, value: Any) -> None:
        self._data[index] = value

    @property
    def nbytes(self) -> int:
        return int(self._data.nbytes)


class SharedHeap:
    """Per-rank shared segments making up the global address space."""

    def __init__(self, n_ranks: int) -> None:
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self._n_ranks = n_ranks
        self._segments: list[dict[str, Any]] = [dict() for _ in range(n_ranks)]

    @property
    def n_ranks(self) -> int:
        return self._n_ranks

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._n_ranks:
            raise IndexError(f"rank {rank} out of range [0, {self._n_ranks})")

    def alloc(self, rank: int, segment: str, obj: Any) -> Any:
        """Allocate a named segment in *rank*'s shared memory.

        Re-allocating an existing segment name raises, mirroring the fact that
        UPC shared allocations are collective one-time events.
        """
        self._check_rank(rank)
        if segment in self._segments[rank]:
            raise KeyError(f"segment {segment!r} already allocated on rank {rank}")
        self._segments[rank][segment] = obj
        return obj

    def alloc_all(self, segment: str, factory) -> list[Any]:
        """Allocate *segment* on every rank using ``factory(rank)``."""
        return [self.alloc(rank, segment, factory(rank)) for rank in range(self._n_ranks)]

    def free(self, rank: int, segment: str) -> None:
        """Free a named segment (used by tests exercising re-allocation)."""
        self._check_rank(rank)
        self._segments[rank].pop(segment, None)

    def segment(self, rank: int, segment: str) -> Any:
        """Return the object backing ``segment`` on *rank*."""
        self._check_rank(rank)
        try:
            return self._segments[rank][segment]
        except KeyError:
            raise KeyError(f"segment {segment!r} not allocated on rank {rank}") from None

    def has_segment(self, rank: int, segment: str) -> bool:
        self._check_rank(rank)
        return segment in self._segments[rank]

    def segments_named(self, segment: str) -> list[Any]:
        """Return the per-rank objects backing *segment* on every rank."""
        return [self.segment(rank, segment) for rank in range(self._n_ranks)]

    # -- key/value access helpers (dictionary-style segments) ---------------

    def read(self, ptr: GlobalPointer) -> Any:
        """Dereference a global pointer (no cost accounting)."""
        seg = self.segment(ptr.owner, ptr.segment)
        if isinstance(seg, dict):
            return seg[ptr.key]
        return seg[ptr.key]

    def write(self, ptr: GlobalPointer, value: Any) -> None:
        """Store through a global pointer (no cost accounting)."""
        seg = self.segment(ptr.owner, ptr.segment)
        seg[ptr.key] = value

    def keys(self, rank: int, segment: str) -> Iterable[Hashable]:
        """Iterate the keys of a dictionary-style segment."""
        seg = self.segment(rank, segment)
        if not isinstance(seg, dict):
            raise TypeError(f"segment {segment!r} on rank {rank} is not key/value")
        return seg.keys()
