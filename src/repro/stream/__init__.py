"""Streaming ingestion: bounded-memory read pipelines with backpressure.

The paper's whole premise is alignment at scales where the data cannot sit
on one node; this package carries that premise end to end in the serving
stack.  Reads flow from file or socket to SAM without a full library ever
being resident:

* :mod:`repro.stream.sources` -- chunked record sources (FASTQ, gzipped
  FASTQ, SeqDB, in-memory iterables) yielding bounded, unit-aware
  :class:`ReadChunk` s, so paired mates never split across chunks;
* :mod:`repro.stream.channel` -- :class:`BoundedChannel`, the size-capped
  producer/consumer queue whose blocking ``put`` is the backpressure that
  keeps RSS flat (and whose ``reject`` policy becomes gateway ``BUSY``);
* :meth:`repro.service.session.AlignmentSession.align_stream` and friends
  consume the chunks one window at a time and emit SAM/TSV incrementally,
  byte-identical to the materialised path at any chunk size.

See docs/streaming.md for the memory model and the wire framing of the
``ALIGNSTREAM`` family of verbs.
"""

from repro.stream.channel import BoundedChannel, ChannelClosed, ChannelFull
from repro.stream.sources import (DEFAULT_CHUNK_READS, ReadChunk,
                                  open_read_stream, stream_fastq,
                                  stream_fastq_paired, stream_records,
                                  stream_seqdb, stream_seqdb_paired)

__all__ = [
    "BoundedChannel",
    "ChannelClosed",
    "ChannelFull",
    "DEFAULT_CHUNK_READS",
    "ReadChunk",
    "open_read_stream",
    "stream_fastq",
    "stream_fastq_paired",
    "stream_records",
    "stream_seqdb",
    "stream_seqdb_paired",
]
