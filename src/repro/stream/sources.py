"""Chunked, bounded-memory read sources (FASTQ / SeqDB / in-memory).

Every source yields :class:`ReadChunk` objects of at most ``chunk_reads``
records, converted to :class:`repro.dna.synthetic.ReadRecord` exactly as the
materialised :func:`repro.core.plan.normalize_reads` path converts them --
so a streamed run sees byte-for-byte the same reads as a materialised one.

Sources are **unit-aware**: with ``group_size=2`` (paired-end) a chunk
always holds whole R1/R2 pairs, never a split pair, no matter what
``chunk_reads`` was requested.  FASTQ parsing rides on
:func:`repro.io.fastq.iter_fastq`, so gzipped input is transparent and
malformed/truncated records raise :class:`repro.io.errors.InputFileError`
with the record index and line number -- mid-stream, after earlier chunks
were already processed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.dna.synthetic import ReadRecord
from repro.io.errors import InputFileError
from repro.io.fastq import FastqRecord, iter_fastq
from repro.io.seqdb import SeqDbReader

__all__ = ["ReadChunk", "stream_records", "stream_fastq",
           "stream_fastq_paired", "stream_seqdb", "stream_seqdb_paired",
           "open_read_stream", "SEQDB_SUFFIXES"]

#: File suffixes routed to the SeqDB reader instead of the FASTQ parser
#: (mirrors :data:`repro.core.plan.SEQDB_SUFFIXES`).
SEQDB_SUFFIXES = (".seqdb", ".sqdb", ".db")

#: Default reads per chunk when a caller enables streaming without a size.
DEFAULT_CHUNK_READS = 4096


@dataclass(frozen=True)
class ReadChunk:
    """One bounded slice of a read stream.

    ``index`` is the 0-based chunk number, ``start_read`` the global offset
    of the first record -- together they let error messages and metrics
    locate a chunk inside an arbitrarily long stream without counting it
    again.
    """

    index: int
    start_read: int
    records: tuple[ReadRecord, ...]

    @property
    def n_reads(self) -> int:
        return len(self.records)


def _chunk_span(chunk_reads: int, group_size: int) -> int:
    """Records per chunk, rounded so work units (pairs) never split."""
    if chunk_reads <= 0:
        raise ValueError("chunk_reads must be positive")
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    return max(group_size, chunk_reads - chunk_reads % group_size)


def _to_read(item) -> ReadRecord:
    if isinstance(item, ReadRecord):
        return item
    if isinstance(item, FastqRecord):
        return item.to_read()
    raise TypeError(f"unsupported read type: {type(item)!r}")


def _chunks_from(records: Iterable, chunk_reads: int,
                 group_size: int) -> Iterator[ReadChunk]:
    """Group any record iterable into unit-aligned :class:`ReadChunk` s."""
    span = _chunk_span(chunk_reads, group_size)
    buffer: list[ReadRecord] = []
    index = 0
    start = 0
    for item in records:
        buffer.append(_to_read(item))
        if len(buffer) >= span:
            yield ReadChunk(index=index, start_read=start,
                            records=tuple(buffer))
            index += 1
            start += len(buffer)
            buffer = []
    if buffer:
        if len(buffer) % group_size != 0:
            raise InputFileError(
                f"read stream ends mid-unit: {len(buffer) % group_size} "
                f"trailing read(s) do not fill a {group_size}-read unit",
                record_index=start + len(buffer) - 1)
        yield ReadChunk(index=index, start_read=start, records=tuple(buffer))


def stream_records(records: Iterable, *, chunk_reads: int = DEFAULT_CHUNK_READS,
                   group_size: int = 1) -> Iterator[ReadChunk]:
    """Chunk an in-memory (or generator) record iterable.

    The adapter that lets every downstream consumer -- sessions, the wire
    protocol, tests -- treat lists and sockets uniformly.
    """
    return _chunks_from(records, chunk_reads, group_size)


def stream_fastq(path: str | Path, *,
                 chunk_reads: int = DEFAULT_CHUNK_READS) -> Iterator[ReadChunk]:
    """Stream a FASTQ file (optionally gzipped) as single-read chunks."""
    return _chunks_from(iter_fastq(path), chunk_reads, 1)


def _interleave_paired(path: str | Path,
                       path2: str | Path | None) -> Iterator[FastqRecord]:
    """Incrementally interleave a paired library (R1, R2, R1, R2, ...)."""
    if path2 is None:
        yield from iter_fastq(path)
        return
    first, second = iter_fastq(path), iter_fastq(path2)
    index = 0
    while True:
        r1 = next(first, None)
        r2 = next(second, None)
        if r1 is None and r2 is None:
            return
        if r1 is None or r2 is None:
            longer = path2 if r1 is None else path
            raise InputFileError(
                f"paired FASTQ files disagree: {longer} has more reads "
                f"than its mate file", record_index=index)
        yield r1
        yield r2
        index += 1


def stream_fastq_paired(path: str | Path, path2: str | Path | None = None, *,
                        chunk_reads: int = DEFAULT_CHUNK_READS) -> Iterator[ReadChunk]:
    """Stream a paired library as whole-pair chunks.

    Accepts the same two layouts as
    :func:`repro.io.fastq.read_fastq_paired`: one interleaved file, or an
    R1 file plus its R2 mate file (interleaved on the fly, so neither half
    is ever materialised).  Chunks always hold complete pairs; a mid-unit
    EOF (odd interleaved count, mismatched halves) raises
    :class:`InputFileError`.
    """
    return _chunks_from(_interleave_paired(path, path2), chunk_reads, 2)


def _iter_seqdb(path: str | Path, span: int) -> Iterator[FastqRecord]:
    """Read a SeqDB container ``span`` records at a time (bounded memory)."""
    with SeqDbReader(path) as reader:
        total = len(reader)
        start = 0
        while start < total:
            count = min(span, total - start)
            yield from reader.read_range(start, count)
            start += count


def stream_seqdb(path: str | Path, *,
                 chunk_reads: int = DEFAULT_CHUNK_READS) -> Iterator[ReadChunk]:
    """Stream a SeqDB container as single-read chunks (range reads only)."""
    span = _chunk_span(chunk_reads, 1)
    return _chunks_from(_iter_seqdb(path, span), chunk_reads, 1)


def stream_seqdb_paired(path: str | Path, *,
                        chunk_reads: int = DEFAULT_CHUNK_READS) -> Iterator[ReadChunk]:
    """Stream an interleaved-pairs SeqDB container as whole-pair chunks."""
    span = _chunk_span(chunk_reads, 2)
    return _chunks_from(_iter_seqdb(path, span), chunk_reads, 2)


def open_read_stream(reads, *, chunk_reads: int = DEFAULT_CHUNK_READS,
                     paired: bool = False,
                     reads2=None) -> Iterator[ReadChunk]:
    """Dispatch any read source to the right chunked stream.

    The streaming twin of :func:`repro.core.plan.normalize_reads` /
    ``normalize_paired_reads``: paths route on suffix to the SeqDB or FASTQ
    source, everything else is treated as a record iterable.  ``paired``
    selects whole-pair chunking (and allows the two-file layout via
    *reads2*).
    """
    if isinstance(reads, (str, Path)):
        path = Path(reads)
        if path.suffix in SEQDB_SUFFIXES:
            if reads2 is not None:
                raise ValueError("two-file paired input is FASTQ-only; "
                                 "SeqDB pairs ship interleaved")
            if paired:
                return stream_seqdb_paired(path, chunk_reads=chunk_reads)
            return stream_seqdb(path, chunk_reads=chunk_reads)
        if paired:
            return stream_fastq_paired(path, reads2, chunk_reads=chunk_reads)
        return stream_fastq(path, chunk_reads=chunk_reads)
    if reads2 is not None:
        first = [_to_read(item) for item in reads]
        second = [_to_read(item) for item in reads2]
        if len(first) != len(second):
            raise InputFileError(
                f"paired read sets disagree: {len(first)} R1 reads vs "
                f"{len(second)} R2 reads")
        interleaved: list[ReadRecord] = []
        for r1, r2 in zip(first, second):
            interleaved.extend((r1, r2))
        return stream_records(interleaved, chunk_reads=chunk_reads,
                              group_size=2)
    return stream_records(reads, chunk_reads=chunk_reads,
                          group_size=2 if paired else 1)
