"""A bounded producer/consumer channel with close/drain semantics.

:class:`BoundedChannel` is the backpressure primitive of the streaming
subsystem: a size-capped FIFO connecting a producer thread (a socket reader,
a file parser) to a consumer (the plan runner, the scheduler).  Its memory
footprint is bounded by construction -- ``capacity`` items, never the whole
stream -- which is what makes end-to-end RSS flat no matter how large the
read library is.

Semantics:

* ``put`` blocks while the channel is full (policy ``"block"``, the
  default), or raises :class:`ChannelFull` immediately (policy ``"reject"``
  -- the serving layer turns that into an explicit ``BUSY``).
* ``close`` marks the end of the stream; consumers drain the remaining
  items and then see :class:`ChannelClosed` (or the iterator simply ends).
* ``fail(exc)`` lets a producer forward its exception: the consumer's next
  ``get`` re-raises it, so a parse error in the reader thread surfaces in
  the thread doing the work instead of being silently dropped.
* ``depth`` / ``high_watermark`` expose occupancy for metrics and tests --
  the house streaming tests assert ``high_watermark <= capacity``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Iterator

__all__ = ["BoundedChannel", "ChannelClosed", "ChannelFull"]


class ChannelClosed(Exception):
    """``put`` after ``close``, or ``get`` on a closed-and-drained channel."""


class ChannelFull(Exception):
    """``put`` on a full channel under the ``"reject"`` overflow policy."""


class BoundedChannel:
    """Size-capped FIFO with blocking put, close/drain and error forwarding.

    Args:
        capacity: maximum queued items; ``put`` applies backpressure (or
            rejects) beyond it.  Must be positive -- the whole point is a
            bound.
        overflow: ``"block"`` (producer waits for space; the offline/CLI
            policy) or ``"reject"`` (raise :class:`ChannelFull` at once;
            the serving policy behind gateway BUSY).
    """

    def __init__(self, capacity: int, *, overflow: str = "block") -> None:
        if capacity <= 0:
            raise ValueError("channel capacity must be positive")
        if overflow not in ("block", "reject"):
            raise ValueError(f"unknown overflow policy: {overflow!r}")
        self.capacity = capacity
        self.overflow = overflow
        self._items: deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._error: BaseException | None = None
        self._high_watermark = 0
        self._total_put = 0

    # -- producer side --------------------------------------------------------

    def put(self, item: Any, timeout: float | None = None) -> None:
        """Enqueue *item*, blocking while full (``"block"`` policy).

        Raises :class:`ChannelFull` under the ``"reject"`` policy when no
        space is free, :class:`ChannelClosed` when the channel was closed,
        and ``TimeoutError`` when a blocking put exceeds *timeout* seconds.
        """
        with self._not_full:
            if self.overflow == "reject":
                if self._closed:
                    raise ChannelClosed("put on a closed channel")
                if len(self._items) >= self.capacity:
                    raise ChannelFull(
                        f"channel full ({self.capacity} items)")
            else:
                while len(self._items) >= self.capacity and not self._closed:
                    if not self._not_full.wait(timeout):
                        raise TimeoutError(
                            f"put timed out after {timeout}s "
                            f"(channel full at {self.capacity})")
            if self._closed:
                raise ChannelClosed("put on a closed channel")
            self._items.append(item)
            self._total_put += 1
            self._high_watermark = max(self._high_watermark, len(self._items))
            self._not_empty.notify()

    def close(self) -> None:
        """Mark the end of the stream; queued items remain drainable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def fail(self, exc: BaseException) -> None:
        """Close the channel carrying a producer exception.

        The consumer's next ``get`` (or iteration step) re-raises *exc*,
        after draining items that were enqueued before the failure.
        """
        with self._lock:
            self._error = exc
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # -- consumer side --------------------------------------------------------

    def get(self, timeout: float | None = None) -> Any:
        """Dequeue the next item, blocking while empty.

        Raises :class:`ChannelClosed` once the channel is closed and
        drained, the producer's forwarded exception after a ``fail``, and
        ``TimeoutError`` when *timeout* seconds pass with nothing to take.
        """
        with self._not_empty:
            while not self._items and not self._closed:
                if not self._not_empty.wait(timeout):
                    raise TimeoutError(f"get timed out after {timeout}s")
            if self._items:
                item = self._items.popleft()
                self._not_full.notify()
                return item
            if self._error is not None:
                raise self._error
            raise ChannelClosed("channel closed and drained")

    def __iter__(self) -> Iterator[Any]:
        """Drain until closed-and-empty (re-raising a forwarded error)."""
        while True:
            try:
                yield self.get()
            except ChannelClosed:
                return

    # -- introspection --------------------------------------------------------

    @property
    def depth(self) -> int:
        """Items currently queued."""
        with self._lock:
            return len(self._items)

    @property
    def high_watermark(self) -> int:
        """Maximum depth ever observed (bounded by ``capacity``)."""
        with self._lock:
            return self._high_watermark

    @property
    def total_put(self) -> int:
        """Items ever enqueued (streamed-chunk accounting)."""
        with self._lock:
            return self._total_put

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
