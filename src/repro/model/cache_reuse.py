"""Seed-reuse probability model (paper section III-B, Figure 7).

A genome sampled at depth *d* with reads of length *L* contains each seed of
length *k* about ``f = d * (1 - (k - 1) / L)`` times in the read set.  If the
reads are spread uniformly at random over ``m = p / ppn`` nodes, the
probability that a seed looked up on a node is looked up again on the *same*
node (so the second lookup hits the seed-index cache) is the bins-and-balls
quantity ``1 - (1 - 1/m)^(f-1)``.  Figure 7 plots this for d=100, L=100, k=51,
f=50, ppn=24.
"""

from __future__ import annotations

import numpy as np


def expected_seed_frequency(depth: float, read_length: int, seed_length: int) -> float:
    """Expected number of occurrences of a genomic seed in the read set.

    ``f = d * (1 - (k - 1) / L)`` -- the mean of the Poisson distribution of
    seed frequencies cited in the paper.
    """
    if depth <= 0:
        raise ValueError("depth must be positive")
    if read_length <= 0 or seed_length <= 0:
        raise ValueError("read_length and seed_length must be positive")
    if seed_length > read_length:
        raise ValueError("seed_length cannot exceed read_length")
    return depth * (1.0 - (seed_length - 1) / read_length)


def seed_reuse_probability(frequency: float, n_cores: int, cores_per_node: int) -> float:
    """Probability that at least one other occurrence of a seed lands on the
    same node -- i.e. that an infinite seed-index cache would see a hit.

    ``1 - (1 - 1/m)^(f - 1)`` with ``m = ceil(p / ppn)`` nodes.
    """
    if n_cores <= 0 or cores_per_node <= 0:
        raise ValueError("core counts must be positive")
    if frequency < 1:
        return 0.0
    nodes = max(1, int(np.ceil(n_cores / cores_per_node)))
    if nodes == 1:
        return 1.0
    return float(1.0 - (1.0 - 1.0 / nodes) ** (frequency - 1.0))


def reuse_probability_curve(core_counts, depth: float = 100.0,
                            read_length: int = 100, seed_length: int = 51,
                            cores_per_node: int = 24) -> list[tuple[int, float]]:
    """The Figure 7 curve: reuse probability as a function of core count."""
    frequency = expected_seed_frequency(depth, read_length, seed_length)
    return [(int(p), seed_reuse_probability(frequency, int(p), cores_per_node))
            for p in core_counts]


def simulate_seed_reuse(frequency: int, n_nodes: int, n_trials: int = 2000,
                        seed: int = 0) -> float:
    """Monte-Carlo estimate of the reuse probability (validates the closed form).

    Tosses ``frequency - 1`` other occurrences into *n_nodes* bins and counts
    the fraction of trials in which node 0 receives at least one.
    """
    if frequency < 1 or n_nodes <= 0:
        raise ValueError("frequency must be >= 1 and n_nodes positive")
    if n_nodes == 1:
        return 1.0
    rng = np.random.default_rng(seed)
    hits = 0
    for _ in range(n_trials):
        bins = rng.integers(0, n_nodes, size=frequency - 1)
        if np.any(bins == 0):
            hits += 1
    return hits / n_trials
