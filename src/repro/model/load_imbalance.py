"""Balls-into-bins load-imbalance model (paper section IV-B, Theorem 1).

Randomly permuting the read file before block-partitioning it is equivalent to
tossing the *h* "slow" reads uniformly at random into *p* bins.  Raab &
Steger's bound then says the maximum bin load is, with high probability,
``h/p + O(sqrt((h/p) * log p))`` for ``h >> p log p``.

Note: the paper's statement of Theorem 1 prints the deviation term as
``2 * sqrt(2 h p log p)``, which is dimensionally inconsistent with the cited
balls-into-bins result (it would exceed *h* itself for moderate *p*); we
implement the standard ``2 * sqrt(2 (h/p) log p)`` form, which matches the
citation and the qualitative claim, and document the discrepancy here and in
EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np


def imbalance_bound(h: int, p: int) -> float:
    """High-probability bound on ``max_load - h/p`` after random assignment."""
    if h < 0:
        raise ValueError("h must be non-negative")
    if p <= 0:
        raise ValueError("p must be positive")
    if h == 0 or p == 1:
        return 0.0
    return 2.0 * float(np.sqrt(2.0 * (h / p) * np.log(p)))


def max_load_bound(h: int, p: int) -> float:
    """High-probability bound on the maximum per-rank count of slow reads."""
    if p <= 0:
        raise ValueError("p must be positive")
    return h / p + imbalance_bound(h, p)


def simulate_balls_into_bins(h: int, p: int, n_trials: int = 200,
                             seed: int = 0) -> tuple[float, float]:
    """Monte-Carlo (mean, max over trials) of the observed imbalance.

    Returns the average and worst observed ``max_load - h/p`` over the trials;
    tests check both stay within :func:`imbalance_bound` (the bound holds with
    high probability, so the observed values should essentially always fit).
    """
    if h < 0 or p <= 0:
        raise ValueError("h must be non-negative and p positive")
    rng = np.random.default_rng(seed)
    if h == 0:
        return 0.0, 0.0
    observed = []
    for _ in range(n_trials):
        counts = np.bincount(rng.integers(0, p, size=h), minlength=p)
        observed.append(counts.max() - h / p)
    return float(np.mean(observed)), float(np.max(observed))
