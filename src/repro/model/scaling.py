"""Strong-scaling bookkeeping (speedup, efficiency, ideal curves).

Used by the Fig 1 / Fig 8 / Fig 10 harnesses to report parallel efficiency the
way the paper quotes it (e.g. "0.7 parallel efficiency at 15,360 cores for the
human data set, relative to the 480-core run").
"""

from __future__ import annotations

from dataclasses import dataclass, field


def speedup(base_time: float, time: float) -> float:
    """Speedup of *time* relative to *base_time* (both positive)."""
    if base_time <= 0 or time <= 0:
        raise ValueError("times must be positive")
    return base_time / time


def parallel_efficiency(base_cores: int, base_time: float,
                        cores: int, time: float) -> float:
    """Strong-scaling parallel efficiency relative to the base configuration."""
    if base_cores <= 0 or cores <= 0:
        raise ValueError("core counts must be positive")
    return speedup(base_time, time) / (cores / base_cores)


def ideal_times(base_cores: int, base_time: float, core_counts) -> list[float]:
    """The ideal (linear) strong-scaling curve anchored at the base point."""
    if base_cores <= 0 or base_time <= 0:
        raise ValueError("base configuration must be positive")
    return [base_time * base_cores / c for c in core_counts]


@dataclass
class ScalingSeries:
    """A labelled series of (cores, seconds) strong-scaling measurements."""

    label: str
    core_counts: list[int] = field(default_factory=list)
    times: list[float] = field(default_factory=list)

    def add(self, cores: int, seconds: float) -> None:
        if cores <= 0 or seconds <= 0:
            raise ValueError("cores and seconds must be positive")
        self.core_counts.append(cores)
        self.times.append(seconds)

    def __len__(self) -> int:
        return len(self.core_counts)

    @property
    def base_cores(self) -> int:
        if not self.core_counts:
            raise ValueError("empty series")
        return self.core_counts[0]

    @property
    def base_time(self) -> float:
        if not self.times:
            raise ValueError("empty series")
        return self.times[0]

    def efficiency_at(self, index: int) -> float:
        """Parallel efficiency of the *index*-th point relative to the first."""
        return parallel_efficiency(self.base_cores, self.base_time,
                                   self.core_counts[index], self.times[index])

    def ideal(self) -> list[float]:
        """Ideal scaling curve anchored at the first measurement."""
        return ideal_times(self.base_cores, self.base_time, self.core_counts)

    def rows(self) -> list[dict[str, float]]:
        """Tabular view: cores, seconds, speedup, efficiency, ideal seconds."""
        ideal = self.ideal()
        table = []
        for i, (cores, seconds) in enumerate(zip(self.core_counts, self.times)):
            table.append({
                "cores": cores,
                "seconds": seconds,
                "speedup": speedup(self.base_time, seconds),
                "efficiency": self.efficiency_at(i),
                "ideal_seconds": ideal[i],
            })
        return table
